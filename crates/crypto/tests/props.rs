//! Property-based tests for the cryptographic substrate.
//!
//! These complement the known-answer unit tests inside each module: the unit
//! tests pin the primitives to published test vectors, while the properties
//! here exercise algebraic invariants (roundtrips, verification laws, bignum
//! arithmetic identities) over randomly generated inputs.

use proptest::prelude::*;
use secureblox_crypto::{
    aes128_ctr_decrypt, aes128_ctr_encrypt, hmac_sha1, hmac_sha1_verify, sha1, BigUint, RsaKeyPair,
    RsaSignature, Sha1,
};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

proptest! {
    /// Feeding the message in arbitrary chunk sizes produces the same digest
    /// as hashing it in one shot.
    #[test]
    fn sha1_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                        chunk in 1usize..64) {
        let oneshot = sha1(&data);
        let mut hasher = Sha1::new();
        for piece in data.chunks(chunk) {
            hasher.update(piece);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// The digest is always 20 bytes and deterministic.
    #[test]
    fn sha1_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let a = sha1(&data);
        let b = sha1(&data);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.len(), 20);
    }

    /// Appending a byte changes the digest (SHA-1 is not length-extension
    /// stable for our purposes of distinguishing messages).
    #[test]
    fn sha1_sensitive_to_appended_byte(data in proptest::collection::vec(any::<u8>(), 0..256),
                                       extra in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(extra);
        prop_assert_ne!(sha1(&data), sha1(&extended));
    }
}

// ---------------------------------------------------------------------------
// HMAC-SHA1
// ---------------------------------------------------------------------------

proptest! {
    /// A tag produced by `hmac_sha1` always verifies under the same key and
    /// message.
    #[test]
    fn hmac_sign_then_verify(key in proptest::collection::vec(any::<u8>(), 1..64),
                             msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let tag = hmac_sha1(&key, &msg);
        prop_assert!(hmac_sha1_verify(&key, &msg, &tag));
    }

    /// Flipping any bit of the tag makes verification fail.
    #[test]
    fn hmac_rejects_tampered_tag(key in proptest::collection::vec(any::<u8>(), 1..64),
                                 msg in proptest::collection::vec(any::<u8>(), 0..256),
                                 byte in 0usize..20, bit in 0u8..8) {
        let mut tag = hmac_sha1(&key, &msg);
        tag[byte] ^= 1 << bit;
        prop_assert!(!hmac_sha1_verify(&key, &msg, &tag));
    }

    /// A tag computed under one key does not verify under a different key.
    #[test]
    fn hmac_rejects_wrong_key(key in proptest::collection::vec(any::<u8>(), 1..64),
                              msg in proptest::collection::vec(any::<u8>(), 0..256),
                              flip_index in 0usize..64) {
        let tag = hmac_sha1(&key, &msg);
        let mut other = key.clone();
        let idx = flip_index % other.len();
        other[idx] ^= 0xFF;
        prop_assert!(!hmac_sha1_verify(&other, &msg, &tag));
    }

    /// Verification rejects truncated or over-long tags outright.
    #[test]
    fn hmac_rejects_wrong_length_tag(key in proptest::collection::vec(any::<u8>(), 1..32),
                                     msg in proptest::collection::vec(any::<u8>(), 0..128),
                                     cut in 0usize..19) {
        let tag = hmac_sha1(&key, &msg);
        prop_assert!(!hmac_sha1_verify(&key, &msg, &tag[..cut]));
        let mut long = tag.to_vec();
        long.push(0);
        prop_assert!(!hmac_sha1_verify(&key, &msg, &long));
    }
}

// ---------------------------------------------------------------------------
// AES-128-CTR
// ---------------------------------------------------------------------------

proptest! {
    /// Decryption inverts encryption for any secret and plaintext.
    #[test]
    fn aes_ctr_roundtrip(secret in proptest::collection::vec(any::<u8>(), 1..48),
                         plaintext in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let ciphertext = aes128_ctr_encrypt(&secret, &plaintext);
        let recovered = aes128_ctr_decrypt(&secret, &ciphertext).expect("well-formed ciphertext");
        prop_assert_eq!(recovered, plaintext);
    }

    /// The ciphertext carries a fixed-size overhead (nonce/IV), never less
    /// than the plaintext.
    #[test]
    fn aes_ctr_ciphertext_overhead_is_constant(secret in proptest::collection::vec(any::<u8>(), 1..32),
                                               a in proptest::collection::vec(any::<u8>(), 0..512),
                                               b in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ca = aes128_ctr_encrypt(&secret, &a);
        let cb = aes128_ctr_encrypt(&secret, &b);
        prop_assert!(ca.len() >= a.len());
        prop_assert!(cb.len() >= b.len());
        prop_assert_eq!(ca.len() - a.len(), cb.len() - b.len());
    }

    /// Decrypting under the wrong secret never silently returns the original
    /// plaintext (for non-empty plaintexts).
    #[test]
    fn aes_ctr_wrong_key_garbles(secret in proptest::collection::vec(any::<u8>(), 1..32),
                                 plaintext in proptest::collection::vec(any::<u8>(), 16..256),
                                 flip in 0usize..32) {
        let ciphertext = aes128_ctr_encrypt(&secret, &plaintext);
        let mut wrong = secret.clone();
        let idx = flip % wrong.len();
        wrong[idx] ^= 0x5A;
        match aes128_ctr_decrypt(&wrong, &ciphertext) {
            Ok(garbled) => prop_assert_ne!(garbled, plaintext),
            Err(_) => {} // rejecting is also acceptable
        }
    }

    /// Truncating the ciphertext below the header size is an error, not a
    /// panic.
    #[test]
    fn aes_ctr_truncated_input_is_error_or_shorter(secret in proptest::collection::vec(any::<u8>(), 1..32),
                                                   plaintext in proptest::collection::vec(any::<u8>(), 1..128),
                                                   keep in 0usize..8) {
        let ciphertext = aes128_ctr_encrypt(&secret, &plaintext);
        let keep = keep.min(ciphertext.len());
        match aes128_ctr_decrypt(&secret, &ciphertext[..keep]) {
            Ok(out) => prop_assert!(out.len() < plaintext.len()),
            Err(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// BigUint arithmetic laws (cross-checked against native u128 arithmetic)
// ---------------------------------------------------------------------------

fn big(x: u64) -> BigUint {
    BigUint::from_u64(x)
}

proptest! {
    /// Addition agrees with u128 addition.
    #[test]
    fn bignum_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = big(a).add(&big(b));
        let expected = BigUint::from_bytes_be(&(a as u128 + b as u128).to_be_bytes());
        prop_assert_eq!(sum.cmp(&expected), std::cmp::Ordering::Equal);
    }

    /// Subtraction undoes addition: (a + b) - b == a.
    #[test]
    fn bignum_add_sub_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        let back = big(a).add(&big(b)).sub(&big(b));
        prop_assert_eq!(back.cmp(&big(a)), std::cmp::Ordering::Equal);
    }

    /// Multiplication agrees with u128 multiplication and is commutative.
    #[test]
    fn bignum_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = big(a).mul(&big(b));
        let expected = BigUint::from_bytes_be(&((a as u128) * (b as u128)).to_be_bytes());
        prop_assert_eq!(prod.cmp(&expected), std::cmp::Ordering::Equal);
        prop_assert_eq!(big(b).mul(&big(a)).cmp(&prod), std::cmp::Ordering::Equal);
    }

    /// Multiplication distributes over addition: a*(b+c) == a*b + a*c.
    #[test]
    fn bignum_mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let lhs = big(a).mul(&big(b).add(&big(c)));
        let rhs = big(a).mul(&big(b)).add(&big(a).mul(&big(c)));
        prop_assert_eq!(lhs.cmp(&rhs), std::cmp::Ordering::Equal);
    }

    /// Division invariant: for d != 0, n == q*d + r with r < d.
    #[test]
    fn bignum_div_rem_invariant(n_bytes in proptest::collection::vec(any::<u8>(), 1..24),
                                d in 1u64..) {
        let n = BigUint::from_bytes_be(&n_bytes);
        let d = big(d);
        let (q, r) = n.div_rem(&d);
        prop_assert_eq!(q.mul(&d).add(&r).cmp(&n), std::cmp::Ordering::Equal);
        prop_assert_eq!(r.cmp(&d), std::cmp::Ordering::Less);
    }

    /// Shifting left then right by the same amount is the identity.
    #[test]
    fn bignum_shl_shr_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..24),
                                bits in 0usize..130) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = n.shl(bits).shr(bits);
        prop_assert_eq!(back.cmp(&n), std::cmp::Ordering::Equal);
    }

    /// Byte-encoding roundtrips (modulo leading zeros, which from_bytes_be
    /// strips).
    #[test]
    fn bignum_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(back.cmp(&n), std::cmp::Ordering::Equal);
    }

    /// Hex encoding roundtrips exactly.
    #[test]
    fn bignum_hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_hex(&n.to_hex()).expect("hex parses");
        prop_assert_eq!(back.cmp(&n), std::cmp::Ordering::Equal);
    }

    /// Comparison agrees with u128 comparison.
    #[test]
    fn bignum_cmp_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    /// modpow agrees with a naive square-and-reduce computed via u128 for
    /// small operands.
    #[test]
    fn bignum_modpow_matches_naive(base in 0u64..1 << 20, exp in 0u32..64, modulus in 2u64..1 << 20) {
        let mut expected: u128 = 1;
        let m = modulus as u128;
        for _ in 0..exp {
            expected = (expected * (base as u128 % m)) % m;
        }
        let got = big(base).modpow(&big(exp as u64), &big(modulus));
        prop_assert_eq!(got.cmp(&big(expected as u64)), std::cmp::Ordering::Equal);
    }

    /// gcd divides both operands and is commutative.
    #[test]
    fn bignum_gcd_divides(a in 1u64.., b in 1u64..) {
        let g = big(a).gcd(&big(b));
        prop_assert!(!g.is_zero());
        let (_, ra) = big(a).div_rem(&g);
        let (_, rb) = big(b).div_rem(&g);
        prop_assert!(ra.is_zero());
        prop_assert!(rb.is_zero());
        prop_assert_eq!(big(b).gcd(&big(a)).cmp(&g), std::cmp::Ordering::Equal);
    }

    /// When a modular inverse exists, a * a^{-1} ≡ 1 (mod m).
    #[test]
    fn bignum_modinv_is_inverse(a in 1u64.., m in 2u64..) {
        let a_big = big(a).rem(&big(m));
        if a_big.is_zero() {
            return Ok(());
        }
        match a_big.modinv(&big(m)) {
            Some(inv) => {
                let prod = a_big.mulmod(&inv, &big(m));
                prop_assert_eq!(prod.cmp(&BigUint::one()), std::cmp::Ordering::Equal);
            }
            None => {
                // No inverse ⇒ gcd(a, m) != 1.
                let g = a_big.gcd(&big(m));
                prop_assert_ne!(g.cmp(&BigUint::one()), std::cmp::Ordering::Equal);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RSA sign / verify
// ---------------------------------------------------------------------------

/// A single small keypair shared across cases: keygen is the expensive part,
/// and the properties under test concern signing and verification.
fn test_keypair() -> &'static RsaKeyPair {
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    KEY.get_or_init(|| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_1234);
        RsaKeyPair::generate(&mut rng, 512).expect("keygen")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every signature verifies under the matching public key.
    #[test]
    fn rsa_sign_then_verify(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let kp = test_keypair();
        let sig = kp.sign(&msg);
        prop_assert!(kp.public_key().verify(&msg, &sig));
    }

    /// A signature over one message does not verify over a different message.
    #[test]
    fn rsa_rejects_different_message(msg in proptest::collection::vec(any::<u8>(), 1..256),
                                     extra in any::<u8>()) {
        let kp = test_keypair();
        let sig = kp.sign(&msg);
        let mut other = msg.clone();
        other.push(extra);
        prop_assert!(!kp.public_key().verify(&other, &sig));
    }

    /// Corrupting the signature bytes makes verification fail.
    #[test]
    fn rsa_rejects_corrupted_signature(msg in proptest::collection::vec(any::<u8>(), 0..256),
                                       byte in 0usize..64, mask in 1u8..) {
        let kp = test_keypair();
        let RsaSignature(mut bytes) = kp.sign(&msg);
        let idx = byte % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(!kp.public_key().verify(&msg, &RsaSignature(bytes)));
    }

    /// Public-key serialization roundtrips and the roundtripped key still
    /// verifies signatures from the original private key.
    #[test]
    fn rsa_public_key_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let kp = test_keypair();
        let encoded = kp.public_key().to_bytes();
        let decoded = secureblox_crypto::RsaPublicKey::from_bytes(&encoded).expect("decodes");
        let sig = kp.sign(&msg);
        prop_assert!(decoded.verify(&msg, &sig));
    }
}

// ---------------------------------------------------------------------------
// Keypair serialization
// ---------------------------------------------------------------------------

#[test]
fn rsa_keypair_roundtrips_through_bytes() {
    let kp = test_keypair();
    let encoded = kp.to_bytes();
    let decoded = RsaKeyPair::from_bytes(&encoded).expect("keypair decodes");
    let msg = b"the quick brown fox";
    let sig = decoded.sign(msg);
    assert!(kp.public_key().verify(msg, &sig));
    assert_eq!(
        decoded.public_key().modulus_bytes(),
        kp.public_key().modulus_bytes()
    );
}
