//! AES-128 (FIPS 197) and a CTR-mode stream construction.
//!
//! The paper's confidentiality option applies AES with a 128-bit pairwise
//! shared secret to the serialized tuple batch before export (§5.1, §8).
//! CTR mode is used here so ciphertext length equals plaintext length plus a
//! 16-byte nonce prefix, which keeps the communication-overhead accounting in
//! the benchmark harness straightforward.

use crate::error::CryptoError;

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// AES-128 key size in bytes.
pub const KEY_SIZE: usize = 16;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply two elements of GF(2^8) with the AES reduction polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key ready for block encryption.
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in temp.iter_mut() {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (round, rk) in round_keys.iter_mut().enumerate() {
            for col in 0..4 {
                rk[4 * col..4 * col + 4].copy_from_slice(&w[round * 4 + col]);
            }
        }
        Aes128 { round_keys }
    }

    /// Build a cipher from an arbitrary-length shared secret by hashing it
    /// down to 16 bytes with SHA-1 (the paper uses 128-bit random shared
    /// secrets; this keeps arbitrary-length secrets usable in tests).
    pub fn from_secret(secret: &[u8]) -> Self {
        if secret.len() == KEY_SIZE {
            let mut key = [0u8; KEY_SIZE];
            key.copy_from_slice(secret);
            Self::new(&key)
        } else {
            let digest = crate::sha1::sha1(secret);
            let mut key = [0u8; KEY_SIZE];
            key.copy_from_slice(&digest[..KEY_SIZE]);
            Self::new(&key)
        }
    }

    /// Encrypt a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for byte in state.iter_mut() {
        *byte = SBOX[*byte as usize];
    }
}

/// State is column-major: byte `r + 4c` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = copy[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

/// Generate the CTR keystream block for counter `ctr` under `nonce`.
fn keystream_block(cipher: &Aes128, nonce: &[u8; 8], ctr: u64) -> [u8; BLOCK_SIZE] {
    let mut block = [0u8; BLOCK_SIZE];
    block[..8].copy_from_slice(nonce);
    block[8..].copy_from_slice(&ctr.to_be_bytes());
    cipher.encrypt_block(&mut block);
    block
}

/// Encrypt `plaintext` under `secret` with AES-128-CTR.
///
/// Output layout: `nonce (8 bytes) || ciphertext (len(plaintext) bytes)`.
/// The nonce is derived deterministically from the plaintext and secret so
/// that repeated simulation runs are reproducible; uniqueness per (secret,
/// plaintext) pair is what CTR needs here because messages are never replayed
/// with the same content on the same pairwise key within a run.
pub fn aes128_ctr_encrypt(secret: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let cipher = Aes128::from_secret(secret);
    let digest = crate::sha1::sha1(&[secret, plaintext, &plaintext.len().to_be_bytes()].concat());
    let mut nonce = [0u8; 8];
    nonce.copy_from_slice(&digest[..8]);

    let mut out = Vec::with_capacity(8 + plaintext.len());
    out.extend_from_slice(&nonce);
    for (i, chunk) in plaintext.chunks(BLOCK_SIZE).enumerate() {
        let ks = keystream_block(&cipher, &nonce, i as u64);
        for (j, &byte) in chunk.iter().enumerate() {
            out.push(byte ^ ks[j]);
        }
    }
    out
}

/// Decrypt data produced by [`aes128_ctr_encrypt`].
pub fn aes128_ctr_decrypt(secret: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if data.len() < 8 {
        return Err(CryptoError::MalformedCiphertext(format!(
            "ciphertext of {} bytes is shorter than the 8-byte nonce",
            data.len()
        )));
    }
    let cipher = Aes128::from_secret(secret);
    let mut nonce = [0u8; 8];
    nonce.copy_from_slice(&data[..8]);
    let body = &data[8..];

    let mut out = Vec::with_capacity(body.len());
    for (i, chunk) in body.chunks(BLOCK_SIZE).enumerate() {
        let ks = keystream_block(&cipher, &nonce, i as u64);
        for (j, &byte) in chunk.iter().enumerate() {
            out.push(byte ^ ks[j]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B known-answer test.
    #[test]
    fn fips197_block() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    /// NIST SP 800-38A F.5.1 AES-128 CTR keystream check (first block).
    #[test]
    fn sp800_38a_ctr_first_block() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut counter: [u8; 16] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let plaintext: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected: [u8; 16] = [
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce,
        ];
        Aes128::new(&key).encrypt_block(&mut counter);
        let ct: Vec<u8> = plaintext
            .iter()
            .zip(counter.iter())
            .map(|(p, k)| p ^ k)
            .collect();
        assert_eq!(ct, expected);
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let secret = b"128-bit shared secret key paper";
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let ct = aes128_ctr_encrypt(secret, &plaintext);
            assert_eq!(ct.len(), plaintext.len() + 8, "len {len}");
            let pt = aes128_ctr_decrypt(secret, &ct).unwrap();
            assert_eq!(pt, plaintext, "len {len}");
        }
    }

    #[test]
    fn decrypt_rejects_short_input() {
        assert!(aes128_ctr_decrypt(b"k", &[1, 2, 3]).is_err());
    }

    #[test]
    fn wrong_key_scrambles() {
        let ct = aes128_ctr_encrypt(b"key-one", b"reachable(n1, n2)");
        let pt = aes128_ctr_decrypt(b"key-two", &ct).unwrap();
        assert_ne!(pt, b"reachable(n1, n2)".to_vec());
    }

    #[test]
    fn from_secret_handles_any_length() {
        let c1 = Aes128::from_secret(b"short");
        let c2 = Aes128::from_secret(b"exactly-16-bytes");
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }
}
