//! Key material management for principals.
//!
//! The generated security policies reference three relations that must be
//! populated out-of-band before query execution (paper §3.2, §5.1):
//!
//! * `public_key(P, K)` — every principal's RSA public key,
//! * `private_key[] = K` — the local principal's RSA private key,
//! * `secret(P, K)` — a pairwise shared secret with principal `P`, used both
//!   for HMAC tags and for AES encryption.
//!
//! [`KeyStore`] provisions this material for a whole simulated deployment.
//! RSA key generation with a from-scratch bignum is the most expensive step
//! of experiment setup, so the store supports a small *key pool*: a handful
//! of distinct key pairs generated once and assigned to principals
//! round-robin.  Signature verification still requires the right per-principal
//! public key, so correctness-relevant behaviour is unchanged, while setup
//! time stays flat as the simulated network grows (documented substitution in
//! DESIGN.md).

use crate::error::CryptoError;
use crate::hmac::hmac_sha1;
use crate::rsa::{RsaKeyPair, RsaPublicKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide cache of generated RSA key pools, keyed by
/// `(modulus bits, pool size, seed)`.
///
/// Key provisioning happens out-of-band in the paper (keys exist before the
/// experiment starts and are not part of any measured quantity), so reusing
/// the deterministic pool across repeated experiment runs in one process —
/// tests sweeping schemes, Criterion iterating a benchmark — changes nothing
/// observable while removing minutes of redundant Miller–Rabin search.
type RsaPoolCache = Mutex<HashMap<(usize, usize, u64), Vec<Arc<RsaKeyPair>>>>;

fn rsa_pool_cache() -> &'static RsaPoolCache {
    static CACHE: OnceLock<RsaPoolCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Key material held for a single principal.
#[derive(Debug, Clone)]
pub struct PrincipalKeys {
    /// RSA key pair used for signing (shared `Arc` when pooled); `None` when
    /// the deployment was provisioned without RSA material (NoAuth / HMAC
    /// only), which keeps setup time flat for those configurations.
    pub rsa: Option<Arc<RsaKeyPair>>,
}

/// Key material for an entire deployment of principals.
#[derive(Debug, Clone)]
pub struct KeyStore {
    principals: HashMap<String, PrincipalKeys>,
    /// Pairwise shared secrets, keyed by the unordered principal pair.
    secrets: HashMap<(String, String), Vec<u8>>,
    rsa_bits: usize,
}

impl KeyStore {
    /// Build a key store for `principals`, generating at most `pool_size`
    /// distinct RSA key pairs of `rsa_bits` bits and 128-bit pairwise secrets.
    ///
    /// Deterministic for a given `seed`, which keeps experiment runs
    /// reproducible.
    pub fn provision<S: AsRef<str>>(
        principals: &[S],
        rsa_bits: usize,
        pool_size: usize,
        seed: u64,
    ) -> Result<Self, CryptoError> {
        Self::provision_with_options(principals, Some(rsa_bits), pool_size, seed)
    }

    /// Build a key store with only pairwise shared secrets (no RSA material),
    /// for NoAuth / HMAC / AES-only deployments.
    pub fn provision_secrets_only<S: AsRef<str>>(
        principals: &[S],
        seed: u64,
    ) -> Result<Self, CryptoError> {
        Self::provision_with_options(principals, None, 1, seed)
    }

    /// Build a key store, optionally with RSA key pairs of the given size.
    pub fn provision_with_options<S: AsRef<str>>(
        principals: &[S],
        rsa_bits: Option<usize>,
        pool_size: usize,
        seed: u64,
    ) -> Result<Self, CryptoError> {
        // Key generation and secret generation use independent generators so
        // that reusing a cached key pool never changes which secrets a seed
        // produces: provisioning stays deterministic per seed either way.
        let mut key_rng = StdRng::seed_from_u64(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let pool_size = pool_size.max(1).min(principals.len().max(1));
        let mut pool: Vec<Arc<RsaKeyPair>> = Vec::new();
        if let Some(bits) = rsa_bits {
            let cache_key = (bits, pool_size, seed);
            if let Some(cached) = rsa_pool_cache()
                .lock()
                .expect("rsa pool cache")
                .get(&cache_key)
            {
                pool = cached.clone();
            }
            if pool.is_empty() {
                for _ in 0..pool_size {
                    pool.push(Arc::new(RsaKeyPair::generate(&mut key_rng, bits)?));
                }
                rsa_pool_cache()
                    .lock()
                    .expect("rsa pool cache")
                    .insert(cache_key, pool.clone());
            }
        }

        let mut store = KeyStore {
            principals: HashMap::new(),
            secrets: HashMap::new(),
            rsa_bits: rsa_bits.unwrap_or(0),
        };
        for (i, principal) in principals.iter().enumerate() {
            store.principals.insert(
                principal.as_ref().to_string(),
                PrincipalKeys {
                    rsa: if pool.is_empty() {
                        None
                    } else {
                        Some(Arc::clone(&pool[i % pool.len()]))
                    },
                },
            );
        }

        // 128-bit random pairwise shared secrets (paper §8.1).
        for (i, a) in principals.iter().enumerate() {
            for b in principals.iter().skip(i + 1) {
                let secret: Vec<u8> = (0..16).map(|_| rng.gen::<u8>()).collect();
                store
                    .secrets
                    .insert(Self::pair_key(a.as_ref(), b.as_ref()), secret);
            }
        }
        Ok(store)
    }

    /// An empty key store (useful for NoAuth-only deployments and tests).
    pub fn empty() -> Self {
        KeyStore {
            principals: HashMap::new(),
            secrets: HashMap::new(),
            rsa_bits: 0,
        }
    }

    fn pair_key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// The configured RSA modulus size in bits.
    pub fn rsa_bits(&self) -> usize {
        self.rsa_bits
    }

    /// All principals known to the store.
    pub fn principals(&self) -> impl Iterator<Item = &str> {
        self.principals.keys().map(|s| s.as_str())
    }

    /// The RSA key pair for `principal`.
    pub fn keypair(&self, principal: &str) -> Result<&RsaKeyPair, CryptoError> {
        self.principals
            .get(principal)
            .ok_or_else(|| CryptoError::UnknownPrincipal(principal.to_string()))?
            .rsa
            .as_deref()
            .ok_or_else(|| {
                CryptoError::InvalidKey(format!("no RSA material provisioned for {principal}"))
            })
    }

    /// The RSA public key for `principal`.
    pub fn public_key(&self, principal: &str) -> Result<&RsaPublicKey, CryptoError> {
        self.keypair(principal).map(|kp| kp.public_key())
    }

    /// The pairwise shared secret between two principals.
    pub fn shared_secret(&self, a: &str, b: &str) -> Result<&[u8], CryptoError> {
        self.secrets
            .get(&Self::pair_key(a, b))
            .map(|s| s.as_slice())
            .ok_or_else(|| CryptoError::UnknownPrincipal(format!("{a} <-> {b}")))
    }

    /// Derive a per-hop circuit key for the anonymity policies: the initiator
    /// shares a distinct symmetric key with each relay, derived from the
    /// pairwise secret and the circuit identifier.
    pub fn circuit_key(&self, a: &str, b: &str, circuit_id: u64) -> Result<Vec<u8>, CryptoError> {
        let secret = self.shared_secret(a, b)?;
        Ok(hmac_sha1(secret, &circuit_id.to_be_bytes()).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("n{i}")).collect()
    }

    #[test]
    fn provision_creates_all_principals_and_secrets() {
        let principals = names(4);
        let store = KeyStore::provision(&principals, 512, 2, 1).unwrap();
        assert_eq!(store.principals().count(), 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(store.shared_secret(&principals[i], &principals[j]).is_ok());
                }
            }
        }
        // Shared secret is symmetric.
        assert_eq!(
            store.shared_secret("n0", "n3").unwrap(),
            store.shared_secret("n3", "n0").unwrap()
        );
    }

    #[test]
    fn pooled_keys_still_sign_and_verify() {
        let principals = names(5);
        let store = KeyStore::provision(&principals, 512, 2, 7).unwrap();
        let kp = store.keypair("n1").unwrap();
        let sig = kp.sign(b"fact");
        assert!(store.public_key("n1").unwrap().verify(b"fact", &sig));
    }

    #[test]
    fn unknown_principal_errors() {
        let store = KeyStore::provision(&names(2), 512, 1, 3).unwrap();
        assert!(store.keypair("nope").is_err());
        assert!(store.shared_secret("n0", "nope").is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = KeyStore::provision(&names(3), 512, 1, 11).unwrap();
        let b = KeyStore::provision(&names(3), 512, 1, 11).unwrap();
        assert_eq!(
            a.shared_secret("n0", "n1").unwrap(),
            b.shared_secret("n0", "n1").unwrap()
        );
        assert_eq!(
            a.public_key("n2").unwrap().to_bytes(),
            b.public_key("n2").unwrap().to_bytes()
        );
    }

    #[test]
    fn circuit_keys_differ_per_circuit_and_hop() {
        let store = KeyStore::provision(&names(3), 512, 1, 5).unwrap();
        let k1 = store.circuit_key("n0", "n1", 1).unwrap();
        let k2 = store.circuit_key("n0", "n1", 2).unwrap();
        let k3 = store.circuit_key("n0", "n2", 1).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1.len(), 20);
    }

    #[test]
    fn empty_store_has_no_material() {
        let store = KeyStore::empty();
        assert_eq!(store.principals().count(), 0);
        assert!(store.keypair("x").is_err());
    }

    #[test]
    fn secrets_only_provisioning_skips_rsa() {
        let store = KeyStore::provision_secrets_only(&names(3), 4).unwrap();
        assert!(store.keypair("n0").is_err());
        assert!(store.shared_secret("n0", "n2").is_ok());
        assert_eq!(store.rsa_bits(), 0);
    }
}
