//! Arbitrary-precision unsigned integers.
//!
//! Only the operations needed by RSA are implemented: comparison, addition,
//! subtraction, multiplication, division with remainder, modular
//! exponentiation, modular inverse, and Miller–Rabin primality testing.
//! Limbs are 32-bit, stored little-endian, so all intermediate products fit
//! in `u64` without overflow.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian 32-bit limbs with no trailing zero limbs (canonical form);
    /// zero is represented by an empty limb vector.
    limbs: Vec<u32>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let mut out = BigUint {
            limbs: vec![value as u32, (value >> 32) as u32],
        };
        out.normalize();
        out
    }

    /// Construct from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut limb = 0u32;
            for &byte in chunk {
                limb = (limb << 8) | byte as u32;
            }
            limbs.push(limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Big-endian byte representation without leading zero bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut bytes = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            bytes.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = bytes.iter().position(|&b| b != 0).unwrap_or(bytes.len());
        bytes.split_off(first_nonzero)
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    /// Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let bytes = self.to_bytes_be();
        assert!(bytes.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    /// Lowercase hexadecimal representation without a `0x` prefix.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Parse a hexadecimal string (no prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        for i in (0..s.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&s[i..i + 2], 16).ok()?);
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// True if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if this value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (zero-based from the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let offset = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> offset) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Shift left by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Shift right by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let mut limb = self.limbs[i] >> bit_shift;
                if i + 1 < self.limbs.len() {
                    limb |= self.limbs[i + 1] << (32 - bit_shift);
                }
                out.push(limb);
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Comparison.
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Division with remainder (binary long division).
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        // Fast path for single-limb divisors.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut quotient = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                quotient[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut q = BigUint { limbs: quotient };
            q.normalize();
            return (q, BigUint::from_u64(rem));
        }

        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = BigUint::zero();
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder.cmp(&shifted) != Ordering::Less {
                remainder = remainder.sub(&shifted);
                quotient = quotient.set_bit(i);
            }
            shifted = shifted.shr(1);
        }
        (quotient, remainder)
    }

    /// Return a copy with bit `i` set.
    fn set_bit(&self, i: usize) -> BigUint {
        let limb = i / 32;
        let offset = i % 32;
        let mut limbs = self.limbs.clone();
        if limbs.len() <= limb {
            limbs.resize(limb + 1, 0);
        }
        limbs[limb] |= 1 << offset;
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation via square-and-multiply.
    ///
    /// Odd moduli (every RSA modulus and Miller–Rabin candidate) take a
    /// Montgomery-multiplication fast path; even moduli fall back to repeated
    /// `mulmod`, which reduces with long division.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.cmp(&BigUint::one()) == Ordering::Equal {
            return BigUint::zero();
        }
        if !modulus.is_even() {
            return self.modpow_montgomery(exponent, modulus);
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bits() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Montgomery-form modular exponentiation for odd moduli.
    fn modpow_montgomery(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let l = modulus.limbs.len();
        let n = &modulus.limbs;
        let n0inv = montgomery_n0inv(n[0]);

        // R = 2^(32·l); enter the Montgomery domain with two slow reductions.
        let r_mod_n = BigUint::one().shl(32 * l).rem(modulus);
        let base_mont = self.rem(modulus).shl(32 * l).rem(modulus);

        let pad = |value: &BigUint| -> Vec<u32> {
            let mut limbs = value.limbs.clone();
            limbs.resize(l, 0);
            limbs
        };
        let mut result = pad(&r_mod_n);
        let mut base = pad(&base_mont);
        for i in 0..exponent.bits() {
            if exponent.bit(i) {
                result = montgomery_mul(&result, &base, n, n0inv);
            }
            base = montgomery_mul(&base, &base, n, n0inv);
        }
        // Leave the Montgomery domain: multiply by 1.
        let mut one = vec![0u32; l];
        one[0] = 1;
        let out = montgomery_mul(&result, &one, n, n0inv);
        let mut value = BigUint { limbs: out };
        value.normalize();
        value
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `modulus`, if it exists.
    ///
    /// Uses the extended Euclidean algorithm over signed cofactors tracked as
    /// (sign, magnitude) pairs.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() {
            return None;
        }
        // Signed value as (negative?, magnitude).
        type Signed = (bool, BigUint);
        fn sub_signed(a: &Signed, b: &Signed) -> Signed {
            match (a.0, b.0) {
                (false, false) => {
                    if a.1.cmp(&b.1) != Ordering::Less {
                        (false, a.1.sub(&b.1))
                    } else {
                        (true, b.1.sub(&a.1))
                    }
                }
                (true, true) => {
                    if b.1.cmp(&a.1) != Ordering::Less {
                        (false, b.1.sub(&a.1))
                    } else {
                        (true, a.1.sub(&b.1))
                    }
                }
                (false, true) => (false, a.1.add(&b.1)),
                (true, false) => (true, a.1.add(&b.1)),
            }
        }
        fn mul_signed(a: &Signed, b: &BigUint) -> Signed {
            (a.0, a.1.mul(b))
        }

        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        // Invariant: old_r = old_s * self (mod modulus), r = s * self (mod modulus)
        let mut old_s: Signed = (false, BigUint::one());
        let mut s: Signed = (false, BigUint::zero());

        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let qs = mul_signed(&s, &q);
            let new_s = sub_signed(&old_s, &qs);
            old_s = std::mem::replace(&mut s, new_s);
        }

        if old_r.cmp(&BigUint::one()) != Ordering::Equal {
            return None; // not coprime
        }
        // Bring old_s into [0, modulus).
        let magnitude = old_s.1.rem(modulus);
        if old_s.0 && !magnitude.is_zero() {
            Some(modulus.sub(&magnitude))
        } else {
            Some(magnitude)
        }
    }

    /// Generate a uniformly random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
        // Mask off excess bits, then force the top bit.
        let top_bits = bits % 32;
        if top_bits != 0 {
            let mask = (1u64 << top_bits) - 1;
            let last = limbs.last_mut().expect("at least one limb");
            *last &= mask as u32;
            *last |= 1 << (top_bits - 1);
        } else {
            let last = limbs.last_mut().expect("at least one limb");
            *last |= 1 << 31;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Generate a uniformly random value in `[0, bound)` via rejection sampling.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bits();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
            let top_bits = bits % 32;
            if top_bits != 0 {
                let mask = (1u64 << top_bits) - 1;
                if let Some(last) = limbs.last_mut() {
                    *last &= mask as u32;
                }
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if candidate.cmp(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probably_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        let two = BigUint::from_u64(2);
        let three = BigUint::from_u64(3);
        if self.cmp(&two) == Ordering::Less {
            return false;
        }
        if self.cmp(&two) == Ordering::Equal || self.cmp(&three) == Ordering::Equal {
            return true;
        }
        if self.is_even() {
            return false;
        }

        // Quick trial division by small primes.
        const SMALL_PRIMES: [u64; 30] = [
            3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89, 97, 101, 103, 107, 109, 113, 127,
        ];
        for p in SMALL_PRIMES {
            let bp = BigUint::from_u64(p);
            if self.cmp(&bp) == Ordering::Equal {
                return true;
            }
            if self.rem(&bp).is_zero() {
                return false;
            }
        }

        // Write self - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }

        'witness: for _ in 0..rounds {
            let a = BigUint::random_below(rng, &self.sub(&three)).add(&two);
            let mut x = a.modpow(&d, self);
            if x.cmp(&BigUint::one()) == Ordering::Equal || x.cmp(&n_minus_1) == Ordering::Equal {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mulmod(&x, self);
                if x.cmp(&n_minus_1) == Ordering::Equal {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize, mr_rounds: usize) -> BigUint {
        loop {
            let mut candidate = BigUint::random_bits(rng, bits);
            // Force odd.
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.is_probably_prime(rng, mr_rounds) {
                return candidate;
            }
        }
    }
}

/// `-n[0]^{-1} mod 2^32` for an odd least-significant limb, via Newton
/// iteration on the 2-adic inverse.
fn montgomery_n0inv(n0: u32) -> u32 {
    debug_assert!(n0 & 1 == 1, "Montgomery reduction requires an odd modulus");
    let mut inv = n0; // correct to 3 bits for odd n0
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
    }
    inv.wrapping_neg()
}

/// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod n` where
/// `R = 2^(32·n.len())`.  `a` and `b` must have exactly `n.len()` limbs.
fn montgomery_mul(a: &[u32], b: &[u32], n: &[u32], n0inv: u32) -> Vec<u32> {
    let l = n.len();
    debug_assert_eq!(a.len(), l);
    debug_assert_eq!(b.len(), l);
    let mut t = vec![0u32; l + 2];
    for &ai in a.iter() {
        // t += ai · b
        let ai = ai as u64;
        let mut carry = 0u64;
        for j in 0..l {
            let cur = t[j] as u64 + ai * b[j] as u64 + carry;
            t[j] = cur as u32;
            carry = cur >> 32;
        }
        let cur = t[l] as u64 + carry;
        t[l] = cur as u32;
        t[l + 1] = (cur >> 32) as u32;

        // m chosen so that (t + m·n) is divisible by 2^32.
        let m = t[0].wrapping_mul(n0inv) as u64;
        let cur = t[0] as u64 + m * n[0] as u64;
        let mut carry = cur >> 32;
        for j in 1..l {
            let cur = t[j] as u64 + m * n[j] as u64 + carry;
            t[j - 1] = cur as u32;
            carry = cur >> 32;
        }
        let cur = t[l] as u64 + carry;
        t[l - 1] = cur as u32;
        carry = cur >> 32;
        t[l] = (t[l + 1] as u64 + carry) as u32;
        t[l + 1] = 0;
    }
    // t[0..=l] now holds the reduced product, strictly less than 2n.
    let needs_sub = t[l] != 0 || {
        // Compare t[0..l] with n from the most significant limb down.
        let mut greater_or_equal = true;
        for j in (0..l).rev() {
            match t[j].cmp(&n[j]) {
                Ordering::Greater => break,
                Ordering::Equal => continue,
                Ordering::Less => {
                    greater_or_equal = false;
                    break;
                }
            }
        }
        greater_or_equal
    };
    let mut out = vec![0u32; l];
    if needs_sub {
        let mut borrow = 0i64;
        for j in 0..l {
            let diff = t[j] as i64 - n[j] as i64 - borrow;
            if diff < 0 {
                out[j] = (diff + (1i64 << 32)) as u32;
                borrow = 1;
            } else {
                out[j] = diff as u32;
                borrow = 0;
            }
        }
        // Any final borrow is absorbed by t[l] (t < 2n guarantees this).
    } else {
        out.copy_from_slice(&t[..l]);
    }
    out
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = big(0xFFFF_FFFF_FFFF_FFFF);
        let b = big(12345);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b).cmp(&a), Ordering::Equal);
        assert_eq!(sum.sub(&a).cmp(&b), Ordering::Equal);
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(
            big(1000).mul(&big(1000)).cmp(&big(1_000_000)),
            Ordering::Equal
        );
        assert_eq!(big(0).mul(&big(77)).cmp(&BigUint::zero()), Ordering::Equal);
        let a = big(0xFFFF_FFFF);
        assert_eq!(a.mul(&a).cmp(&big(0xFFFF_FFFE_0000_0001)), Ordering::Equal);
    }

    #[test]
    fn div_rem_matches_u64() {
        let cases = [
            (100u64, 7u64),
            (0, 5),
            (12345678901234567, 9876543),
            (u64::MAX, 3),
        ];
        for (a, b) in cases {
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q.cmp(&big(a / b)), Ordering::Equal, "{a}/{b}");
            assert_eq!(r.cmp(&big(a % b)), Ordering::Equal, "{a}%{b}");
        }
    }

    #[test]
    fn shifts() {
        let a = big(0b1011);
        assert_eq!(a.shl(3).cmp(&big(0b1011000)), Ordering::Equal);
        assert_eq!(a.shr(2).cmp(&big(0b10)), Ordering::Equal);
        assert_eq!(a.shl(40).shr(40).cmp(&a), Ordering::Equal);
        assert!(a.shr(100).is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(
            a.to_bytes_be(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]
        );
        assert_eq!(a.to_bytes_be_padded(12)[..3], [0, 0, 0]);
        assert!(BigUint::from_bytes_be(&[0, 0, 0]).is_zero());
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(a.to_hex(), "deadbeef0123456789abcdef");
        assert_eq!(BigUint::zero().to_hex(), "0");
    }

    #[test]
    fn modpow_small() {
        // 4^13 mod 497 = 445
        assert_eq!(
            big(4).modpow(&big(13), &big(497)).cmp(&big(445)),
            Ordering::Equal
        );
        // Fermat: a^(p-1) = 1 mod p for prime p
        let p = big(1_000_000_007);
        assert_eq!(
            big(123456)
                .modpow(&p.sub(&BigUint::one()), &p)
                .cmp(&BigUint::one()),
            Ordering::Equal
        );
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(54).gcd(&big(24)).cmp(&big(6)), Ordering::Equal);
        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv.cmp(&big(4)), Ordering::Equal);
        assert!(big(6).modinv(&big(9)).is_none());
        // e * d = 1 mod phi for RSA-style values
        let e = big(65537);
        let phi = big(3120);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mulmod(&d, &phi).cmp(&BigUint::one()), Ordering::Equal);
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(42);
        for p in [2u64, 3, 5, 7, 104729, 1_000_000_007] {
            assert!(
                big(p).is_probably_prime(&mut rng, 16),
                "{p} should be prime"
            );
        }
        for c in [1u64, 4, 100, 104730, 1_000_000_008, 561, 41041] {
            assert!(
                !big(c).is_probably_prime(&mut rng, 16),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::random_prime(&mut rng, 64, 12);
        assert_eq!(p.bits(), 64);
        assert!(p.is_probably_prime(&mut rng, 16));
    }

    #[test]
    fn random_below_stays_below() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = big(1000);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn bits_and_bit_access() {
        let a = big(0b10100);
        assert_eq!(a.bits(), 5);
        assert!(a.bit(2));
        assert!(a.bit(4));
        assert!(!a.bit(0));
        assert!(!a.bit(100));
        assert_eq!(BigUint::zero().bits(), 0);
    }
}
