//! RSA key generation, signing, and verification.
//!
//! The paper's strongest authentication scheme "signs a SHA-1 digest of the
//! data with the private key of the sender" using 1024-bit keys (§8.1).  The
//! construction here is textbook RSA with a minimal PKCS#1-v1.5-style
//! encoding of the SHA-1 digest: `0x00 0x01 0xFF…0xFF 0x00 <digest>`.
//!
//! Signature length equals the modulus length in bytes, which is exactly the
//! per-message size overhead the paper attributes to RSA in Figure 6.

use crate::bignum::BigUint;
use crate::error::CryptoError;
use crate::sha1::{sha1, DIGEST_LEN};
use rand::Rng;
use std::cmp::Ordering;

/// Default public exponent.
const PUBLIC_EXPONENT: u64 = 65_537;

/// Miller–Rabin rounds used during key generation.
const MR_ROUNDS: usize = 16;

/// An RSA public key (modulus and public exponent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_bytes: usize,
}

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

/// A detached RSA signature (big-endian, exactly modulus-length bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaSignature(pub Vec<u8>);

impl RsaPublicKey {
    /// The modulus size in bytes (and hence the signature size).
    pub fn modulus_bytes(&self) -> usize {
        self.modulus_bytes
    }

    /// The modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// Serialize the public key as `modulus_bytes || n || e` for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_bytes = self.n.to_bytes_be();
        let e_bytes = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n_bytes.len() + e_bytes.len());
        out.extend_from_slice(&(n_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&n_bytes);
        out.extend_from_slice(&(e_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&e_bytes);
        out
    }

    /// Parse a public key serialized by [`RsaPublicKey::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, CryptoError> {
        let err = || CryptoError::InvalidKey("truncated RSA public key encoding".into());
        if data.len() < 4 {
            return Err(err());
        }
        let n_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if data.len() < 4 + n_len + 4 {
            return Err(err());
        }
        let n = BigUint::from_bytes_be(&data[4..4 + n_len]);
        let e_start = 4 + n_len;
        let e_len = u32::from_be_bytes([
            data[e_start],
            data[e_start + 1],
            data[e_start + 2],
            data[e_start + 3],
        ]) as usize;
        if data.len() < e_start + 4 + e_len {
            return Err(err());
        }
        let e = BigUint::from_bytes_be(&data[e_start + 4..e_start + 4 + e_len]);
        if n.is_zero() || e.is_zero() {
            return Err(CryptoError::InvalidKey("zero modulus or exponent".into()));
        }
        let modulus_bytes = n.bits().div_ceil(8);
        Ok(RsaPublicKey {
            n,
            e,
            modulus_bytes,
        })
    }

    /// Verify an RSA signature over the SHA-1 digest of `message`.
    pub fn verify(&self, message: &[u8], signature: &RsaSignature) -> bool {
        if signature.0.len() != self.modulus_bytes {
            return false;
        }
        let sig_int = BigUint::from_bytes_be(&signature.0);
        if sig_int.cmp(&self.n) != Ordering::Less {
            return false;
        }
        let recovered = sig_int.modpow(&self.e, &self.n);
        let expected = encode_digest(&sha1(message), self.modulus_bytes);
        recovered.to_bytes_be_padded(self.modulus_bytes) == expected
    }
}

impl RsaKeyPair {
    /// Generate a fresh key pair with a modulus of roughly `bits` bits.
    ///
    /// `bits` must be at least 256 so the PKCS#1-style digest encoding fits.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<Self, CryptoError> {
        if bits < 256 {
            return Err(CryptoError::KeyGeneration(format!(
                "modulus of {bits} bits is too small to encode a SHA-1 digest"
            )));
        }
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        for _attempt in 0..64 {
            let p = BigUint::random_prime(rng, bits / 2, MR_ROUNDS);
            let q = BigUint::random_prime(rng, bits - bits / 2, MR_ROUNDS);
            if p.cmp(&q) == Ordering::Equal {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            if phi.gcd(&e).cmp(&BigUint::one()) != Ordering::Equal {
                continue;
            }
            let d = match e.modinv(&phi) {
                Some(d) => d,
                None => continue,
            };
            let modulus_bytes = n.bits().div_ceil(8);
            return Ok(RsaKeyPair {
                public: RsaPublicKey {
                    n,
                    e,
                    modulus_bytes,
                },
                d,
            });
        }
        Err(CryptoError::KeyGeneration(
            "failed to find suitable primes within the attempt budget".into(),
        ))
    }

    /// The public half of the key pair.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Serialize the full key pair (public key followed by the private
    /// exponent) so it can be stored in the `private_key[]` singleton that
    /// the generated signing rules reference.
    pub fn to_bytes(&self) -> Vec<u8> {
        let public = self.public.to_bytes();
        let d = self.d.to_bytes_be();
        let mut out = Vec::with_capacity(8 + public.len() + d.len());
        out.extend_from_slice(&(public.len() as u32).to_be_bytes());
        out.extend_from_slice(&public);
        out.extend_from_slice(&(d.len() as u32).to_be_bytes());
        out.extend_from_slice(&d);
        out
    }

    /// Parse a key pair serialized by [`RsaKeyPair::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, CryptoError> {
        let err = || CryptoError::InvalidKey("truncated RSA key pair encoding".into());
        if data.len() < 4 {
            return Err(err());
        }
        let public_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if data.len() < 4 + public_len + 4 {
            return Err(err());
        }
        let public = RsaPublicKey::from_bytes(&data[4..4 + public_len])?;
        let d_start = 4 + public_len;
        let d_len = u32::from_be_bytes([
            data[d_start],
            data[d_start + 1],
            data[d_start + 2],
            data[d_start + 3],
        ]) as usize;
        if data.len() < d_start + 4 + d_len {
            return Err(err());
        }
        let d = BigUint::from_bytes_be(&data[d_start + 4..d_start + 4 + d_len]);
        if d.is_zero() {
            return Err(CryptoError::InvalidKey("zero private exponent".into()));
        }
        Ok(RsaKeyPair { public, d })
    }

    /// Sign the SHA-1 digest of `message`.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let encoded = encode_digest(&sha1(message), self.public.modulus_bytes);
        let m = BigUint::from_bytes_be(&encoded);
        let s = m.modpow(&self.d, &self.public.n);
        RsaSignature(s.to_bytes_be_padded(self.public.modulus_bytes))
    }
}

/// PKCS#1 v1.5-style encoding of a SHA-1 digest into `len` bytes:
/// `0x00 0x01 0xFF…0xFF 0x00 digest`.
fn encode_digest(digest: &[u8; DIGEST_LEN], len: usize) -> Vec<u8> {
    assert!(
        len >= DIGEST_LEN + 11,
        "modulus too small for digest encoding"
    );
    let mut out = Vec::with_capacity(len);
    out.push(0x00);
    out.push(0x01);
    out.resize(len - DIGEST_LEN - 1, 0xFF);
    out.push(0x00);
    out.extend_from_slice(digest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(0x5ec0_b10c);
        RsaKeyPair::generate(&mut rng, bits).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(512);
        let msg = b"says[reachable](n2, n1, n2, n5)";
        let sig = kp.sign(msg);
        assert_eq!(sig.0.len(), kp.public_key().modulus_bytes());
        assert!(kp.public_key().verify(msg, &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let kp = keypair(512);
        let sig = kp.sign(b"path(p, n1, n3, 2)");
        assert!(!kp.public_key().verify(b"path(p, n1, n3, 3)", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = keypair(512);
        let mut sig = kp.sign(b"hello world");
        sig.0[0] ^= 0x01;
        assert!(!kp.public_key().verify(b"hello world", &sig));
        let truncated = RsaSignature(sig.0[..sig.0.len() - 1].to_vec());
        assert!(!kp.public_key().verify(b"hello world", &truncated));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair(512);
        let mut rng = StdRng::seed_from_u64(999);
        let kp2 = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let kp = keypair(512);
        let bytes = kp.public_key().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, kp.public_key());
        let sig = kp.sign(b"roundtrip");
        assert!(parsed.verify(b"roundtrip", &sig));
    }

    #[test]
    fn public_key_parse_rejects_garbage() {
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 200, 1, 2]).is_err());
    }

    #[test]
    fn keypair_serialization_roundtrip() {
        let kp = keypair(512);
        let bytes = kp.to_bytes();
        let parsed = RsaKeyPair::from_bytes(&bytes).unwrap();
        let sig = parsed.sign(b"serialized key still signs");
        assert!(kp.public_key().verify(b"serialized key still signs", &sig));
        assert!(RsaKeyPair::from_bytes(&bytes[..10]).is_err());
        assert!(RsaKeyPair::from_bytes(&[]).is_err());
    }

    #[test]
    fn generate_rejects_tiny_modulus() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(RsaKeyPair::generate(&mut rng, 128).is_err());
    }

    #[test]
    fn modulus_size_matches_request_roughly() {
        let kp = keypair(512);
        let bits = kp.public_key().modulus_bits();
        assert!((500..=512).contains(&bits), "modulus bits {bits}");
    }
}
