//! HMAC-SHA1 (RFC 2104).
//!
//! The paper's HMAC authentication scheme derives a 20-byte tag by applying
//! SHA-1 to a combination of the pairwise shared secret and the serialized
//! batch of tuples (§8.1).  Keys of any length are supported: keys longer
//! than the 64-byte SHA-1 block are first hashed, shorter keys are
//! zero-padded, as the RFC specifies.

use crate::sha1::{sha1, Sha1, BLOCK_LEN, DIGEST_LEN};

/// Compute the HMAC-SHA1 tag of `message` under `key`.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = sha1(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha1::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha1::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verify an HMAC-SHA1 tag.  Comparison is over the full tag length; a
/// truncated or padded tag never verifies.
pub fn hmac_sha1_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    if tag.len() != DIGEST_LEN {
        return false;
    }
    let expected = hmac_sha1(key, message);
    // Constant-time-ish comparison: accumulate differences rather than
    // early-returning on the first mismatching byte.
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::to_hex;

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha1(&key, b"Hi There");
        assert_eq!(to_hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_case_2() {
        let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(to_hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha1(&key, &data);
        assert_eq!(to_hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_case_6_long_key() {
        let key = [0xaa; 80];
        let tag = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(to_hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = b"pairwise-shared-secret";
        let msg = b"path(p1, n1, n3, 2)";
        let tag = hmac_sha1(key, msg);
        assert!(hmac_sha1_verify(key, msg, &tag));
        assert!(!hmac_sha1_verify(key, b"path(p1, n1, n3, 3)", &tag));
        assert!(!hmac_sha1_verify(b"other-secret", msg, &tag));
        let mut tampered = tag;
        tampered[0] ^= 1;
        assert!(!hmac_sha1_verify(key, msg, &tampered));
        assert!(!hmac_sha1_verify(key, msg, &tag[..19]));
    }
}
