//! Error type shared by the cryptographic primitives.

use std::fmt;

/// Errors raised by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed to verify against the supplied key and message.
    InvalidSignature,
    /// Ciphertext was malformed (e.g. shorter than the nonce prefix).
    MalformedCiphertext(String),
    /// A key had an unexpected length or structure.
    InvalidKey(String),
    /// Key generation failed to find suitable parameters within its budget.
    KeyGeneration(String),
    /// The requested principal has no key material in the key store.
    UnknownPrincipal(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedCiphertext(msg) => write!(f, "malformed ciphertext: {msg}"),
            CryptoError::InvalidKey(msg) => write!(f, "invalid key: {msg}"),
            CryptoError::KeyGeneration(msg) => write!(f, "key generation failed: {msg}"),
            CryptoError::UnknownPrincipal(p) => write!(f, "no key material for principal {p}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CryptoError::InvalidSignature.to_string(),
            "signature verification failed"
        );
        assert!(CryptoError::UnknownPrincipal("n1".into())
            .to_string()
            .contains("n1"));
        assert!(CryptoError::MalformedCiphertext("too short".into())
            .to_string()
            .contains("too short"));
    }
}
