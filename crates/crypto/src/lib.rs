//! # secureblox-crypto
//!
//! From-scratch cryptographic substrate used by the SecureBlox reproduction.
//!
//! The SecureBlox paper (SIGMOD 2010) evaluates three authentication schemes
//! (no authentication, HMAC-SHA1 over a pairwise shared secret, RSA signatures
//! over a SHA-1 digest) and optional AES symmetric encryption of serialized
//! tuple batches.  This crate provides exactly those primitives, implemented
//! without external cryptography dependencies so that the relative costs
//! (RSA ≫ HMAC ≫ none) and the on-the-wire size overheads (20-byte HMAC tag,
//! modulus-sized RSA signature) are real, measurable quantities in the
//! benchmark harness.
//!
//! ## Modules
//!
//! * [`sha1`] — the SHA-1 hash function (FIPS 180-1).
//! * [`hmac`] — HMAC-SHA1 keyed message authentication (RFC 2104).
//! * [`aes`] — AES-128 block cipher plus a CTR-mode stream construction.
//! * [`bignum`] — arbitrary-precision unsigned integers (the little that RSA
//!   needs: add, sub, mul, div/rem, modular exponentiation, Miller–Rabin).
//! * [`rsa`] — RSA key generation, signing and verification of SHA-1 digests.
//! * [`keys`] — a small key store mapping principals to key material, used by
//!   the distributed runtime to look up `public_key`, `private_key`, and the
//!   pairwise `secret` relations referenced by the generated policies.
//!
//! ## Security disclaimer
//!
//! These implementations are intended for faithful *performance and behaviour
//! reproduction* of the paper's evaluation, not for protecting production
//! data: SHA-1 is cryptographically broken, the RSA padding is a minimal
//! PKCS#1-v1.5-like construction, and no attempt is made at constant-time
//! execution.

pub mod aes;
pub mod bignum;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod rsa;
pub mod sha1;

pub use aes::{aes128_ctr_decrypt, aes128_ctr_encrypt, Aes128};
pub use bignum::BigUint;
pub use error::CryptoError;
pub use hmac::{hmac_sha1, hmac_sha1_verify};
pub use keys::{KeyStore, PrincipalKeys};
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
pub use sha1::{sha1, to_hex, Sha1};

/// Authentication schemes evaluated in the paper (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AuthScheme {
    /// No authentication: a cleartext principal header only.
    NoAuth,
    /// Keyed-hash message authentication code over a pairwise shared secret.
    HmacSha1,
    /// RSA signature over the SHA-1 digest of the message.
    Rsa,
}

impl AuthScheme {
    /// The number of signature bytes this scheme appends per signed payload.
    pub fn signature_overhead(&self, modulus_bytes: usize) -> usize {
        match self {
            AuthScheme::NoAuth => 0,
            AuthScheme::HmacSha1 => sha1::DIGEST_LEN,
            AuthScheme::Rsa => modulus_bytes,
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            AuthScheme::NoAuth => "NoAuth",
            AuthScheme::HmacSha1 => "HMAC",
            AuthScheme::Rsa => "RSA",
        }
    }
}

/// Confidentiality schemes evaluated in the paper (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncScheme {
    /// Plaintext transport.
    None,
    /// AES-128 in CTR mode with a pairwise shared secret.
    Aes128,
}

impl EncScheme {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EncScheme::None => "",
            EncScheme::Aes128 => "AES",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(AuthScheme::NoAuth.label(), "NoAuth");
        assert_eq!(AuthScheme::HmacSha1.label(), "HMAC");
        assert_eq!(AuthScheme::Rsa.label(), "RSA");
        assert_eq!(EncScheme::Aes128.label(), "AES");
    }

    #[test]
    fn signature_overheads() {
        assert_eq!(AuthScheme::NoAuth.signature_overhead(128), 0);
        assert_eq!(AuthScheme::HmacSha1.signature_overhead(128), 20);
        assert_eq!(AuthScheme::Rsa.signature_overhead(128), 128);
    }
}
