//! SHA-1 (FIPS 180-1) implemented from scratch.
//!
//! The SecureBlox paper uses SHA-1 both directly (hash partitioning in the
//! parallel hash join, `sha1(X, Hx)` user-defined function) and as the digest
//! underlying HMAC and RSA signatures.  The implementation is a direct
//! transcription of the specification: 512-bit blocks, 80 rounds, five 32-bit
//! chaining words.

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// Length of a SHA-1 input block in bytes.
pub const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes processed so far (including buffered).
    length: u64,
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            length: 0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially-buffered block first.
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }

        // Process whole blocks directly from the input.
        while input.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&input[..BLOCK_LEN]);
            self.process_block(&block);
            input = &input[BLOCK_LEN..];
        }

        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finish the computation, producing the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length.wrapping_mul(8);

        // Padding: a single 0x80 byte, zeros, then the 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);

        let mut digest = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            digest[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    /// `update` without counting the bytes towards the message length — used
    /// only while appending padding in `finalize`.
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffered] = byte;
            self.buffered += 1;
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
    }

    fn process_block(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &word) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(word);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(data);
    hasher.finalize()
}

/// Render a digest as lowercase hex, handy for hash-partitioning keys.
pub fn to_hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for byte in digest {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        to_hex(&sha1(data))
    }

    #[test]
    fn known_answer_empty() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn known_answer_abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn known_answer_448_bits() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn known_answer_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        let oneshot = sha1(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 1000] {
            let mut hasher = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn to_hex_roundtrip_length() {
        let digest = sha1(b"hello");
        assert_eq!(to_hex(&digest).len(), 40);
    }
}
