//! Property-based tests for the durable fact store.
//!
//! The invariants recovery correctness rests on: WAL record framing is a
//! faithful roundtrip for arbitrary tuples, the HMAC chain turns *any*
//! single-byte corruption into a typed error, and persist → recover
//! reproduces identical relations and an identical Merkle root, with or
//! without an intervening snapshot and across replica sync.

use proptest::prelude::*;
use secureblox_datalog::Value;
use secureblox_store::{derive_node_key, sync_store, FactStore, StoreError, Wal, WalOp, WalRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(label: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sbx-props-{label}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z][a-z0-9_]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..12).prop_map(Value::bytes),
        any::<u64>().prop_map(Value::Entity),
        "[a-z][a-z0-9_]{0,8}".prop_map(Value::pred),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), 1..5)
}

/// (predicate, tuple) pairs drawn from a small predicate alphabet so multiple
/// facts land in the same relation.
fn arb_facts(max: usize) -> impl Strategy<Value = Vec<(String, Vec<Value>)>> {
    proptest::collection::vec(
        ("[a-c]{1}".prop_map(|p| format!("rel_{p}")), arb_tuple()),
        1..max,
    )
}

proptest! {
    /// Arbitrary records written to the WAL read back identically, and the
    /// chain verifies.
    #[test]
    fn wal_framing_roundtrip(facts in arb_facts(12), watermarks in proptest::collection::vec(any::<u32>(), 12)) {
        let dir = fresh_dir("walframe");
        let key = derive_node_key(7, "n0");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, &key).unwrap();
        let mut expected = Vec::new();
        for (i, (pred, tuple)) in facts.iter().enumerate() {
            let op = if i % 3 == 2 { WalOp::Retract } else { WalOp::Insert };
            let watermark = watermarks[i % watermarks.len()] as u64;
            wal.append(op, pred, tuple.clone(), watermark).unwrap();
            expected.push(WalRecord { seq: i as u64, watermark, op, pred: pred.clone(), tuple: tuple.clone(), signature: Vec::new() });
        }
        drop(wal);
        let (_, records) = Wal::open(&path, &key).unwrap();
        prop_assert_eq!(records, expected);
    }

    /// Flipping any single byte of the WAL is detected as a typed error (a
    /// tampered record, a corrupt frame, or a truncated tail when the length
    /// prefix was inflated) — never a panic, never silent acceptance.
    #[test]
    fn wal_any_byte_flip_is_detected(facts in arb_facts(6), position in any::<u16>(), bit in 0u8..8) {
        let dir = fresh_dir("walflip");
        let key = derive_node_key(7, "n0");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, &key).unwrap();
        for (pred, tuple) in &facts {
            wal.append(WalOp::Insert, pred, tuple.clone(), 1).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let target = position as usize % bytes.len();
        bytes[target] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&path, &key) {
            Err(StoreError::TamperedRecord { .. })
            | Err(StoreError::CorruptRecord { .. })
            | Err(StoreError::TruncatedWal { .. }) => {}
            Ok(_) => prop_assert!(false, "corrupted WAL accepted (flip at {target})"),
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// persist → recover reproduces identical relations and an identical
    /// Merkle root, with a snapshot covering a prefix and the WAL the rest.
    #[test]
    fn snapshot_and_wal_recovery_roundtrip(
        before in arb_facts(10),
        after in arb_facts(10),
        retract_first in any::<bool>(),
    ) {
        let dir = fresh_dir("recover");
        let key = derive_node_key(11, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        store.log_inserts(before.iter().map(|(p, t)| (p.as_str(), t)), 10).unwrap();
        store.checkpoint(10).unwrap();
        store.log_inserts(after.iter().map(|(p, t)| (p.as_str(), t)), 20).unwrap();
        if retract_first {
            let (pred, tuple) = &before[0];
            store.log_retracts([(pred.as_str(), tuple)], 30).unwrap();
        }
        let facts = store.base_facts();
        let root = store.base_root();
        drop(store);

        let recovered = FactStore::open(&dir, &key).unwrap();
        prop_assert_eq!(recovered.base_facts(), facts);
        prop_assert_eq!(recovered.base_root(), root);
    }

    /// The Merkle root is a commitment: stores with the same facts agree on
    /// it regardless of insertion order, and adding any fact changes it.
    #[test]
    fn root_is_order_insensitive_and_content_sensitive(facts in arb_facts(8), extra in arb_tuple()) {
        let key = derive_node_key(3, "n0");
        let mut forward = FactStore::open(fresh_dir("rootf"), &key).unwrap();
        forward.log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1).unwrap();
        let mut reverse = FactStore::open(fresh_dir("rootr"), &key).unwrap();
        reverse.log_inserts(facts.iter().rev().map(|(p, t)| (p.as_str(), t)), 1).unwrap();
        prop_assert_eq!(forward.base_root(), reverse.base_root());

        let before = forward.base_root();
        forward.log_inserts([("rel_new", &extra)], 2).unwrap();
        prop_assert_ne!(forward.base_root(), before);
    }

    /// A replica synced from a checkpointed master recovers to the master's
    /// exact snapshot state and root.
    #[test]
    fn sync_reproduces_master_state(facts in arb_facts(10)) {
        let master_dir = fresh_dir("syncm");
        let replica_dir = fresh_dir("syncr");
        let key = derive_node_key(5, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        master.log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1).unwrap();
        let info = master.checkpoint(1).unwrap();

        sync_store(&master_dir, &replica_dir, &key).unwrap();
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        prop_assert_eq!(replica.base_facts(), master.base_facts());
        prop_assert_eq!(replica.base_root(), info.root);
        prop_assert_eq!(replica.snapshot().unwrap().manifest_id.clone(), info.manifest_id);
    }

    /// WAL-suffix catch-up equivalence: a replica kept up to date through
    /// incremental suffix syncs holds exactly the state a fresh replica gets
    /// from a full snapshot transfer of the master's final state.
    #[test]
    fn suffix_sync_equals_full_snapshot_sync(facts in arb_facts(10),
                                             late in arb_facts(6),
                                             retract_first in any::<bool>()) {
        let master_dir = fresh_dir("sufm");
        let incremental_dir = fresh_dir("sufi");
        let full_dir = fresh_dir("suff");
        let key = derive_node_key(5, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        master.log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1).unwrap();
        master.checkpoint(1).unwrap();
        // Incremental replica tracks the snapshot...
        sync_store(&master_dir, &incremental_dir, &key).unwrap();
        // ...then the master keeps mutating: appends, and possibly a
        // retraction of an original fact.
        master.log_inserts(late.iter().map(|(p, t)| (p.as_str(), t)), 2).unwrap();
        if retract_first {
            if let Some((pred, tuple)) = facts.first() {
                master.log_retracts([(pred.as_str(), tuple)], 3).unwrap();
            }
        }
        let stats = sync_store(&master_dir, &incremental_dir, &key).unwrap();
        prop_assert_eq!(stats.copied, 0);

        // A fresh replica gets the same state via a full snapshot transfer.
        master.checkpoint(4).unwrap();
        sync_store(&master_dir, &full_dir, &key).unwrap();

        let incremental = FactStore::open(&incremental_dir, &key).unwrap();
        let full = FactStore::open(&full_dir, &key).unwrap();
        prop_assert_eq!(incremental.base_facts(), full.base_facts());
        prop_assert_eq!(incremental.base_root(), full.base_root());
        prop_assert_eq!(incremental.base_facts(), master.base_facts());
    }
}
