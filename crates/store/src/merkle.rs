//! Merkle commitment over a node's extensional database.
//!
//! Each relation becomes one leaf: `sha1(0x00 || len(name) || name ||
//! content_digest)`, where the content digest is the SHA-1 of the relation's
//! canonical snapshot encoding (and therefore also its object id in the
//! content-addressed store).  Interior nodes are `sha1(0x01 || left ||
//! right)`; an odd node is promoted unchanged.  The domain-separation bytes
//! prevent a leaf from being reinterpreted as an interior node (the classic
//! second-preimage weakness of unseparated Merkle trees).
//!
//! The root commits the node's *entire* EDB at a watermark: two stores have
//! the same root iff every relation has the same name and the same canonical
//! tuple set.  Audit paths ([`merkle_proof`] / [`verify_proof`]) let a
//! replica prove a single relation's content against a published root without
//! shipping the other relations.

use secureblox_crypto::{sha1, Sha1};

/// Digest length (SHA-1).
pub const HASH_LEN: usize = 20;

/// Hash of one relation leaf.
pub fn leaf_hash(name: &str, content_digest: &[u8; HASH_LEN]) -> [u8; HASH_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(&[0x00]);
    hasher.update(&(name.len() as u32).to_be_bytes());
    hasher.update(name.as_bytes());
    hasher.update(content_digest);
    hasher.finalize()
}

fn interior(left: &[u8; HASH_LEN], right: &[u8; HASH_LEN]) -> [u8; HASH_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(&[0x01]);
    hasher.update(left);
    hasher.update(right);
    hasher.finalize()
}

/// Root of the tree over `leaves` in order.  The empty EDB commits to a
/// distinguished constant so "no snapshot yet" is not confusable with any
/// real state.
pub fn merkle_root(leaves: &[[u8; HASH_LEN]]) -> [u8; HASH_LEN] {
    if leaves.is_empty() {
        return sha1(b"secureblox-store/empty-edb/v1");
    }
    let mut level = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => next.push(interior(left, right)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
    }
    level[0]
}

/// One step of an audit path: the sibling hash and whether it sits to the
/// left of the path node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    pub sibling: [u8; HASH_LEN],
    pub sibling_is_left: bool,
}

/// Audit path for `leaves[index]`; `None` when the index is out of range.
pub fn merkle_proof(leaves: &[[u8; HASH_LEN]], index: usize) -> Option<Vec<ProofStep>> {
    if index >= leaves.len() {
        return None;
    }
    let mut path = Vec::new();
    let mut level = leaves.to_vec();
    let mut position = index;
    while level.len() > 1 {
        let sibling_index = position ^ 1;
        if sibling_index < level.len() {
            path.push(ProofStep {
                sibling: level[sibling_index],
                sibling_is_left: sibling_index < position,
            });
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => next.push(interior(left, right)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
        position /= 2;
    }
    Some(path)
}

/// Check an audit path from a leaf up to an expected root.
pub fn verify_proof(leaf: &[u8; HASH_LEN], path: &[ProofStep], root: &[u8; HASH_LEN]) -> bool {
    let mut current = *leaf;
    for step in path {
        current = if step.sibling_is_left {
            interior(&step.sibling, &current)
        } else {
            interior(&current, &step.sibling)
        };
    }
    current == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<[u8; HASH_LEN]> {
        (0..n)
            .map(|i| leaf_hash(&format!("rel{i}"), &sha1(&[i as u8])))
            .collect()
    }

    #[test]
    fn root_is_deterministic_and_content_sensitive() {
        let a = leaves(5);
        assert_eq!(merkle_root(&a), merkle_root(&a));
        let mut b = a.clone();
        b[3] = leaf_hash("rel3", &sha1(b"different"));
        assert_ne!(merkle_root(&a), merkle_root(&b));
        // Order matters: the tree commits to the sorted relation listing.
        let mut c = a.clone();
        c.swap(0, 4);
        assert_ne!(merkle_root(&a), merkle_root(&c));
        assert_ne!(merkle_root(&[]), merkle_root(&a[..1]));
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in 1..=9usize {
            let set = leaves(n);
            let root = merkle_root(&set);
            for (i, leaf) in set.iter().enumerate() {
                let path = merkle_proof(&set, i).unwrap();
                assert!(verify_proof(leaf, &path, &root), "n={n} i={i}");
                let mut bad = *leaf;
                bad[0] ^= 1;
                assert!(
                    !verify_proof(&bad, &path, &root),
                    "forged leaf accepted n={n} i={i}"
                );
            }
        }
        assert!(merkle_proof(&leaves(3), 3).is_none());
    }
}
