//! Content-addressed object store.
//!
//! Objects are immutable byte blobs named by the lowercase hex SHA-1 of
//! their content, stored one file per object under `objects/`.  The name *is*
//! the integrity check: [`ObjectStore::get`] re-hashes what it read and
//! returns a typed [`StoreError::ObjectMismatch`] when the content no longer
//! matches the id, so replica sync can copy objects from an untrusted
//! directory and still detect tampering on first use.
//!
//! Writes go through a temporary file and an atomic rename, so a crash never
//! leaves a half-written object under a valid name.

use crate::error::{Result, StoreError};
use secureblox_crypto::{sha1, to_hex};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// An object id: 40 lowercase hex characters of SHA-1.
pub type ObjectId = String;

/// Hash bytes into their object id.
pub fn object_id(bytes: &[u8]) -> ObjectId {
    to_hex(&sha1(bytes))
}

/// Check that a string is a well-formed object id.
pub fn is_object_id(id: &str) -> bool {
    id.len() == 40
        && id
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// A directory of content-addressed objects.
pub struct ObjectStore {
    dir: PathBuf,
}

impl ObjectStore {
    /// Open (creating if absent) the object directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ObjectStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        Ok(ObjectStore { dir })
    }

    /// The directory objects live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, id: &str) -> PathBuf {
        self.dir.join(id)
    }

    /// Store bytes, returning their id.  Idempotent: an existing object with
    /// the same id is left untouched (content addressing makes it identical).
    pub fn put(&self, bytes: &[u8]) -> Result<ObjectId> {
        let id = object_id(bytes);
        let path = self.path_of(&id);
        if path.exists() {
            return Ok(id);
        }
        let tmp = self.dir.join(format!("{id}.tmp.{}", std::process::id()));
        {
            let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
            file.write_all(bytes).map_err(|e| StoreError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        Ok(id)
    }

    /// Whether an object is present (content not yet verified).
    pub fn contains(&self, id: &str) -> bool {
        self.path_of(id).exists()
    }

    /// Read and verify an object.
    pub fn get(&self, id: &str) -> Result<Vec<u8>> {
        let path = self.path_of(id);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingObject { id: id.to_string() })
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        let actual = object_id(&bytes);
        if actual != id {
            return Err(StoreError::ObjectMismatch {
                expected: id.to_string(),
                actual,
            });
        }
        Ok(bytes)
    }

    /// Ids of every object present (unverified), sorted.
    pub fn ids(&self) -> Result<Vec<ObjectId>> {
        let mut ids = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.dir, e))?;
            if let Some(name) = entry.file_name().to_str() {
                if is_object_id(name) {
                    ids.push(name.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbx-obj-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_idempotence() {
        let store = ObjectStore::open(tmp("roundtrip")).unwrap();
        let id = store.put(b"relation bytes").unwrap();
        assert!(is_object_id(&id));
        assert_eq!(store.put(b"relation bytes").unwrap(), id);
        assert_eq!(store.get(&id).unwrap(), b"relation bytes");
        assert_eq!(store.ids().unwrap(), vec![id]);
    }

    #[test]
    fn missing_and_tampered_objects_are_typed() {
        let store = ObjectStore::open(tmp("tamper")).unwrap();
        let absent = object_id(b"never stored");
        assert!(matches!(
            store.get(&absent),
            Err(StoreError::MissingObject { .. })
        ));
        let id = store.put(b"good content").unwrap();
        let path = store.dir().join(&id);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get(&id),
            Err(StoreError::ObjectMismatch { .. })
        ));
    }
}
