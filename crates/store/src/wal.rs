//! Append-only write-ahead log of base-fact insertions and retractions.
//!
//! Every record is framed as `len:u32 | body | tag:20` where the body is the
//! canonical [`secureblox_datalog::codec`] encoding of the record and the tag
//! is an HMAC-SHA1 *chain*: `tag_i = HMAC(key, tag_{i-1} || len_i || body_i)`
//! with an all-zero genesis tag.  Chaining means an attacker who can rewrite
//! the file cannot splice, reorder, drop, or alter records without the key —
//! any single flipped byte invalidates every tag from that record onward, and
//! verification reports the first failing sequence number as a typed
//! [`StoreError::TamperedRecord`], never a panic.
//!
//! Torn writes (a crash mid-append) leave a readable verified prefix followed
//! by a partial frame; [`Wal::open_tolerant`] recovers the prefix and reports
//! where the tail was cut, while [`Wal::open`] surfaces the typed
//! [`StoreError::TruncatedWal`] so callers can decide.

use crate::error::{Result, StoreError};
use secureblox_crypto::hmac_sha1;
use secureblox_datalog::codec::{deserialize_tuple, read_string, serialize_tuple, write_string};
use secureblox_datalog::value::Tuple;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Length of the HMAC-SHA1 chain tag.
pub const TAG_LEN: usize = 20;

/// The operations a WAL record can describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// A base fact inserted by a committed transaction.
    Insert,
    /// A base fact retracted (incremental deletion).
    Retract,
    /// An export-cursor entry: this tuple was shipped to a peer with the
    /// recorded detached signature.  Never touches the base fact set.
    ExportMark,
    /// The matching cursor withdrawal: the retraction for this tuple has been
    /// flushed to the peer, so no recovery obligation remains.
    ExportClear,
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Zero-based position in the log (also the chain index).
    pub seq: u64,
    /// Virtual-time watermark of the committing transaction, in nanoseconds.
    /// Records that committed together share a watermark, which lets recovery
    /// replay them with the original transaction boundaries.
    pub watermark: u64,
    pub op: WalOp,
    /// The predicate the fact belongs to.
    pub pred: String,
    pub tuple: Tuple,
    /// Detached signature shipped with the tuple; only encoded for the export
    /// ops, so [`WalOp::Insert`]/[`WalOp::Retract`] frames stay byte-identical
    /// to logs written before export tracking existed.
    pub signature: Vec<u8>,
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.pred.len());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.watermark.to_be_bytes());
        out.push(match self.op {
            WalOp::Insert => 0,
            WalOp::Retract => 1,
            WalOp::ExportMark => 2,
            WalOp::ExportClear => 3,
        });
        write_string(&mut out, &self.pred);
        out.extend_from_slice(&serialize_tuple(&self.tuple));
        if matches!(self.op, WalOp::ExportMark | WalOp::ExportClear) {
            out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
            out.extend_from_slice(&self.signature);
        }
        out
    }

    /// Decode a record body.  `expected_seq` is `None` for the first record
    /// of a log — a WAL may start at any base sequence number (a store seeded
    /// from a synced snapshot continues the master's numbering without
    /// holding its history) — and enforces contiguity afterwards.
    fn decode_body(index: u64, expected_seq: Option<u64>, body: &[u8]) -> Result<WalRecord> {
        let corrupt = |reason: &str| StoreError::CorruptRecord {
            seq: index,
            reason: reason.into(),
        };
        let take8 = |pos: usize| -> Result<u64> {
            let bytes = body
                .get(pos..pos + 8)
                .ok_or_else(|| corrupt("truncated header"))?;
            Ok(u64::from_be_bytes(bytes.try_into().expect("8 bytes")))
        };
        let seq = take8(0)?;
        if let Some(expected) = expected_seq {
            if seq != expected {
                return Err(StoreError::CorruptRecord {
                    seq: index,
                    reason: format!("record claims sequence {seq}, expected {expected}"),
                });
            }
        }
        let watermark = take8(8)?;
        let op = match body.get(16) {
            Some(0) => WalOp::Insert,
            Some(1) => WalOp::Retract,
            Some(2) => WalOp::ExportMark,
            Some(3) => WalOp::ExportClear,
            Some(other) => return Err(corrupt(&format!("unknown op tag {other}"))),
            None => return Err(corrupt("truncated op tag")),
        };
        let mut pos = 17usize;
        let pred = read_string(body, &mut pos)
            .map_err(|reason| StoreError::CorruptRecord { seq: index, reason })?;
        let tuple = deserialize_tuple(body, &mut pos)
            .map_err(|reason| StoreError::CorruptRecord { seq: index, reason })?;
        let signature = if matches!(op, WalOp::ExportMark | WalOp::ExportClear) {
            let len_bytes = body
                .get(pos..pos + 4)
                .ok_or_else(|| corrupt("truncated signature length"))?;
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            pos += 4;
            let bytes = body
                .get(pos..pos + len)
                .ok_or_else(|| corrupt("truncated signature"))?;
            pos += len;
            bytes.to_vec()
        } else {
            Vec::new()
        };
        if pos != body.len() {
            return Err(corrupt("trailing bytes after tuple"));
        }
        Ok(WalRecord {
            seq,
            watermark,
            op,
            pred,
            tuple,
            signature,
        })
    }
}

/// Compute the chain tag for one frame.
fn chain_tag(key: &[u8], prev: &[u8; TAG_LEN], len_be: &[u8; 4], body: &[u8]) -> [u8; TAG_LEN] {
    let mut message = Vec::with_capacity(TAG_LEN + 4 + body.len());
    message.extend_from_slice(prev);
    message.extend_from_slice(len_be);
    message.extend_from_slice(body);
    hmac_sha1(key, &message)
}

/// The outcome of reading a WAL file from disk.
#[derive(Debug)]
pub struct WalReadout {
    pub records: Vec<WalRecord>,
    /// Chain tag of the last verified record (genesis tag when empty).
    pub last_tag: [u8; TAG_LEN],
    /// Byte offset where a torn tail begins, if the file ends mid-frame.
    pub torn_at: Option<u64>,
}

fn read_wal(path: &Path, key: &[u8]) -> Result<WalReadout> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut data)
                .map_err(|e| StoreError::io(path, e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::io(path, e)),
    }
    let mut records = Vec::new();
    let mut tag = [0u8; TAG_LEN];
    let mut pos = 0usize;
    let mut torn_at = None;
    while pos < data.len() {
        let frame_start = pos;
        let Some(len_bytes) = data.get(pos..pos + 4) else {
            torn_at = Some(frame_start as u64);
            break;
        };
        let len_be: [u8; 4] = len_bytes.try_into().expect("4 bytes");
        let len = u32::from_be_bytes(len_be) as usize;
        let Some(body) = data.get(pos + 4..pos + 4 + len) else {
            torn_at = Some(frame_start as u64);
            break;
        };
        let Some(stored_tag) = data.get(pos + 4 + len..pos + 4 + len + TAG_LEN) else {
            torn_at = Some(frame_start as u64);
            break;
        };
        let index = records.len() as u64;
        let expected = chain_tag(key, &tag, &len_be, body);
        if stored_tag != expected {
            return Err(StoreError::TamperedRecord { seq: index });
        }
        let expected_seq = records.last().map(|r: &WalRecord| r.seq + 1);
        records.push(WalRecord::decode_body(index, expected_seq, body)?);
        tag = expected;
        pos += 4 + len + TAG_LEN;
    }
    Ok(WalReadout {
        records,
        last_tag: tag,
        torn_at,
    })
}

/// An open write-ahead log: verified records already on disk plus an append
/// handle that continues the HMAC chain.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    key: Vec<u8>,
    file: File,
    next_seq: u64,
    last_tag: [u8; TAG_LEN],
}

impl Wal {
    /// Open (creating if absent) and verify the full log.  A torn tail is an
    /// error here; use [`Wal::open_tolerant`] to salvage the verified prefix.
    pub fn open(path: impl Into<PathBuf>, key: &[u8]) -> Result<(Wal, Vec<WalRecord>)> {
        let (wal, readout) = Self::open_inner(path.into(), key)?;
        if let Some(offset) = readout.torn_at {
            return Err(StoreError::TruncatedWal { offset });
        }
        Ok((wal, readout.records))
    }

    /// Open the log, truncating a torn tail (crash mid-append) after the last
    /// fully verified record.  Returns the salvage offset when that happened.
    pub fn open_tolerant(
        path: impl Into<PathBuf>,
        key: &[u8],
    ) -> Result<(Wal, Vec<WalRecord>, Option<u64>)> {
        let path = path.into();
        let (wal, readout) = Self::open_inner(path.clone(), key)?;
        if let Some(offset) = readout.torn_at {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| StoreError::io(&path, e))?;
            file.set_len(offset).map_err(|e| StoreError::io(&path, e))?;
        }
        Ok((wal, readout.records, readout.torn_at))
    }

    fn open_inner(path: PathBuf, key: &[u8]) -> Result<(Wal, WalReadout)> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StoreError::io(parent, e))?;
        }
        let readout = read_wal(&path, key)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        let wal = Wal {
            path,
            key: key.to_vec(),
            file,
            next_seq: readout.records.last().map_or(0, |r| r.seq + 1),
            last_tag: readout.last_tag,
        };
        Ok((wal, readout))
    }

    /// Advance the next sequence number without writing anything.  Used when
    /// a store holds a snapshot but not the WAL history behind it (a synced
    /// replica): fresh appends continue the snapshot's numbering so the
    /// `seq >= wal_seq` replay rule keeps working.  Never moves backwards.
    pub fn advance_seq_to(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Sequence number the next appended record will get (== records written).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one record, extending the HMAC chain, and return it.
    pub fn append(
        &mut self,
        op: WalOp,
        pred: &str,
        tuple: Tuple,
        watermark: u64,
    ) -> Result<WalRecord> {
        self.append_signed(op, pred, tuple, watermark, Vec::new())
    }

    /// [`Wal::append`] with a detached signature payload; only the export ops
    /// encode it, base-fact records ignore it.
    pub fn append_signed(
        &mut self,
        op: WalOp,
        pred: &str,
        tuple: Tuple,
        watermark: u64,
        signature: Vec<u8>,
    ) -> Result<WalRecord> {
        let record = WalRecord {
            seq: self.next_seq,
            watermark,
            op,
            pred: pred.to_string(),
            tuple,
            signature,
        };
        let body = record.encode_body();
        let len_be = (body.len() as u32).to_be_bytes();
        let tag = chain_tag(&self.key, &self.last_tag, &len_be, &body);
        let mut frame = Vec::with_capacity(4 + body.len() + TAG_LEN);
        frame.extend_from_slice(&len_be);
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&tag);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.last_tag = tag;
        self.next_seq += 1;
        Ok(record)
    }

    /// Flush appended records to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush().map_err(|e| StoreError::io(&self.path, e))
    }

    /// Compact the log: drop every record on disk and restart the HMAC chain
    /// from the genesis tag, while continuing the sequence numbering at
    /// `next_seq` (never moving backwards).  Called after a snapshot has made
    /// the logged history redundant — recovery skips records below the
    /// snapshot's `wal_seq`, so a log whose first record starts there is
    /// equivalent to the full log.
    pub fn truncate_all(&mut self, next_seq: u64) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.last_tag = [0u8; TAG_LEN];
        self.next_seq = self.next_seq.max(next_seq);
        Ok(())
    }

    /// Re-read and verify the log from disk without touching the append state.
    pub fn verify(&self) -> Result<Vec<WalRecord>> {
        let readout = read_wal(&self.path, &self.key)?;
        if let Some(offset) = readout.torn_at {
            return Err(StoreError::TruncatedWal { offset });
        }
        Ok(readout.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::value::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbx-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample(i: i64) -> Tuple {
        vec![Value::str("n0"), Value::Int(i), Value::bytes(vec![7, 8, 9])]
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = tmp("roundtrip");
        let key = b"k";
        let (mut wal, records) = Wal::open(&path, key).unwrap();
        assert!(records.is_empty());
        for i in 0..5 {
            wal.append(WalOp::Insert, "link", sample(i), 100 + i as u64)
                .unwrap();
        }
        wal.append(WalOp::Retract, "link", sample(0), 200).unwrap();
        drop(wal);
        let (wal, records) = Wal::open(&path, key).unwrap();
        assert_eq!(records.len(), 6);
        assert_eq!(wal.next_seq(), 6);
        assert_eq!(records[2].tuple, sample(2));
        assert_eq!(records[5].op, WalOp::Retract);
        assert_eq!(records[5].watermark, 200);
    }

    #[test]
    fn export_ops_roundtrip_with_signature() {
        let path = tmp("export");
        let key = b"k";
        let (mut wal, _) = Wal::open(&path, key).unwrap();
        wal.append(WalOp::Insert, "link", sample(1), 10).unwrap();
        wal.append_signed(
            WalOp::ExportMark,
            "says$link",
            sample(2),
            11,
            vec![0xAA, 0xBB, 0xCC],
        )
        .unwrap();
        wal.append_signed(WalOp::ExportClear, "says$link", sample(2), 12, Vec::new())
            .unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path, key).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].signature, Vec::<u8>::new());
        assert_eq!(records[1].op, WalOp::ExportMark);
        assert_eq!(records[1].pred, "says$link");
        assert_eq!(records[1].signature, vec![0xAA, 0xBB, 0xCC]);
        assert_eq!(records[2].op, WalOp::ExportClear);
        assert!(records[2].signature.is_empty());
    }

    #[test]
    fn flipped_byte_is_typed_tamper_error() {
        let path = tmp("tamper");
        let key = b"k";
        let (mut wal, _) = Wal::open(&path, key).unwrap();
        for i in 0..3 {
            wal.append(WalOp::Insert, "link", sample(i), i as u64)
                .unwrap();
        }
        drop(wal);
        let clean = std::fs::read(&path).unwrap();
        for position in [4usize, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[position] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match Wal::open(&path, key) {
                Err(StoreError::TamperedRecord { .. }) => {}
                other => panic!("flip at {position}: expected TamperedRecord, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_key_rejects_first_record() {
        let path = tmp("wrongkey");
        let (mut wal, _) = Wal::open(&path, b"right").unwrap();
        wal.append(WalOp::Insert, "link", sample(1), 1).unwrap();
        drop(wal);
        match Wal::open(&path, b"wrong") {
            Err(StoreError::TamperedRecord { seq: 0 }) => {}
            other => panic!("expected TamperedRecord at 0, got {other:?}"),
        }
    }

    #[test]
    fn truncate_all_restarts_chain_and_keeps_numbering() {
        let path = tmp("truncate");
        let key = b"k";
        let (mut wal, _) = Wal::open(&path, key).unwrap();
        for i in 0..4 {
            wal.append(WalOp::Insert, "link", sample(i), i as u64)
                .unwrap();
        }
        wal.truncate_all(4).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert_eq!(wal.next_seq(), 4);
        // Post-compaction appends verify from the genesis tag and keep the
        // sequence numbering.
        wal.append(WalOp::Insert, "link", sample(99), 9).unwrap();
        drop(wal);
        let (wal, records) = Wal::open(&path, key).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 4);
        assert_eq!(wal.next_seq(), 5);
    }

    #[test]
    fn torn_tail_detected_and_salvaged() {
        let path = tmp("torn");
        let key = b"k";
        let (mut wal, _) = Wal::open(&path, key).unwrap();
        wal.append(WalOp::Insert, "link", sample(1), 1).unwrap();
        wal.append(WalOp::Insert, "link", sample(2), 2).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        match Wal::open(&path, key) {
            Err(StoreError::TruncatedWal { .. }) => {}
            other => panic!("expected TruncatedWal, got {other:?}"),
        }
        let (wal, records, torn) = Wal::open_tolerant(&path, key).unwrap();
        assert_eq!(records.len(), 1);
        assert!(torn.is_some());
        assert_eq!(wal.next_seq(), 1);
        // The salvaged log is clean again and appendable.
        drop(wal);
        let (mut wal, records) = Wal::open(&path, key).unwrap();
        assert_eq!(records.len(), 1);
        wal.append(WalOp::Insert, "link", sample(3), 3).unwrap();
        drop(wal);
        assert_eq!(Wal::open(&path, key).unwrap().1.len(), 2);
    }
}
