//! # secureblox-store — durable fact store for SecureBlox deployments
//!
//! SecureBlox derives all distributed state from authenticated base facts,
//! which makes durability unusually clean: persist the *extensional*
//! database (the facts a node was told) and every derived fact is
//! rebuildable by re-running the seminaive fixpoint.  This crate provides
//! that persistence, with the same adversarial posture as the rest of the
//! reproduction — storage, like the network, is an untrusted substrate
//! (cf. SecureCloud / SecureStreams), so every byte read back is
//! authenticated before it is believed:
//!
//! * [`wal`] — an append-only log of base-fact insertions/retractions,
//!   each record framed with the canonical tuple codec and sealed by an
//!   HMAC-SHA1 *chain* tag, so splicing, reordering, or flipping a single
//!   byte is a typed [`StoreError::TamperedRecord`];
//! * [`object`] — a content-addressed object store (SHA-1 names), the
//!   git-style substrate for snapshots;
//! * [`merkle`] — the commitment scheme: one leaf per relation, one root
//!   per snapshot, with audit paths for single-relation proofs;
//! * [`snapshot`] — Merkle-committed manifests binding a node's entire
//!   EDB at a virtual-time watermark, plus the atomically swapped `HEAD`
//!   pointer;
//! * [`store`] — [`FactStore`]: open-is-recovery (load snapshot, verify
//!   and replay the WAL suffix), append, checkpoint;
//! * [`sync`] — master → replica replication by copying missing objects
//!   and swapping `HEAD`.
//!
//! The deployment-facing integration (logging committed batches,
//! `Deployment::checkpoint`, `Deployment::recover`) lives in the
//! `secureblox` core crate; see `DESIGN.md` for the full design.

pub mod error;
pub mod merkle;
pub mod object;
pub mod snapshot;
pub mod store;
pub mod sync;
pub mod wal;

pub use error::{Result, StoreError};
pub use merkle::{leaf_hash, merkle_proof, merkle_root, verify_proof, ProofStep, HASH_LEN};
pub use object::{object_id, ObjectId, ObjectStore};
pub use snapshot::{RelationEntry, SnapshotManifest};
pub use store::{derive_node_key, DurabilityConfig, FactStore, SnapshotInfo};
pub use sync::{sync_deployment, sync_store, SyncStats};
pub use wal::{Wal, WalOp, WalRecord};
