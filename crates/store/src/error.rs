//! Typed errors for the durable fact store.

use std::fmt;
use std::path::PathBuf;

/// Errors raised while persisting, verifying, or recovering durable state.
///
/// Tampering and corruption are *typed* outcomes, never panics: recovery code
/// paths distinguish an unreadable file ([`StoreError::Io`]) from a record
/// whose HMAC chain fails ([`StoreError::TamperedRecord`]) from an object
/// whose content hash no longer matches its name
/// ([`StoreError::ObjectMismatch`]).
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A WAL record that decodes incorrectly (bad framing, bad value tags).
    CorruptRecord { seq: u64, reason: String },
    /// A WAL record whose HMAC chain tag does not verify — the byte stream
    /// was modified (or the wrong key is in use).
    TamperedRecord { seq: u64 },
    /// The WAL ends mid-record (torn write); `offset` is where the readable
    /// prefix ends.
    TruncatedWal { offset: u64 },
    /// A content-addressed object whose SHA-1 no longer matches its id.
    ObjectMismatch { expected: String, actual: String },
    /// A referenced content-addressed object is absent.
    MissingObject { id: String },
    /// The `HEAD` pointer is unreadable or malformed.
    CorruptHead { reason: String },
    /// A snapshot manifest that decodes incorrectly.
    CorruptSnapshot { reason: String },
    /// The Merkle root recomputed after recovery does not match the
    /// committed root.
    RootMismatch { expected: String, actual: String },
    /// A failure surfaced by the Datalog engine while replaying facts.
    Replay(String),
    /// A replica holds a record at a WAL position whose content differs from
    /// the master's — local appends consumed sequence numbers the master
    /// later used.  Shipping the suffix would silently diverge the replica,
    /// so synchronization refuses instead.
    ReplicaDiverged { seq: u64 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::CorruptRecord { seq, reason } => {
                write!(f, "corrupt WAL record {seq}: {reason}")
            }
            StoreError::TamperedRecord { seq } => {
                write!(
                    f,
                    "WAL record {seq} failed HMAC chain verification (tampered or wrong key)"
                )
            }
            StoreError::TruncatedWal { offset } => {
                write!(f, "WAL truncated mid-record at byte {offset} (torn write)")
            }
            StoreError::ObjectMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot object {expected} hashes to {actual} (content tampered)"
                )
            }
            StoreError::MissingObject { id } => write!(f, "missing snapshot object {id}"),
            StoreError::CorruptHead { reason } => write!(f, "corrupt HEAD pointer: {reason}"),
            StoreError::CorruptSnapshot { reason } => {
                write!(f, "corrupt snapshot manifest: {reason}")
            }
            StoreError::RootMismatch { expected, actual } => write!(
                f,
                "recovered state commits to Merkle root {actual}, snapshot committed {expected}"
            ),
            StoreError::Replay(message) => write!(f, "replay failed: {message}"),
            StoreError::ReplicaDiverged { seq } => {
                write!(
                    f,
                    "replica WAL diverged from the master at sequence {seq} (conflicting local \
                     appends); re-seed the replica from a snapshot"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Attach a path to a raw I/O error.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
