//! Content-addressed snapshots of a node's extensional database.
//!
//! A snapshot is two kinds of objects in the [`crate::object::ObjectStore`]:
//!
//! * one **relation object** per non-empty relation — the relation name, the
//!   tuple count, and every tuple in canonical [`secureblox_datalog::codec`]
//!   encoding, sorted by encoded bytes so equal relations always produce the
//!   identical object (and therefore the identical object id);
//! * one **manifest object** naming the watermark, the WAL sequence number
//!   the snapshot includes, the sorted relation → object-id listing, and the
//!   Merkle root binding them all together.
//!
//! A small `HEAD` file (outside the object store, swapped atomically) points
//! at the current manifest.  Because objects are immutable and content
//! addressed, checkpointing never rewrites old state and replica sync is
//! "copy missing objects, then swap HEAD".

use crate::error::{Result, StoreError};
use crate::merkle::{leaf_hash, merkle_root, HASH_LEN};
use crate::object::{is_object_id, ObjectId};
use secureblox_crypto::sha1;
use secureblox_datalog::codec::{deserialize_tuple, read_string, write_string};
use secureblox_datalog::value::Tuple;
use std::fs;
use std::path::Path;

const MANIFEST_MAGIC: &[u8; 8] = b"SBSNAP1\0";
const RELATION_MAGIC: &[u8; 8] = b"SBREL1\0\0";

/// One relation in a snapshot manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationEntry {
    pub name: String,
    /// Object id of the relation object (= SHA-1 of its encoding).
    pub object: ObjectId,
}

impl RelationEntry {
    /// The Merkle leaf committing this relation.
    pub fn leaf(&self) -> Result<[u8; HASH_LEN]> {
        let digest =
            decode_hex_digest(&self.object).ok_or_else(|| StoreError::CorruptSnapshot {
                reason: format!("bad object id {}", self.object),
            })?;
        Ok(leaf_hash(&self.name, &digest))
    }
}

/// The manifest committing a node's entire EDB at a watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Virtual time (ns) the snapshot was taken at.
    pub watermark: u64,
    /// Number of WAL records the snapshot state already includes; recovery
    /// replays only records with `seq >= wal_seq`.
    pub wal_seq: u64,
    /// Relations sorted by name.
    pub relations: Vec<RelationEntry>,
    /// Merkle root over the relation leaves in listed order.
    pub root: [u8; HASH_LEN],
}

impl SnapshotManifest {
    /// Recompute the Merkle root from the relation listing.
    pub fn compute_root(relations: &[RelationEntry]) -> Result<[u8; HASH_LEN]> {
        let leaves: Vec<[u8; HASH_LEN]> = relations
            .iter()
            .map(|entry| entry.leaf())
            .collect::<Result<_>>()?;
        Ok(merkle_root(&leaves))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&self.watermark.to_be_bytes());
        out.extend_from_slice(&self.wal_seq.to_be_bytes());
        out.extend_from_slice(&(self.relations.len() as u32).to_be_bytes());
        for entry in &self.relations {
            write_string(&mut out, &entry.name);
            write_string(&mut out, &entry.object);
        }
        out.extend_from_slice(&self.root);
        out
    }

    pub fn decode(data: &[u8]) -> Result<SnapshotManifest> {
        let corrupt = |reason: &str| StoreError::CorruptSnapshot {
            reason: reason.to_string(),
        };
        if data.get(..8) != Some(MANIFEST_MAGIC.as_slice()) {
            return Err(corrupt("bad manifest magic"));
        }
        let take8 = |pos: usize| -> Result<u64> {
            let bytes = data
                .get(pos..pos + 8)
                .ok_or_else(|| corrupt("truncated header"))?;
            Ok(u64::from_be_bytes(bytes.try_into().expect("8 bytes")))
        };
        let watermark = take8(8)?;
        let wal_seq = take8(16)?;
        let count_bytes = data.get(24..28).ok_or_else(|| corrupt("truncated count"))?;
        let count = u32::from_be_bytes(count_bytes.try_into().expect("4 bytes")) as usize;
        let mut pos = 28usize;
        let mut relations = Vec::with_capacity(count);
        for _ in 0..count {
            let name = read_string(data, &mut pos)
                .map_err(|reason| StoreError::CorruptSnapshot { reason })?;
            let object = read_string(data, &mut pos)
                .map_err(|reason| StoreError::CorruptSnapshot { reason })?;
            if !is_object_id(&object) {
                return Err(corrupt(&format!("malformed object id for relation {name}")));
            }
            relations.push(RelationEntry { name, object });
        }
        let root_bytes = data
            .get(pos..pos + HASH_LEN)
            .ok_or_else(|| corrupt("truncated root"))?;
        pos += HASH_LEN;
        if pos != data.len() {
            return Err(corrupt("trailing bytes after root"));
        }
        if !relations.windows(2).all(|w| w[0].name < w[1].name) {
            return Err(corrupt("relation listing not strictly sorted by name"));
        }
        let manifest = SnapshotManifest {
            watermark,
            wal_seq,
            relations,
            root: root_bytes.try_into().expect("20 bytes"),
        };
        let recomputed = SnapshotManifest::compute_root(&manifest.relations)?;
        if recomputed != manifest.root {
            return Err(StoreError::RootMismatch {
                expected: secureblox_crypto::to_hex(&manifest.root),
                actual: secureblox_crypto::to_hex(&recomputed),
            });
        }
        Ok(manifest)
    }
}

/// Encode a relation object from canonically encoded tuples (must already be
/// sorted by encoded bytes; the encoding asserts this in debug builds).
pub fn encode_relation<'a>(
    name: &str,
    encoded_tuples: impl ExactSizeIterator<Item = &'a Vec<u8>>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(RELATION_MAGIC);
    write_string(&mut out, name);
    out.extend_from_slice(&(encoded_tuples.len() as u32).to_be_bytes());
    let mut previous: Option<&Vec<u8>> = None;
    for encoded in encoded_tuples {
        debug_assert!(
            previous.is_none_or(|p| p < encoded),
            "tuples must be sorted"
        );
        previous = Some(encoded);
        out.extend_from_slice(encoded);
    }
    out
}

/// Decode a relation object into its name and tuples.
pub fn decode_relation(data: &[u8]) -> Result<(String, Vec<Tuple>)> {
    let corrupt = |reason: String| StoreError::CorruptSnapshot { reason };
    if data.get(..8) != Some(RELATION_MAGIC.as_slice()) {
        return Err(corrupt("bad relation magic".into()));
    }
    let mut pos = 8usize;
    let name = read_string(data, &mut pos).map_err(corrupt)?;
    let count_bytes = data
        .get(pos..pos + 4)
        .ok_or_else(|| corrupt("truncated tuple count".into()))?;
    pos += 4;
    let count = u32::from_be_bytes(count_bytes.try_into().expect("4 bytes")) as usize;
    let mut tuples = Vec::with_capacity(count);
    for _ in 0..count {
        tuples.push(deserialize_tuple(data, &mut pos).map_err(corrupt)?);
    }
    if pos != data.len() {
        return Err(corrupt(format!("trailing bytes in relation object {name}")));
    }
    Ok((name, tuples))
}

/// The content digest of a relation object (its would-be object id, raw).
pub fn relation_digest(bytes: &[u8]) -> [u8; HASH_LEN] {
    sha1(bytes)
}

fn decode_hex_digest(hex: &str) -> Option<[u8; HASH_LEN]> {
    if hex.len() != 2 * HASH_LEN {
        return None;
    }
    let mut out = [0u8; HASH_LEN];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let high = (chunk[0] as char).to_digit(16)?;
        let low = (chunk[1] as char).to_digit(16)?;
        out[i] = (high * 16 + low) as u8;
    }
    Some(out)
}

/// Read the `HEAD` pointer: the manifest's object id.
pub fn read_head(path: &Path) -> Result<Option<ObjectId>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(path, e)),
    };
    let id = text.trim();
    if !is_object_id(id) {
        return Err(StoreError::CorruptHead {
            reason: format!("not an object id: {id:?}"),
        });
    }
    Ok(Some(id.to_string()))
}

/// Atomically swap the `HEAD` pointer to a new manifest id.
pub fn write_head(path: &Path, id: &ObjectId) -> Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, format!("{id}\n")).map_err(|e| StoreError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::object_id;
    use secureblox_datalog::codec::serialize_tuple;
    use secureblox_datalog::value::Value;

    fn sample_relation() -> (Vec<u8>, Vec<Tuple>) {
        let mut tuples = vec![
            vec![Value::str("a"), Value::Int(1)],
            vec![Value::str("b"), Value::Int(2), Value::Bool(true)],
        ];
        tuples.sort_by(|x, y| serialize_tuple(x).cmp(&serialize_tuple(y)));
        let encoded: Vec<Vec<u8>> = tuples.iter().map(|t| serialize_tuple(t)).collect();
        (encode_relation("link", encoded.iter()), tuples)
    }

    #[test]
    fn relation_roundtrip() {
        let (bytes, tuples) = sample_relation();
        let (name, back) = decode_relation(&bytes).unwrap();
        assert_eq!(name, "link");
        assert_eq!(back, tuples);
        assert!(decode_relation(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_root_check() {
        let (bytes, _) = sample_relation();
        let relations = vec![RelationEntry {
            name: "link".into(),
            object: object_id(&bytes),
        }];
        let root = SnapshotManifest::compute_root(&relations).unwrap();
        let manifest = SnapshotManifest {
            watermark: 12345,
            wal_seq: 7,
            relations,
            root,
        };
        let encoded = manifest.encode();
        assert_eq!(SnapshotManifest::decode(&encoded).unwrap(), manifest);
        // A manifest whose root does not match its listing is rejected.
        let mut forged = manifest.clone();
        forged.root[0] ^= 1;
        assert!(matches!(
            SnapshotManifest::decode(&forged.encode()),
            Err(StoreError::RootMismatch { .. })
        ));
    }

    #[test]
    fn head_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("sbx-head-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let head = dir.join("HEAD");
        assert_eq!(read_head(&head).unwrap(), None);
        let id = object_id(b"manifest");
        write_head(&head, &id).unwrap();
        assert_eq!(read_head(&head).unwrap(), Some(id));
        std::fs::write(&head, "not-a-hash\n").unwrap();
        assert!(matches!(
            read_head(&head),
            Err(StoreError::CorruptHead { .. })
        ));
    }
}
