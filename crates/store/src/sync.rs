//! Master → replica store synchronization.
//!
//! Replication has two layers, mirroring the store's own two layers:
//!
//! * **Snapshots** are immutable content-addressed objects, so that part is
//!   rsync-shaped: read the master's `HEAD`, copy every object its manifest
//!   references that the replica lacks (each verified against its content
//!   address while copying), then atomically swap the replica's `HEAD`.  A
//!   reader of the replica either sees the old snapshot or the new one,
//!   never a mixture, and a corrupted master object is detected *before* the
//!   swap so a bad sync can never install a dangling or tampered snapshot.
//! * **The WAL suffix** past the last common snapshot is shipped
//!   record-by-record: the master's chain is verified with the node key,
//!   every record at or past the replica's append position is re-appended to
//!   the replica's own HMAC chain, and the replica's log is rebuilt from the
//!   snapshot watermark when the master's numbering has moved past it (the
//!   dropped records are superseded by the snapshot that was just copied).
//!
//! Together they make catch-up incremental at *WAL granularity*: a replica
//! synced after every batch tracks the master's current base state without a
//! single full snapshot transfer beyond the first, and recovery from a
//! replica answers with the master's latest facts, not just its latest
//! checkpoint.

use crate::error::{Result, StoreError};
use crate::object::ObjectStore;
use crate::snapshot::{read_head, write_head, SnapshotManifest};
use crate::store::derive_node_key;
use crate::wal::Wal;
use std::path::Path;

/// What a sync did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Objects copied into the replica.
    pub copied: usize,
    /// Referenced objects the replica already had.
    pub skipped: usize,
    /// WAL records shipped past the snapshot (the suffix).
    pub wal_records: usize,
}

/// Synchronize one node's store from `master_dir` into `replica_dir`.
///
/// `key` is the node's WAL MAC key ([`derive_node_key`]): the master's chain
/// is verified with it before anything is believed, and the shipped suffix is
/// re-sealed under the replica's own chain with the same key.
///
/// A master that has never checkpointed replicates WAL-only; a master that
/// has checkpointed replicates the snapshot (incrementally, by content
/// address) plus whatever WAL suffix follows it.
pub fn sync_store(master_dir: &Path, replica_dir: &Path, key: &[u8]) -> Result<SyncStats> {
    let _sync_timer = secureblox_telemetry::histogram!("store_sync_ns").start_timer();
    let mut sync_span = secureblox_telemetry::span("store", "sync");
    let mut stats = SyncStats::default();

    // 1. Snapshot objects and HEAD swap (when the master has a snapshot).
    let master_objects = ObjectStore::open(master_dir.join("objects"))?;
    let mut snapshot_seq = 0u64;
    if let Some(manifest_id) = read_head(&master_dir.join("HEAD"))? {
        let replica_objects = ObjectStore::open(replica_dir.join("objects"))?;
        let manifest_bytes = master_objects.get(&manifest_id)?;
        let manifest = SnapshotManifest::decode(&manifest_bytes)?;
        snapshot_seq = manifest.wal_seq;
        for entry in &manifest.relations {
            if replica_objects.contains(&entry.object) {
                stats.skipped += 1;
                continue;
            }
            replica_objects.put(&master_objects.get(&entry.object)?)?;
            stats.copied += 1;
        }
        if replica_objects.contains(&manifest_id) {
            stats.skipped += 1;
        } else {
            replica_objects.put(&manifest_bytes)?;
            stats.copied += 1;
        }
        write_head(&replica_dir.join("HEAD"), &manifest_id)?;
    }

    // 2. WAL suffix.  Verify the master's chain, then append every record the
    //    replica does not hold yet to the replica's own chain.
    let (_, master_records) = Wal::open(master_dir.join("wal.log"), key)?;
    let (mut replica_wal, replica_records) = Wal::open(replica_dir.join("wal.log"), key)?;
    let replica_wal_path = replica_dir.join("wal.log");
    let wal_bytes_before = std::fs::metadata(&replica_wal_path).map_or(0, |m| m.len());
    // Records below the snapshot watermark are superseded by the snapshot
    // copied above; recovery skips them, and appends continue past it.
    replica_wal.advance_seq_to(snapshot_seq);
    let disk_next = replica_records.last().map(|record| record.seq + 1);
    for record in master_records {
        if record.seq < replica_wal.next_seq() {
            // The replica already holds this position.  It must hold the
            // *master's* record there — a replica whose local appends
            // consumed sequence numbers the master later used cannot be
            // caught up by a suffix (shipping it would silently diverge),
            // so synchronization refuses with a typed error.
            if let Some(existing) = replica_records.iter().find(|r| r.seq == record.seq) {
                if *existing != record {
                    return Err(StoreError::ReplicaDiverged { seq: record.seq });
                }
            }
            continue;
        }
        // The master's numbering moved past the replica's on-disk tail (a
        // checkpoint truncated the span between them): the tail is
        // superseded, so rebuild the log from here to keep it contiguous.
        if disk_next.is_some_and(|next| record.seq > next) && stats.wal_records == 0 {
            replica_wal.truncate_all(record.seq)?;
        }
        replica_wal.append_signed(
            record.op,
            &record.pred,
            record.tuple.clone(),
            record.watermark,
            record.signature.clone(),
        )?;
        stats.wal_records += 1;
    }
    replica_wal.flush()?;
    // The suffix's on-disk size: what this sync actually shipped at WAL
    // granularity (0 when the replica was already caught up).  A rebuilt
    // replica log can shrink; count growth only.
    let wal_bytes_after = std::fs::metadata(&replica_wal_path).map_or(0, |m| m.len());
    let suffix_bytes = wal_bytes_after.saturating_sub(wal_bytes_before);
    secureblox_telemetry::counter!("store_sync_suffix_bytes_total").add(suffix_bytes);
    secureblox_telemetry::counter!("store_sync_suffix_records_total").add(stats.wal_records as u64);
    secureblox_telemetry::counter!("store_sync_objects_copied_total").add(stats.copied as u64);
    sync_span.record_field("copied", stats.copied);
    sync_span.record_field("wal_records", stats.wal_records);
    sync_span.record_field("suffix_bytes", suffix_bytes);
    Ok(stats)
}

/// Synchronize every node store under `master_dir` (one subdirectory per
/// principal, as laid out by `DurabilityConfig`) into `replica_dir`.  `seed`
/// is the deployment seed the node keys derive from.
pub fn sync_deployment(
    master_dir: &Path,
    replica_dir: &Path,
    seed: u64,
) -> Result<Vec<(String, SyncStats)>> {
    let mut results = Vec::new();
    let entries = std::fs::read_dir(master_dir).map_err(|e| StoreError::io(master_dir, e))?;
    let mut names: Vec<String> = entries
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| entry.file_name().to_str().map(String::from))
        .collect();
    names.sort();
    for name in names {
        let key = derive_node_key(seed, &name);
        let stats = sync_store(&master_dir.join(&name), &replica_dir.join(&name), &key)?;
        results.push((name, stats));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{derive_node_key, FactStore};
    use secureblox_datalog::value::{Tuple, Value};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbx-sync-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fact(i: i64) -> (String, Tuple) {
        ("link".to_string(), vec![Value::str("n0"), Value::Int(i)])
    }

    fn log(store: &mut FactStore, facts: &[(String, Tuple)], watermark: u64) {
        store
            .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), watermark)
            .unwrap();
    }

    #[test]
    fn replica_matches_master_snapshot() {
        let master_dir = tmp("master");
        let replica_dir = tmp("replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..5).map(fact).collect();
        log(&mut master, &facts, 3);
        let info = master.checkpoint(3).unwrap();

        let stats = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert_eq!(stats.copied, 2); // one relation object + the manifest
        assert_eq!(stats.wal_records, 0, "checkpoint truncated the log");
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(replica.base_facts(), master.base_facts());
        assert_eq!(replica.base_root(), master.base_root());
        assert_eq!(replica.snapshot().unwrap().manifest_id, info.manifest_id);

        // Second sync with unchanged master copies nothing.
        let again = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert_eq!(
            again,
            SyncStats {
                copied: 0,
                skipped: 2,
                wal_records: 0
            }
        );
    }

    #[test]
    fn suffix_sync_matches_full_state_without_new_checkpoint() {
        // Snapshot, sync, keep appending (inserts AND a retraction), re-sync:
        // the second sync must ship only the WAL suffix, and the replica must
        // equal the master's *current* state — the acceptance property
        // "replica after suffix sync == replica after full transfer".
        let master_dir = tmp("suffix");
        let replica_dir = tmp("suffix-replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..4).map(fact).collect();
        log(&mut master, &facts, 1);
        master.checkpoint(1).unwrap();
        sync_store(&master_dir, &replica_dir, &key).unwrap();

        let late: Vec<(String, Tuple)> = (10..13).map(fact).collect();
        log(&mut master, &late, 2);
        let gone = fact(0);
        master
            .log_retracts([(gone.0.as_str(), &gone.1)], 3)
            .unwrap();

        let stats = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert_eq!(stats.copied, 0, "no snapshot objects move");
        assert_eq!(stats.wal_records, 4, "three inserts + one retract");
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(replica.base_facts(), master.base_facts());
        assert_eq!(replica.base_root(), master.base_root());
        assert_eq!(replica.watermark(), master.watermark());

        // Idempotent: nothing ships twice.
        let again = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert_eq!(again.wal_records, 0);
    }

    #[test]
    fn sync_without_checkpoint_ships_wal_only() {
        let master_dir = tmp("nosnap");
        let replica_dir = tmp("nosnap-replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..3).map(fact).collect();
        log(&mut master, &facts, 7);

        let stats = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert_eq!(stats.copied, 0);
        assert_eq!(stats.wal_records, 3);
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert!(replica.snapshot().is_none());
        assert_eq!(replica.base_facts(), master.base_facts());
        assert_eq!(replica.base_root(), master.base_root());
    }

    #[test]
    fn checkpoint_between_syncs_rebuilds_the_replica_log() {
        // Sync at WAL granularity, then the master checkpoints (truncating
        // its log) and appends more: the replica's stale log tail is
        // superseded by the copied snapshot and must be rebuilt so the chain
        // stays contiguous.
        let master_dir = tmp("rebuild");
        let replica_dir = tmp("rebuild-replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..3).map(fact).collect();
        log(&mut master, &facts, 1);
        sync_store(&master_dir, &replica_dir, &key).unwrap();

        // Records the replica never sees (the checkpoint swallows them),
        // leaving a numbering gap between the replica's tail and the
        // master's post-checkpoint suffix.
        let unseen: Vec<(String, Tuple)> = (10..12).map(fact).collect();
        log(&mut master, &unseen, 2);
        master.checkpoint(2).unwrap();
        let late: Vec<(String, Tuple)> = (20..22).map(fact).collect();
        log(&mut master, &late, 3);

        let stats = sync_store(&master_dir, &replica_dir, &key).unwrap();
        assert!(stats.copied > 0, "snapshot ships");
        assert_eq!(stats.wal_records, 2, "post-checkpoint suffix ships");
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(replica.base_facts(), master.base_facts());
        assert_eq!(replica.base_root(), master.base_root());

        // And the replica reopens cleanly again after yet another suffix.
        let more = fact(99);
        log(
            &mut master,
            std::slice::from_ref(&(more.0.clone(), more.1.clone())),
            4,
        );
        sync_store(&master_dir, &replica_dir, &key).unwrap();
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(replica.base_facts(), master.base_facts());
    }

    #[test]
    fn replica_local_appends_survive_reopen() {
        // A replica holds the master's snapshot (wal_seq = N) but no WAL
        // history; its own appends must continue the numbering past N, or
        // the `seq >= wal_seq` replay rule would silently drop them.
        let master_dir = tmp("seqmaster");
        let replica_dir = tmp("seqreplica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..4).map(fact).collect();
        log(&mut master, &facts, 1);
        let info = master.checkpoint(1).unwrap();
        assert_eq!(info.wal_seq, 4);
        sync_store(&master_dir, &replica_dir, &key).unwrap();

        let mut replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(
            replica.wal_seq(),
            4,
            "numbering continues past the snapshot"
        );
        let extra = ("link".to_string(), vec![Value::str("n0"), Value::Int(99)]);
        replica
            .log_inserts([(extra.0.as_str(), &extra.1)], 5)
            .unwrap();
        let facts_after = replica.base_facts();
        let root_after = replica.base_root();
        drop(replica);

        let reopened = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(reopened.base_fact_count(), 5);
        assert_eq!(reopened.base_facts(), facts_after);
        assert_eq!(reopened.base_root(), root_after);
        assert_eq!(reopened.recovered_suffix().len(), 1);
    }

    #[test]
    fn conflicting_replica_appends_are_a_typed_divergence() {
        // The replica writes its own record at a sequence number the master
        // later uses with different content: the suffix sync must refuse
        // with a typed error instead of silently skipping the master's
        // record and diverging.
        let master_dir = tmp("diverge");
        let replica_dir = tmp("diverge-replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..2).map(fact).collect();
        log(&mut master, &facts, 1);
        sync_store(&master_dir, &replica_dir, &key).unwrap();

        let mut replica = FactStore::open(&replica_dir, &key).unwrap();
        let local = fact(500);
        log(&mut replica, std::slice::from_ref(&local), 2);
        drop(replica);
        let remote = fact(600);
        log(&mut master, std::slice::from_ref(&remote), 3);

        assert!(matches!(
            sync_store(&master_dir, &replica_dir, &key),
            Err(StoreError::ReplicaDiverged { seq: 2 })
        ));
    }

    #[test]
    fn sync_with_wrong_key_is_typed() {
        let master_dir = tmp("wrongkey");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let f = fact(1);
        log(&mut master, std::slice::from_ref(&f), 1);
        assert!(matches!(
            sync_store(&master_dir, &tmp("wrongkey-replica"), b"not the key"),
            Err(StoreError::TamperedRecord { .. })
        ));
    }

    #[test]
    fn tampered_master_object_fails_before_head_swap() {
        let master_dir = tmp("tampermaster");
        let replica_dir = tmp("tamperreplica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let f = ("link".to_string(), vec![Value::str("a"), Value::str("b")]);
        master.log_inserts([(f.0.as_str(), &f.1)], 1).unwrap();
        let info = master.checkpoint(1).unwrap();
        let manifest =
            SnapshotManifest::decode(&master.objects().get(&info.manifest_id).unwrap()).unwrap();
        drop(master);
        let object_path = master_dir
            .join("objects")
            .join(&manifest.relations[0].object);
        let mut bytes = std::fs::read(&object_path).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&object_path, &bytes).unwrap();

        assert!(matches!(
            sync_store(&master_dir, &replica_dir, &key),
            Err(StoreError::ObjectMismatch { .. })
        ));
        // The replica HEAD was never installed.
        assert_eq!(read_head(&replica_dir.join("HEAD")).unwrap(), None);
    }
}
