//! Master → replica store synchronization.
//!
//! Because snapshots are immutable content-addressed objects, replication is
//! rsync-shaped: read the master's `HEAD`, copy every object its manifest
//! references that the replica lacks (each verified against its content
//! address while copying), then atomically swap the replica's `HEAD`.  A
//! reader of the replica either sees the old snapshot or the new one, never a
//! mixture, and a corrupted master object is detected *before* the swap so a
//! bad sync can never install a dangling or tampered snapshot.
//!
//! The replica holds objects + `HEAD` only — no WAL.  Recovery from a
//! replica therefore converges to the master's last checkpoint, which is the
//! read-replica semantics the paper-level deployments need (replicas serve
//! queries; the master keeps the authoritative log).

use crate::error::{Result, StoreError};
use crate::object::ObjectStore;
use crate::snapshot::{read_head, write_head, SnapshotManifest};
use std::path::Path;

/// What a sync did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Objects copied into the replica.
    pub copied: usize,
    /// Referenced objects the replica already had.
    pub skipped: usize,
}

/// Synchronize one node's store from `master_dir` into `replica_dir`.
///
/// Returns [`StoreError::CorruptHead`] when the master has no snapshot to
/// replicate (checkpoint first).
pub fn sync_store(master_dir: &Path, replica_dir: &Path) -> Result<SyncStats> {
    let master_objects = ObjectStore::open(master_dir.join("objects"))?;
    let replica_objects = ObjectStore::open(replica_dir.join("objects"))?;
    let manifest_id =
        read_head(&master_dir.join("HEAD"))?.ok_or_else(|| StoreError::CorruptHead {
            reason: format!("{} has no snapshot to sync", master_dir.display()),
        })?;

    let mut stats = SyncStats::default();
    let manifest_bytes = master_objects.get(&manifest_id)?;
    let manifest = SnapshotManifest::decode(&manifest_bytes)?;
    for entry in &manifest.relations {
        if replica_objects.contains(&entry.object) {
            stats.skipped += 1;
            continue;
        }
        replica_objects.put(&master_objects.get(&entry.object)?)?;
        stats.copied += 1;
    }
    if replica_objects.contains(&manifest_id) {
        stats.skipped += 1;
    } else {
        replica_objects.put(&manifest_bytes)?;
        stats.copied += 1;
    }
    write_head(&replica_dir.join("HEAD"), &manifest_id)?;
    Ok(stats)
}

/// Synchronize every node store under `master_dir` (one subdirectory per
/// principal, as laid out by `DurabilityConfig`) into `replica_dir`.
pub fn sync_deployment(master_dir: &Path, replica_dir: &Path) -> Result<Vec<(String, SyncStats)>> {
    let mut results = Vec::new();
    let entries = std::fs::read_dir(master_dir).map_err(|e| StoreError::io(master_dir, e))?;
    let mut names: Vec<String> = entries
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| entry.file_name().to_str().map(String::from))
        .collect();
    names.sort();
    for name in names {
        let stats = sync_store(&master_dir.join(&name), &replica_dir.join(&name))?;
        results.push((name, stats));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{derive_node_key, FactStore};
    use secureblox_datalog::value::Value;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbx-sync-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn replica_matches_master_snapshot() {
        let master_dir = tmp("master");
        let replica_dir = tmp("replica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..5)
            .map(|i| ("link".to_string(), vec![Value::str("n0"), Value::Int(i)]))
            .collect();
        master
            .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 3)
            .unwrap();
        let info = master.checkpoint(3).unwrap();

        let stats = sync_store(&master_dir, &replica_dir).unwrap();
        assert_eq!(stats.copied, 2); // one relation object + the manifest
        let replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(replica.base_facts(), master.base_facts());
        assert_eq!(replica.base_root(), master.base_root());
        assert_eq!(replica.snapshot().unwrap().manifest_id, info.manifest_id);

        // Second sync with unchanged master copies nothing.
        let again = sync_store(&master_dir, &replica_dir).unwrap();
        assert_eq!(
            again,
            SyncStats {
                copied: 0,
                skipped: 2
            }
        );
    }

    use secureblox_datalog::value::Tuple;

    #[test]
    fn replica_local_appends_survive_reopen() {
        // A replica holds the master's snapshot (wal_seq = N) but no WAL
        // history; its own appends must continue the numbering past N, or
        // the `seq >= wal_seq` replay rule would silently drop them.
        let master_dir = tmp("seqmaster");
        let replica_dir = tmp("seqreplica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..4)
            .map(|i| ("link".to_string(), vec![Value::str("n0"), Value::Int(i)]))
            .collect();
        master
            .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1)
            .unwrap();
        let info = master.checkpoint(1).unwrap();
        assert_eq!(info.wal_seq, 4);
        sync_store(&master_dir, &replica_dir).unwrap();

        let mut replica = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(
            replica.wal_seq(),
            4,
            "numbering continues past the snapshot"
        );
        let extra = ("link".to_string(), vec![Value::str("n0"), Value::Int(99)]);
        replica
            .log_inserts([(extra.0.as_str(), &extra.1)], 5)
            .unwrap();
        let facts_after = replica.base_facts();
        let root_after = replica.base_root();
        drop(replica);

        let reopened = FactStore::open(&replica_dir, &key).unwrap();
        assert_eq!(reopened.base_fact_count(), 5);
        assert_eq!(reopened.base_facts(), facts_after);
        assert_eq!(reopened.base_root(), root_after);
        assert_eq!(reopened.recovered_suffix().len(), 1);
    }

    #[test]
    fn sync_without_checkpoint_is_typed() {
        let master_dir = tmp("nosnap");
        let key = derive_node_key(1, "n0");
        drop(FactStore::open(&master_dir, &key).unwrap());
        assert!(matches!(
            sync_store(&master_dir, &tmp("nosnap-replica")),
            Err(StoreError::CorruptHead { .. })
        ));
    }

    #[test]
    fn tampered_master_object_fails_before_head_swap() {
        let master_dir = tmp("tampermaster");
        let replica_dir = tmp("tamperreplica");
        let key = derive_node_key(1, "n0");
        let mut master = FactStore::open(&master_dir, &key).unwrap();
        let fact = ("link".to_string(), vec![Value::str("a"), Value::str("b")]);
        master.log_inserts([(fact.0.as_str(), &fact.1)], 1).unwrap();
        let info = master.checkpoint(1).unwrap();
        let manifest =
            SnapshotManifest::decode(&master.objects().get(&info.manifest_id).unwrap()).unwrap();
        drop(master);
        let object_path = master_dir
            .join("objects")
            .join(&manifest.relations[0].object);
        let mut bytes = std::fs::read(&object_path).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&object_path, &bytes).unwrap();

        assert!(matches!(
            sync_store(&master_dir, &replica_dir),
            Err(StoreError::ObjectMismatch { .. })
        ));
        // The replica HEAD was never installed.
        assert_eq!(read_head(&replica_dir.join("HEAD")).unwrap(), None);
    }
}
