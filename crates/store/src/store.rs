//! The durable fact store: one directory per node holding an HMAC-chained
//! WAL (`wal.log`), a content-addressed object store (`objects/`), and a
//! `HEAD` pointer at the latest snapshot manifest.
//!
//! The store persists only *base* facts — the dynamic extensional database a
//! node accumulated from bootstrap batches and accepted `says` imports.
//! Derived (intensional) state is never written: it is rebuildable by
//! construction, by re-running the seminaive fixpoint over the recovered EDB.
//! Likewise the facts a deployment provisions deterministically at build time
//! (principal universe, key material, shared facts) are a pure function of
//! the deployment configuration and are reconstructed, not persisted.
//!
//! Opening a store *is* crash recovery: load the `HEAD` snapshot (verifying
//! every content address and the Merkle root), then verify the WAL's HMAC
//! chain from genesis and replay the suffix past the snapshot's watermark.
//! All corruption outcomes are typed [`StoreError`]s.

use crate::error::{Result, StoreError};
use crate::merkle::HASH_LEN;
use crate::object::{ObjectId, ObjectStore};
use crate::snapshot::{
    decode_relation, encode_relation, read_head, write_head, RelationEntry, SnapshotManifest,
};
use crate::wal::{Wal, WalOp, WalRecord};
use secureblox_crypto::{hmac_sha1, to_hex};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Where (and whether) a deployment persists its nodes' base facts.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory; each node gets a subdirectory named by its principal.
    pub dir: PathBuf,
    /// Flush WAL appends to the OS after every committed batch (cheap; real
    /// fsync durability is out of scope for the simulation).
    pub flush_each_batch: bool,
}

impl DurabilityConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            flush_each_batch: true,
        }
    }

    /// The store directory for one node.
    pub fn node_dir(&self, principal: &str) -> PathBuf {
        self.dir.join(principal)
    }
}

/// Derive a node's WAL MAC key from the deployment seed.  Deterministic so
/// `Deployment::recover` with the same configuration re-derives it; domain
/// separated so it can never collide with protocol HMAC uses of the seed.
pub fn derive_node_key(seed: u64, principal: &str) -> Vec<u8> {
    let mut message = Vec::with_capacity(8 + principal.len());
    message.extend_from_slice(&seed.to_be_bytes());
    message.extend_from_slice(principal.as_bytes());
    hmac_sha1(b"secureblox-store/wal-key/v1", &message).to_vec()
}

/// Identity of one snapshot: the manifest object and what it commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    pub manifest_id: ObjectId,
    pub watermark: u64,
    pub wal_seq: u64,
    pub root: [u8; HASH_LEN],
}

impl SnapshotInfo {
    /// The Merkle root as lowercase hex.
    pub fn root_hex(&self) -> String {
        to_hex(&self.root)
    }
}

/// Export-cursor map: predicate + canonical tuple encoding → decoded tuple
/// and the detached signature the tuple shipped under.
type ExportCursor = BTreeMap<(String, Vec<u8>), (Tuple, Vec<u8>)>;

/// A node's durable fact store, open for appending.
pub struct FactStore {
    dir: PathBuf,
    wal: Wal,
    objects: ObjectStore,
    /// The current base-fact state: relation name → canonical tuple encoding
    /// → decoded tuple.  Keying by the canonical bytes both deduplicates and
    /// fixes the deterministic order every commitment is computed in.
    base: BTreeMap<String, BTreeMap<Vec<u8>, Tuple>>,
    /// Export cursor: the tuples this node has shipped to peers (keyed by
    /// predicate + canonical tuple encoding) with the detached signature each
    /// one went out under.  Rebuilt from `ExportMark`/`ExportClear` records
    /// at open; never part of the base facts or the Merkle commitment.
    export_cursor: ExportCursor,
    /// Latest snapshot (from `HEAD`), if any.
    snapshot: Option<SnapshotInfo>,
    /// Highest watermark applied (snapshot or WAL).
    watermark: u64,
    /// Recovery artifacts from open: the facts the snapshot contributed and
    /// the WAL records replayed after it, in order.
    recovered_snapshot_facts: Vec<(String, Tuple)>,
    recovered_suffix: Vec<WalRecord>,
    flush_each_batch: bool,
}

impl FactStore {
    /// Open a store directory, performing full verification and recovery.
    pub fn open(dir: impl Into<PathBuf>, key: &[u8]) -> Result<FactStore> {
        let _recovery_timer =
            secureblox_telemetry::histogram!("store_recovery_replay_ns").start_timer();
        let mut recover_span = secureblox_telemetry::span("store", "recover");
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let objects = ObjectStore::open(dir.join("objects"))?;

        // Load the snapshot HEAD points at, verifying content addresses and
        // the Merkle root.
        let mut base: BTreeMap<String, BTreeMap<Vec<u8>, Tuple>> = BTreeMap::new();
        let mut recovered_snapshot_facts = Vec::new();
        let mut snapshot = None;
        if let Some(manifest_id) = read_head(&dir.join("HEAD"))? {
            let manifest = SnapshotManifest::decode(&objects.get(&manifest_id)?)?;
            for entry in &manifest.relations {
                let bytes = objects.get(&entry.object)?;
                let (name, tuples) = decode_relation(&bytes)?;
                if name != entry.name {
                    return Err(StoreError::CorruptSnapshot {
                        reason: format!(
                            "manifest lists {} but object {} holds relation {name}",
                            entry.name, entry.object
                        ),
                    });
                }
                let relation = base.entry(name.clone()).or_default();
                for tuple in tuples {
                    recovered_snapshot_facts.push((name.clone(), tuple.clone()));
                    relation.insert(serialize_tuple(&tuple), tuple);
                }
            }
            snapshot = Some(SnapshotInfo {
                manifest_id,
                watermark: manifest.watermark,
                wal_seq: manifest.wal_seq,
                root: manifest.root,
            });
        }

        // Verify the whole WAL chain, then replay the suffix the snapshot
        // does not already include.
        let (mut wal, records) = Wal::open(dir.join("wal.log"), key)?;
        let snapshot_seq = snapshot.as_ref().map_or(0, |s| s.wal_seq);
        // A synced replica has the snapshot but not the WAL history behind
        // it; continue the master's numbering so fresh appends land past the
        // snapshot's watermark instead of colliding with the replayed range.
        wal.advance_seq_to(snapshot_seq);
        let mut watermark = snapshot.as_ref().map_or(0, |s| s.watermark);
        let mut recovered_suffix = Vec::new();
        let mut export_cursor = BTreeMap::new();
        for record in records {
            if record.seq < snapshot_seq {
                continue;
            }
            watermark = watermark.max(record.watermark);
            apply(&mut base, &mut export_cursor, &record);
            recovered_suffix.push(record);
        }

        secureblox_telemetry::counter!("store_recovery_records_total")
            .add(recovered_suffix.len() as u64);
        recover_span.record_field("suffix_records", recovered_suffix.len());
        recover_span.record_field("snapshot_facts", recovered_snapshot_facts.len());
        Ok(FactStore {
            dir,
            wal,
            objects,
            base,
            export_cursor,
            snapshot,
            watermark,
            recovered_snapshot_facts,
            recovered_suffix,
            flush_each_batch: true,
        })
    }

    /// Set whether appends flush after every batch (see
    /// [`DurabilityConfig::flush_each_batch`]).
    pub fn set_flush_each_batch(&mut self, flush: bool) {
        self.flush_each_batch = flush;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content-addressed object store (for sync and audits).
    pub fn objects(&self) -> &ObjectStore {
        &self.objects
    }

    /// Latest snapshot identity, if a checkpoint exists.
    pub fn snapshot(&self) -> Option<&SnapshotInfo> {
        self.snapshot.as_ref()
    }

    /// Highest virtual-time watermark applied.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Number of WAL records written (next sequence number).
    pub fn wal_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Facts the `HEAD` snapshot contributed at open, in deterministic order.
    pub fn recovered_snapshot_facts(&self) -> &[(String, Tuple)] {
        &self.recovered_snapshot_facts
    }

    /// WAL records replayed past the snapshot at open, in log order.
    pub fn recovered_suffix(&self) -> &[WalRecord] {
        &self.recovered_suffix
    }

    /// The current base facts, ordered by (relation, canonical encoding).
    pub fn base_facts(&self) -> Vec<(String, Tuple)> {
        let mut out = Vec::new();
        for (name, relation) in &self.base {
            for tuple in relation.values() {
                out.push((name.clone(), tuple.clone()));
            }
        }
        out
    }

    /// Number of base facts currently stored.
    pub fn base_fact_count(&self) -> usize {
        self.base.values().map(|r| r.len()).sum()
    }

    /// Log a batch of inserted base facts committed at `watermark`.
    pub fn log_inserts<'a>(
        &mut self,
        facts: impl IntoIterator<Item = (&'a str, &'a Tuple)>,
        watermark: u64,
    ) -> Result<()> {
        let timer = secureblox_telemetry::histogram!("store_wal_append_ns").start_timer();
        let mut appended = 0u64;
        for (pred, tuple) in facts {
            let record = self
                .wal
                .append(WalOp::Insert, pred, tuple.clone(), watermark)?;
            apply(&mut self.base, &mut self.export_cursor, &record);
            appended += 1;
        }
        self.watermark = self.watermark.max(watermark);
        if self.flush_each_batch {
            self.wal.flush()?;
        }
        wal_batch_telemetry(timer, appended);
        Ok(())
    }

    /// Log a batch of retracted base facts committed at `watermark`.
    pub fn log_retracts<'a>(
        &mut self,
        facts: impl IntoIterator<Item = (&'a str, &'a Tuple)>,
        watermark: u64,
    ) -> Result<()> {
        let timer = secureblox_telemetry::histogram!("store_wal_append_ns").start_timer();
        let mut appended = 0u64;
        for (pred, tuple) in facts {
            let record = self
                .wal
                .append(WalOp::Retract, pred, tuple.clone(), watermark)?;
            apply(&mut self.base, &mut self.export_cursor, &record);
            appended += 1;
        }
        self.watermark = self.watermark.max(watermark);
        if self.flush_each_batch {
            self.wal.flush()?;
        }
        wal_batch_telemetry(timer, appended);
        Ok(())
    }

    /// Log export-cursor entries: each tuple was shipped to a peer under the
    /// given detached signature.  Cursor records never touch the base facts
    /// (or the Merkle commitment); they exist so recovery knows which exports
    /// a crashed node still owes withdrawal messages for.
    pub fn log_export_marks<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (&'a str, &'a Tuple, &'a [u8])>,
        watermark: u64,
    ) -> Result<()> {
        let timer = secureblox_telemetry::histogram!("store_wal_append_ns").start_timer();
        let mut appended = 0u64;
        for (pred, tuple, signature) in entries {
            let record = self.wal.append_signed(
                WalOp::ExportMark,
                pred,
                tuple.clone(),
                watermark,
                signature.to_vec(),
            )?;
            apply(&mut self.base, &mut self.export_cursor, &record);
            appended += 1;
        }
        self.watermark = self.watermark.max(watermark);
        if self.flush_each_batch {
            self.wal.flush()?;
        }
        wal_batch_telemetry(timer, appended);
        Ok(())
    }

    /// Log the withdrawal of export-cursor entries: the retraction for each
    /// tuple has been flushed to its peer, discharging the recovery
    /// obligation the matching [`WalOp::ExportMark`] created.
    pub fn log_export_clears<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (&'a str, &'a Tuple)>,
        watermark: u64,
    ) -> Result<()> {
        let timer = secureblox_telemetry::histogram!("store_wal_append_ns").start_timer();
        let mut appended = 0u64;
        for (pred, tuple) in entries {
            let record = self
                .wal
                .append(WalOp::ExportClear, pred, tuple.clone(), watermark)?;
            apply(&mut self.base, &mut self.export_cursor, &record);
            appended += 1;
        }
        self.watermark = self.watermark.max(watermark);
        if self.flush_each_batch {
            self.wal.flush()?;
        }
        wal_batch_telemetry(timer, appended);
        Ok(())
    }

    /// The live export cursor in deterministic (predicate, canonical tuple)
    /// order: every tuple currently shipped to a peer with the signature it
    /// went out under.
    pub fn export_cursor(&self) -> Vec<(String, Tuple, Vec<u8>)> {
        self.export_cursor
            .iter()
            .map(|((pred, _), (tuple, signature))| (pred.clone(), tuple.clone(), signature.clone()))
            .collect()
    }

    /// Flush appended WAL records to the operating system (a no-op when
    /// every batch already flushes).  Replication reads the log file from
    /// disk, so it flushes before shipping a suffix.
    pub fn flush(&mut self) -> Result<()> {
        self.wal.flush()
    }

    /// The Merkle root committing the current base-fact state, computed
    /// without writing anything.
    pub fn base_root(&self) -> [u8; HASH_LEN] {
        let relations = self.relation_entries_dry();
        let leaves: Vec<[u8; HASH_LEN]> = relations
            .iter()
            .map(|(name, bytes)| {
                crate::merkle::leaf_hash(name, &crate::snapshot::relation_digest(bytes))
            })
            .collect();
        crate::merkle::merkle_root(&leaves)
    }

    /// The Merkle root as lowercase hex.
    pub fn base_root_hex(&self) -> String {
        to_hex(&self.base_root())
    }

    fn relation_entries_dry(&self) -> Vec<(String, Vec<u8>)> {
        self.base
            .iter()
            .filter(|(_, relation)| !relation.is_empty())
            .map(|(name, relation)| (name.clone(), encode_relation(name, relation.keys())))
            .collect()
    }

    /// Write a content-addressed snapshot of the current base facts, swap
    /// `HEAD` to it, and compact the WAL.  Old snapshots remain readable
    /// (objects are immutable); the log records the snapshot supersedes are
    /// dropped — recovery would skip them anyway (`seq < wal_seq`) — so the
    /// log stays proportional to the work since the last checkpoint rather
    /// than to the node's lifetime.
    pub fn checkpoint(&mut self, watermark: u64) -> Result<SnapshotInfo> {
        let _checkpoint_timer =
            secureblox_telemetry::histogram!("store_checkpoint_ns").start_timer();
        let mut checkpoint_span = secureblox_telemetry::span("store", "checkpoint");
        self.wal.flush()?;
        let snapshot_timer =
            secureblox_telemetry::histogram!("store_snapshot_write_ns").start_timer();
        let mut entries = Vec::new();
        for (name, bytes) in self.relation_entries_dry() {
            let object = self.objects.put(&bytes)?;
            entries.push(RelationEntry { name, object });
        }
        let root = SnapshotManifest::compute_root(&entries)?;
        let watermark = watermark.max(self.watermark);
        let manifest = SnapshotManifest {
            watermark,
            wal_seq: self.wal.next_seq(),
            relations: entries,
            root,
        };
        let manifest_id = self.objects.put(&manifest.encode())?;
        write_head(&self.dir.join("HEAD"), &manifest_id)?;
        drop(snapshot_timer);
        checkpoint_span.record_field("relations", manifest.relations.len());
        checkpoint_span.record_field("wal_seq", manifest.wal_seq);
        // The snapshot is durable: every logged base-fact record is now
        // redundant.  The export cursor is *not* in the snapshot (it is not
        // part of the fact state or its commitment), so re-log its live
        // entries after compaction; their sequence numbers land at or past
        // `wal_seq`, so recovery replays them as ordinary suffix records.
        self.wal.truncate_all(manifest.wal_seq)?;
        for ((pred, _), (tuple, signature)) in self.export_cursor.clone() {
            self.wal
                .append_signed(WalOp::ExportMark, &pred, tuple, watermark, signature)?;
        }
        self.wal.flush()?;
        let info = SnapshotInfo {
            manifest_id,
            watermark,
            wal_seq: manifest.wal_seq,
            root,
        };
        self.snapshot = Some(info.clone());
        self.watermark = watermark;
        Ok(info)
    }
}

/// Record one WAL append batch into the telemetry plane: the batch's append
/// latency (the timer started before the first record), its size, and the
/// running record total.
fn wal_batch_telemetry(timer: secureblox_telemetry::Timer, records: u64) {
    drop(timer); // closes store_wal_append_ns
    secureblox_telemetry::histogram!("store_wal_batch_size").record(records);
    secureblox_telemetry::counter!("store_wal_records_total").add(records);
}

fn apply(
    base: &mut BTreeMap<String, BTreeMap<Vec<u8>, Tuple>>,
    export_cursor: &mut ExportCursor,
    record: &WalRecord,
) {
    match record.op {
        WalOp::Insert => {
            base.entry(record.pred.clone())
                .or_default()
                .insert(serialize_tuple(&record.tuple), record.tuple.clone());
        }
        WalOp::Retract => {
            if let Some(relation) = base.get_mut(&record.pred) {
                relation.remove(&serialize_tuple(&record.tuple));
                if relation.is_empty() {
                    base.remove(&record.pred);
                }
            }
        }
        WalOp::ExportMark => {
            export_cursor.insert(
                (record.pred.clone(), serialize_tuple(&record.tuple)),
                (record.tuple.clone(), record.signature.clone()),
            );
        }
        WalOp::ExportClear => {
            export_cursor.remove(&(record.pred.clone(), serialize_tuple(&record.tuple)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::value::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbx-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fact(i: i64) -> (String, Tuple) {
        ("link".to_string(), vec![Value::str("n0"), Value::Int(i)])
    }

    #[test]
    fn wal_only_recovery() {
        let dir = tmp("walonly");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..4).map(fact).collect();
        store
            .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 10)
            .unwrap();
        let root = store.base_root();
        drop(store);

        let store = FactStore::open(&dir, &key).unwrap();
        assert_eq!(store.base_fact_count(), 4);
        assert_eq!(store.base_root(), root);
        assert_eq!(store.recovered_suffix().len(), 4);
        assert!(store.recovered_snapshot_facts().is_empty());
        assert_eq!(store.watermark(), 10);
    }

    #[test]
    fn snapshot_plus_suffix_recovery() {
        let dir = tmp("snapsuffix");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let first: Vec<(String, Tuple)> = (0..3).map(fact).collect();
        store
            .log_inserts(first.iter().map(|(p, t)| (p.as_str(), t)), 5)
            .unwrap();
        let info = store.checkpoint(5).unwrap();
        assert_eq!(info.wal_seq, 3);
        let late = fact(99);
        store.log_inserts([(late.0.as_str(), &late.1)], 8).unwrap();
        let retracted = fact(0);
        store
            .log_retracts([(retracted.0.as_str(), &retracted.1)], 9)
            .unwrap();
        let root = store.base_root();
        let facts = store.base_facts();
        drop(store);

        let store = FactStore::open(&dir, &key).unwrap();
        assert_eq!(store.snapshot().unwrap().manifest_id, info.manifest_id);
        assert_eq!(store.recovered_snapshot_facts().len(), 3);
        assert_eq!(store.recovered_suffix().len(), 2);
        assert_eq!(store.base_facts(), facts);
        assert_eq!(store.base_root(), root);
        assert_eq!(store.watermark(), 9);
        assert_eq!(store.base_fact_count(), 3);
    }

    #[test]
    fn checkpoint_compacts_the_wal() {
        let dir = tmp("compact");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let facts: Vec<(String, Tuple)> = (0..5).map(fact).collect();
        store
            .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 3)
            .unwrap();
        let info = store.checkpoint(3).unwrap();
        assert_eq!(info.wal_seq, 5);
        // The log was truncated but the numbering continues past the
        // snapshot, so recovery replays exactly the post-checkpoint suffix.
        assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0);
        assert_eq!(store.wal_seq(), 5);
        let late = fact(50);
        store.log_inserts([(late.0.as_str(), &late.1)], 7).unwrap();
        let root = store.base_root();
        drop(store);

        let store = FactStore::open(&dir, &key).unwrap();
        assert_eq!(store.recovered_snapshot_facts().len(), 5);
        assert_eq!(store.recovered_suffix().len(), 1);
        assert_eq!(store.recovered_suffix()[0].seq, 5);
        assert_eq!(store.base_fact_count(), 6);
        assert_eq!(store.base_root(), root);
    }

    #[test]
    fn checkpoint_is_idempotent_on_content() {
        let dir = tmp("idem");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let f = fact(1);
        store.log_inserts([(f.0.as_str(), &f.1)], 1).unwrap();
        let a = store.checkpoint(1).unwrap();
        let b = store.checkpoint(2).unwrap();
        // Same content → same relation objects and same root; only the
        // watermark/wal_seq header differs.
        assert_eq!(a.root, b.root);
        assert_eq!(a.root, store.base_root());
    }

    #[test]
    fn export_cursor_survives_reopen_and_checkpoint() {
        let dir = tmp("exportcursor");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let f = fact(1);
        store.log_inserts([(f.0.as_str(), &f.1)], 1).unwrap();
        let root = store.base_root();
        let exported = vec![Value::str("n0"), Value::str("n1"), Value::Int(7)];
        let gone = vec![Value::str("n0"), Value::str("n1"), Value::Int(8)];
        store
            .log_export_marks(
                [
                    ("says$link", &exported, &[0xAB, 0xCD][..]),
                    ("says$link", &gone, &[][..]),
                ],
                2,
            )
            .unwrap();
        store.log_export_clears([("says$link", &gone)], 3).unwrap();
        // Cursor entries never move the Merkle commitment.
        assert_eq!(store.base_root(), root);
        assert_eq!(store.base_fact_count(), 1);
        drop(store);

        let mut store = FactStore::open(&dir, &key).unwrap();
        assert_eq!(
            store.export_cursor(),
            vec![("says$link".to_string(), exported.clone(), vec![0xAB, 0xCD])]
        );
        assert_eq!(store.base_root(), root);
        // Checkpoint compaction re-logs the live cursor past the snapshot's
        // replay boundary, so it survives the WAL truncation too.
        let info = store.checkpoint(4).unwrap();
        assert_eq!(info.root, root);
        drop(store);
        let store = FactStore::open(&dir, &key).unwrap();
        assert_eq!(
            store.export_cursor(),
            vec![("says$link".to_string(), exported, vec![0xAB, 0xCD])]
        );
        assert_eq!(store.base_root(), root);
        assert_eq!(store.base_fact_count(), 1);
    }

    #[test]
    fn tampered_snapshot_object_is_detected() {
        let dir = tmp("snaptamper");
        let key = derive_node_key(1, "n0");
        let mut store = FactStore::open(&dir, &key).unwrap();
        let f = fact(1);
        store.log_inserts([(f.0.as_str(), &f.1)], 1).unwrap();
        let info = store.checkpoint(1).unwrap();
        drop(store);
        // Flip one byte in the relation object (not the manifest).
        let manifest = SnapshotManifest::decode(
            &ObjectStore::open(dir.join("objects"))
                .unwrap()
                .get(&info.manifest_id)
                .unwrap(),
        )
        .unwrap();
        let object_path = dir.join("objects").join(&manifest.relations[0].object);
        let mut bytes = std::fs::read(&object_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&object_path, &bytes).unwrap();
        assert!(matches!(
            FactStore::open(&dir, &key),
            Err(StoreError::ObjectMismatch { .. })
        ));
    }

    #[test]
    fn dangling_head_is_missing_object() {
        let dir = tmp("danglinghead");
        let key = derive_node_key(1, "n0");
        drop(FactStore::open(&dir, &key).unwrap());
        write_head(&dir.join("HEAD"), &crate::object::object_id(b"gone")).unwrap();
        assert!(matches!(
            FactStore::open(&dir, &key),
            Err(StoreError::MissingObject { .. })
        ));
    }
}
