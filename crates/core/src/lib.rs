//! # SecureBlox — customizable secure distributed data processing
//!
//! A from-scratch Rust reproduction of *SecureBlox: Customizable Secure
//! Distributed Data Processing* (Marczak, Huang, Bravenboer, Sherr, Loo,
//! Aref — SIGMOD 2010).
//!
//! SecureBlox unifies a distributed Datalog query processor with a security
//! policy framework: authentication (`says`), authorization, trust
//! delegation, confidentiality, and anonymity are expressed as declarative
//! *meta-programs* over the application's predicates, compiled by the
//! BloxGenerics compiler into plain DatalogLB, and enforced by ordinary
//! integrity constraints inside each node's local ACID transactions.
//!
//! This crate ties the substrates together:
//!
//! * [`policy`] — generates the policy source text (the paper's §3.2 and §6
//!   listings) from a [`SecurityConfig`], and compiles application + policy
//!   with the BloxGenerics compiler.
//! * [`runtime`] — the distributed query processor: a [`Deployment`] of
//!   simulated nodes, each a transactional DatalogLB workspace, exchanging
//!   signed/encrypted `says` batches and onion-routed anonymity cells over a
//!   discrete-event network.
//! * [`apps`] — the paper's three use cases (path-vector routing, secure
//!   parallel hash join, anonymous join) built purely on the public API.
//!
//! ## Quickstart
//!
//! ```no_run
//! use secureblox::apps::pathvector::{self, PathVectorConfig};
//! use secureblox::policy::SecurityConfig;
//! use secureblox::{AuthScheme, EncScheme};
//!
//! let config = PathVectorConfig {
//!     num_nodes: 6,
//!     security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
//!     ..PathVectorConfig::default()
//! };
//! let outcome = pathvector::run(&config).unwrap();
//! println!("fixpoint latency: {:?}", outcome.report.fixpoint_latency);
//! ```

pub mod apps;
pub mod policy;
pub mod runtime;

pub use policy::{compile_secured_program, SecurityConfig, TrustModel};
pub use runtime::{
    CheckpointInfo, Deployment, DeploymentConfig, DeploymentReport, DurabilityError, NodeSpec,
};
pub use secureblox_crypto::{AuthScheme, EncScheme};
pub use secureblox_datalog::{parse_program, DatalogError, Value, Workspace};
pub use secureblox_generics::GenericsCompiler;
pub use secureblox_net::LatencyModel;
pub use secureblox_store::{DurabilityConfig, StoreError};
