//! Multi-replica fan-out: a deployment-level replica set with per-replica,
//! per-node cursors over the masters' WALs.
//!
//! PR 2 gave each deployment a single master → replica `sync_store` path at
//! snapshot granularity.  This module generalizes it along both axes:
//!
//! * **WAL-suffix catch-up** — [`secureblox_store::sync_store`] now ships the
//!   master's WAL records past the last common snapshot, so a replica tracks
//!   the master's *current* base state, not just its last checkpoint;
//! * **fan-out** — a deployment holds any number of registered replicas, each
//!   with an independent cursor per node recording the last *acked* WAL
//!   sequence (acked = the replica directory durably holds everything below
//!   it).  [`Deployment::sync_replicas`] ships each node's missing objects
//!   and WAL suffix to every replica and advances the cursors; nodes whose
//!   cursor already matches the master's WAL head are skipped without
//!   touching the replica's disk.
//!
//! A replica is a directory tree shaped exactly like the master's durability
//! root (one store per principal), so [`Deployment::recover`] pointed at a
//! replica directory yields a working deployment — now at WAL granularity.

use crate::runtime::engine::Deployment;
use crate::runtime::DurabilityError;
use secureblox_store::{derive_node_key, sync_store, SyncStats};
use std::collections::HashMap;
use std::path::PathBuf;

/// One registered replica of a deployment's durable state.
#[derive(Debug, Clone)]
pub struct ReplicaState {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Root directory of the replica (per-principal subdirectories).
    pub dir: PathBuf,
    /// Per-node cursor: principal → last acked master WAL sequence.
    ///
    /// Cursors count WAL *records*, not update-stream deltas, so they are
    /// oblivious to batching: a streaming-mode master logs a whole combined
    /// batch as consecutive records sharing one watermark, and a cursor
    /// sitting anywhere inside that group simply ships the remaining records
    /// on the next sync — recovery's grouping by watermark restores the
    /// batch's atomicity regardless of where the cursor paused.
    pub cursors: HashMap<String, u64>,
}

/// What one `sync_replicas` pass did for one replica.
#[derive(Debug, Clone)]
pub struct ReplicaSyncReport {
    pub replica: String,
    /// Per-node sync outcomes, in node order, for nodes that needed work.
    pub nodes: Vec<(String, SyncStats)>,
    /// Nodes skipped because their cursor already matched the master's WAL
    /// head (and snapshot).
    pub up_to_date: usize,
}

impl Deployment {
    /// Register a replica rooted at `dir`.  Requires durability; the replica
    /// starts with empty cursors and catches up on the next
    /// [`Deployment::sync_replicas`].
    pub fn add_replica(
        &mut self,
        name: impl Into<String>,
        dir: impl Into<PathBuf>,
    ) -> Result<(), DurabilityError> {
        if self.config.durability.is_none() {
            return Err(DurabilityError::Disabled);
        }
        self.replicas.push(ReplicaState {
            name: name.into(),
            dir: dir.into(),
            cursors: HashMap::new(),
        });
        Ok(())
    }

    /// Names of the registered replicas, in registration order.
    pub fn replica_names(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.name.clone()).collect()
    }

    /// The per-node cursors of one replica (principal → last acked master
    /// WAL sequence).
    pub fn replica_cursors(&self, name: &str) -> Option<&HashMap<String, u64>> {
        self.replicas
            .iter()
            .find(|r| r.name == name)
            .map(|r| &r.cursors)
    }

    /// Fan out every node's durable state to every registered replica:
    /// missing snapshot objects plus the WAL suffix past each replica's
    /// cursor.  Cursors advance to the master's WAL head once the replica
    /// holds the records (ack-on-durable).
    pub fn sync_replicas(&mut self) -> Result<Vec<ReplicaSyncReport>, DurabilityError> {
        let durability = self
            .config
            .durability
            .clone()
            .ok_or(DurabilityError::Disabled)?;
        // Make sure everything the masters logged is visible on disk before
        // replicating it.
        let masters: Vec<(String, u64, bool)> = self
            .nodes
            .iter_mut()
            .map(|node| {
                let principal = node.info.principal.clone();
                let (seq, has_snapshot) = match node.store.as_mut() {
                    Some(store) => {
                        store.flush().map_err(DurabilityError::Store)?;
                        (store.wal_seq(), store.snapshot().is_some())
                    }
                    None => (0, false),
                };
                Ok::<_, DurabilityError>((principal, seq, has_snapshot))
            })
            .collect::<Result<_, _>>()?;

        let mut reports = Vec::with_capacity(self.replicas.len());
        for replica in &mut self.replicas {
            let mut report = ReplicaSyncReport {
                replica: replica.name.clone(),
                nodes: Vec::new(),
                up_to_date: 0,
            };
            for (principal, master_seq, has_snapshot) in &masters {
                let cursor = replica.cursors.get(principal).copied();
                // Cursor lag observed *before* this sync round catches the
                // replica up — how far behind the master's WAL head it was.
                let lag = master_seq.saturating_sub(cursor.unwrap_or(0));
                secureblox_telemetry::registry()
                    .gauge(&format!(
                        "engine_replica_cursor_lag{{replica=\"{}\",node=\"{}\"}}",
                        replica.name, principal
                    ))
                    .set(lag as i64);
                secureblox_telemetry::histogram!("engine_replica_cursor_lag_records").record(lag);
                // A cursor at the master's WAL head means the replica already
                // holds every record; skip without touching its disk.  (A
                // master with neither snapshot nor WAL records has nothing to
                // ship at all.)
                if cursor == Some(*master_seq) || (*master_seq == 0 && !has_snapshot) {
                    report.up_to_date += 1;
                    continue;
                }
                let key = derive_node_key(self.config.seed, principal);
                let stats = sync_store(
                    &durability.node_dir(principal),
                    &replica.dir.join(principal),
                    &key,
                )
                .map_err(DurabilityError::Store)?;
                replica.cursors.insert(principal.clone(), *master_seq);
                report.nodes.push((principal.clone(), stats));
            }
            reports.push(report);
        }
        Ok(reports)
    }
}
