//! The streaming scheduler: per-link outbox coalescing and credit-based
//! backpressure for the authenticated update stream.
//!
//! The seed runtime shipped one [`UpdateEnvelope`] per `flush_updates` call
//! and applied one transaction per delta on delivery.  The streaming runtime
//! (DESIGN.md §12) replaces that hot path with:
//!
//! * **Sender:** every exported delta is pushed into a per-link
//!   [`LinkOutbox`].  Consecutive deltas coalesce into one signed multi-delta
//!   envelope of up to [`StreamingConfig::batch_max`] deltas; an
//!   assert-then-retract pair for the same fact *annihilates* in the outbox
//!   before it ever hits the wire (the receiver would have inserted and then
//!   deleted it — net nothing).
//! * **Backpressure:** each outbox holds a credit window, initially
//!   [`StreamingConfig::queue_high_water`] deltas.  Shipping a delta consumes
//!   one credit; the receiver returns credit (a [`MessageKind::Credit`]
//!   message carrying the drained-delta count) after draining its per-link
//!   queue.  At zero credit the outbox *stalls* — deltas keep accumulating
//!   and re-coalescing, so hot links get **more** batching under load instead
//!   of unbounded receiver queues.
//!
//! The receiver-side queue drain and batch apply live in `engine.rs`; this
//! module owns the configuration and the outbox data structure.
//!
//! [`UpdateEnvelope`]: crate::runtime::codec::UpdateEnvelope
//! [`MessageKind::Credit`]: secureblox_net::MessageKind::Credit

use crate::runtime::codec::{DeltaOp, UpdateDelta};
use secureblox_datalog::value::Tuple;
use secureblox_net::VirtualTime;
use std::collections::{HashMap, VecDeque};

/// Default deltas per shipped envelope (`SECUREBLOX_BATCH_MAX`).
pub const DEFAULT_BATCH_MAX: usize = 64;

/// Default per-link credit window in deltas (`SECUREBLOX_QUEUE_HIGH_WATER`).
pub const DEFAULT_QUEUE_HIGH_WATER: usize = 256;

/// Streaming-runtime knobs.
///
/// The defaults honour `SECUREBLOX_STREAMING` (any value but `0`, `false`, or
/// `off` enables the scheduler), `SECUREBLOX_BATCH_MAX`, and
/// `SECUREBLOX_QUEUE_HIGH_WATER`, so the CI matrix can run the whole suite
/// with batching and backpressure on without code changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Route update streams through per-link outboxes and batched applies.
    /// When false the runtime keeps the seed's one-envelope-per-flush,
    /// one-transaction-per-delta path exactly.
    pub enabled: bool,
    /// Maximum deltas per shipped envelope.
    pub batch_max: usize,
    /// Per-link credit window: the maximum number of shipped-but-undrained
    /// deltas before the sender's outbox stalls.  This is also the receiver
    /// queue's high-water mark — the receiver can never hold more queued
    /// deltas from one sender than the credit it has granted.
    pub queue_high_water: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            enabled: env_flag("SECUREBLOX_STREAMING"),
            batch_max: env_usize("SECUREBLOX_BATCH_MAX", DEFAULT_BATCH_MAX),
            queue_high_water: env_usize("SECUREBLOX_QUEUE_HIGH_WATER", DEFAULT_QUEUE_HIGH_WATER),
        }
    }
}

impl StreamingConfig {
    /// The scheduler with explicit knobs, ignoring the environment.
    pub fn with_knobs(batch_max: usize, queue_high_water: usize) -> Self {
        StreamingConfig {
            enabled: true,
            batch_max: batch_max.max(1),
            queue_high_water: queue_high_water.max(1),
        }
    }

    /// The seed's per-envelope path, ignoring the environment.
    pub fn disabled() -> Self {
        StreamingConfig {
            enabled: false,
            batch_max: DEFAULT_BATCH_MAX,
            queue_high_water: DEFAULT_QUEUE_HIGH_WATER,
        }
    }
}

pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        let v = v.trim().to_ascii_lowercase();
        !v.is_empty() && v != "0" && v != "false" && v != "off"
    })
}

pub(crate) fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

/// A queued delta slot.  `None` marks a tombstone left by annihilation; the
/// queue compacts lazily as batches are taken from the front.
type Slot = Option<UpdateDelta>;

/// The per-link sender-side outbox: an ordered delta queue with
/// assert-then-retract annihilation and a credit window.
#[derive(Debug)]
pub struct LinkOutbox {
    /// Queued deltas, front first.  `base` is the absolute index of the
    /// front slot, so [`LinkOutbox::pending_asserts`] positions stay valid as
    /// the front drains.
    deltas: VecDeque<Slot>,
    base: u64,
    /// Absolute slot index of the queued (unshipped) `Assert` per fact, for
    /// O(1) annihilation when the matching `Retract` arrives.
    pending_asserts: HashMap<(String, Tuple), u64>,
    /// Queued deltas that are not tombstones.
    live: usize,
    /// Remaining send window in deltas.
    credit: usize,
    /// Credit ceiling — returned (or forged) credit never raises the window
    /// above the receiver's high-water mark.
    high_water: usize,
    /// Virtual time at which this outbox ran out of credit with deltas still
    /// queued, for the stall histogram.  Cleared when credit returns.
    stalled_since: Option<VirtualTime>,
    /// Deltas annihilated in this outbox over its lifetime.
    annihilated: u64,
}

impl LinkOutbox {
    /// An empty outbox with a full credit window of `high_water` deltas.
    pub fn new(high_water: usize) -> Self {
        LinkOutbox {
            deltas: VecDeque::new(),
            base: 0,
            pending_asserts: HashMap::new(),
            live: 0,
            credit: high_water.max(1),
            high_water: high_water.max(1),
            stalled_since: None,
            annihilated: 0,
        }
    }

    /// Queue a delta.  A `Retract` that finds the matching `Assert` still
    /// queued annihilates the pair (neither ships); returns whether that
    /// happened.  Only the assert-then-retract direction annihilates — a
    /// retract followed by a re-assert must reach the receiver in order, or
    /// a previously shipped copy of the fact would survive.
    pub fn push(&mut self, delta: UpdateDelta) -> bool {
        let key = (delta.pred.clone(), delta.tuple.clone());
        match delta.op {
            DeltaOp::Retract => {
                if let Some(position) = self.pending_asserts.remove(&key) {
                    let slot = (position - self.base) as usize;
                    debug_assert!(matches!(
                        self.deltas.get(slot),
                        Some(Some(UpdateDelta {
                            op: DeltaOp::Assert,
                            ..
                        }))
                    ));
                    self.deltas[slot] = None;
                    self.live -= 1;
                    self.annihilated += 2;
                    return true;
                }
            }
            DeltaOp::Assert => {
                self.pending_asserts
                    .insert(key, self.base + self.deltas.len() as u64);
            }
        }
        self.deltas.push_back(Some(delta));
        self.live += 1;
        false
    }

    /// Take up to `max` deltas from the front, in order, skipping tombstones.
    pub fn take_batch(&mut self, max: usize) -> Vec<UpdateDelta> {
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some(slot) = self.deltas.pop_front() else {
                break;
            };
            let position = self.base;
            self.base += 1;
            if let Some(delta) = slot {
                if delta.op == DeltaOp::Assert {
                    let key = (delta.pred.clone(), delta.tuple.clone());
                    if self.pending_asserts.get(&key) == Some(&position) {
                        self.pending_asserts.remove(&key);
                    }
                }
                self.live -= 1;
                batch.push(delta);
            }
        }
        batch
    }

    /// Queued deltas that would actually ship (tombstones excluded).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Remaining send window in deltas.
    pub fn credit(&self) -> usize {
        self.credit
    }

    /// Consume `n` credits for deltas being shipped.
    pub fn consume_credit(&mut self, n: usize) {
        self.credit = self.credit.saturating_sub(n);
    }

    /// Return credit granted by the receiver.  Capped at the high-water mark
    /// so a forged or replayed credit message can at most refill the window,
    /// never grow it.  Returns the stall duration ended by this grant, if the
    /// outbox was stalled.
    pub fn grant_credit(&mut self, granted: u64, now: VirtualTime) -> Option<VirtualTime> {
        self.credit = self
            .credit
            .saturating_add(granted.min(self.high_water as u64) as usize)
            .min(self.high_water);
        if self.credit > 0 {
            self.stalled_since
                .take()
                .map(|since| now.saturating_sub(since))
        } else {
            None
        }
    }

    /// Record that the outbox is out of credit with deltas still queued.
    pub fn mark_stalled(&mut self, now: VirtualTime) {
        if self.stalled_since.is_none() {
            self.stalled_since = Some(now);
        }
    }

    /// Deltas annihilated in this outbox over its lifetime.
    pub fn annihilated(&self) -> u64 {
        self.annihilated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::value::Value;

    fn delta(op: DeltaOp, pred: &str, marker: &str) -> UpdateDelta {
        UpdateDelta {
            op,
            pred: pred.into(),
            tuple: vec![Value::str("a"), Value::str("b"), Value::str(marker)],
            signature: vec![1, 2, 3],
        }
    }

    #[test]
    fn outbox_preserves_order_and_batches() {
        let mut outbox = LinkOutbox::new(16);
        for marker in ["x", "y", "z"] {
            outbox.push(delta(DeltaOp::Assert, "p", marker));
        }
        assert_eq!(outbox.live(), 3);
        let first = outbox.take_batch(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].tuple[2], Value::str("x"));
        assert_eq!(first[1].tuple[2], Value::str("y"));
        let rest = outbox.take_batch(10);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].tuple[2], Value::str("z"));
        assert_eq!(outbox.live(), 0);
        assert!(outbox.take_batch(10).is_empty());
    }

    #[test]
    fn assert_then_retract_annihilates() {
        let mut outbox = LinkOutbox::new(16);
        outbox.push(delta(DeltaOp::Assert, "p", "x"));
        outbox.push(delta(DeltaOp::Assert, "p", "y"));
        assert!(outbox.push(delta(DeltaOp::Retract, "p", "x")));
        assert_eq!(outbox.live(), 1);
        assert_eq!(outbox.annihilated(), 2);
        let batch = outbox.take_batch(10);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].tuple[2], Value::str("y"));
    }

    #[test]
    fn retract_then_assert_does_not_annihilate() {
        let mut outbox = LinkOutbox::new(16);
        // The assert was already shipped; only the retract is queued.
        assert!(!outbox.push(delta(DeltaOp::Retract, "p", "x")));
        // A re-derivation re-asserts the same fact: both must ship, in order.
        assert!(!outbox.push(delta(DeltaOp::Assert, "p", "x")));
        let batch = outbox.take_batch(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].op, DeltaOp::Retract);
        assert_eq!(batch[1].op, DeltaOp::Assert);
    }

    #[test]
    fn annihilation_survives_partial_drain() {
        let mut outbox = LinkOutbox::new(16);
        outbox.push(delta(DeltaOp::Assert, "p", "x"));
        outbox.push(delta(DeltaOp::Assert, "p", "y"));
        // Ship "x"; its pending-assert entry must not dangle.
        let shipped = outbox.take_batch(1);
        assert_eq!(shipped[0].tuple[2], Value::str("x"));
        // Retracting the *shipped* "x" queues normally (no annihilation).
        assert!(!outbox.push(delta(DeltaOp::Retract, "p", "x")));
        // Retracting the still-queued "y" annihilates.
        assert!(outbox.push(delta(DeltaOp::Retract, "p", "y")));
        let rest = outbox.take_batch(10);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].op, DeltaOp::Retract);
        assert_eq!(rest[0].tuple[2], Value::str("x"));
    }

    #[test]
    fn credit_window_consume_grant_and_cap() {
        let mut outbox = LinkOutbox::new(4);
        assert_eq!(outbox.credit(), 4);
        outbox.consume_credit(4);
        assert_eq!(outbox.credit(), 0);
        outbox.push(delta(DeltaOp::Assert, "p", "x"));
        outbox.mark_stalled(1_000);
        outbox.mark_stalled(2_000); // second mark must not reset the clock
        let stall = outbox.grant_credit(2, 5_000);
        assert_eq!(stall, Some(4_000));
        assert_eq!(outbox.credit(), 2);
        // Forged over-grant refills to the cap, never beyond.
        let stall = outbox.grant_credit(u64::MAX, 6_000);
        assert_eq!(stall, None, "not stalled any more");
        assert_eq!(outbox.credit(), 4);
    }

    #[test]
    fn config_constructors_clamp() {
        let config = StreamingConfig::with_knobs(0, 0);
        assert!(config.enabled);
        assert_eq!(config.batch_max, 1);
        assert_eq!(config.queue_high_water, 1);
        assert!(!StreamingConfig::disabled().enabled);
    }
}
