//! Horizontal EDB sharding: partition base relations by key hash across a
//! declared node group and make cross-partition evaluation a planner
//! concern, not an app concern.
//!
//! The paper's §7.2 hash-join app routes tuples by hand: a DatalogLB rule
//! per table rehashes on the join attribute and `says` each tuple to the
//! principal whose `prin_minhash`/`prin_maxhash` range contains the hash.
//! This module generalizes that pattern into the runtime:
//!
//! * a [`ShardMap`] (carried in `DeploymentConfig::sharding`) declares
//!   relation → partition column → consistent-hash ring over a group of
//!   members; [`Deployment::build`] routes every initial fact of a sharded
//!   relation to its ring owner, and [`Deployment::ingest`] does the same
//!   for runtime inserts;
//! * the exchange planner (`secureblox_datalog::eval::shuffle`) classifies
//!   each sharded body literal as co-partitioned, shuffle, or broadcast;
//!   this module turns the needed dataflows into *generated DatalogLB
//!   source* — typed declarations, `exportable` listings, and
//!   `says[\`shard_xchg_…]`/`says[\`shard_bcast_…]` routing rules over the
//!   engine-maintained `shard_slot`/`shard_member` facts — appended to the
//!   app before policy compilation, so exchange traffic ships as ordinary
//!   signed streaming envelopes and inherits verification, WAL logging, and
//!   recovery for free;
//! * after policy compilation, [`rewrite_program`] re-runs the (pure,
//!   deterministic) classification over the compiled rules and substitutes
//!   each shuffled or broadcast body atom with its exchanged copy;
//! * [`Deployment::apply_shard_map`] re-partitions on membership change:
//!   only the tuples whose hash slot moved are retracted at the old
//!   owner and re-asserted at the new one, and the updated
//!   `shard_slot`/`shard_member` facts drive the rest — stale exchange
//!   copies are withdrawn and fresh ones shipped by the same signed-delta
//!   plane that handles any other retraction.
//!
//! Trust model: a shard owner is trusted *for its partition*, exactly as
//! every SecureBlox node is trusted for the facts it `says`.  Signatures
//! make exchange tuples non-forgeable in transit (a member cannot inject
//! tuples in another member's name), and the Merkle-committed stores make
//! each partition auditable — but an owner can still drop or fabricate
//! tuples *of its own partition*.  See DESIGN.md §14 for the discussion.

use crate::runtime::codec::serialize_tuple;
use crate::runtime::engine::{Deployment, NodeSpec};
use secureblox_crypto::sha1;
use secureblox_datalog::ast::{Atom, Constraint, Literal, PredRef, Program, Rule, Statement, Term};
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_datalog::eval::runtime_pred_name;
use secureblox_datalog::eval::shuffle::{
    self, ExchangeInput, ExchangeStrategy, ProgramExchangePlan,
};
use secureblox_datalog::parser::parse_program;
use secureblox_datalog::value::{tuple_total_cmp, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

pub use secureblox_datalog::eval::shuffle::{
    broadcast_name, exchange_name, is_exchange_pred, MEMBER_RELATION, SHARD_SLOTS, SLOT_RELATION,
};

/// Relation names the engine provisions itself; sharding them would race the
/// universe bootstrap.
const RESERVED_RELATIONS: &[&str] = &[
    "principal",
    "node",
    "principal_node",
    "trustworthy",
    "secret",
    "public_key",
    "private_key",
];

/// The one partition-hash definition shared by the engine's `sha1hash` UDF,
/// the hashjoin app's bucket placement, and ring routing: the positive
/// 63-bit big-endian prefix of the SHA-1 of the value's canonical encoding.
/// Routing rules written in DatalogLB (`sha1slot(V, B)`, i.e. [`slot_of`])
/// and routing done in Rust (`ShardRing::owner_of`) therefore always agree
/// on the owner.
pub fn shard_hash(value: &Value) -> i64 {
    let digest = sha1(&serialize_tuple(std::slice::from_ref(value)));
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&digest[..8]);
    i64::from_be_bytes(raw).unsigned_abs() as i64 & i64::MAX
}

/// The fixed hash slot of a partition-column value: `shard_hash(v)` folded
/// into `[0, SHARD_SLOTS)`.  Shared by the `sha1slot` UDF (routing rules)
/// and [`ShardRing::owner_of`] (Rust-side placement), so both sides route
/// through the identical slot table.
pub fn slot_of(value: &Value) -> i64 {
    shard_hash(value) % SHARD_SLOTS
}

/// The ring probe point of a slot: slots are evenly spaced across the
/// positive 63-bit hash space, so slot ownership inherits the ring's
/// minimal-movement property on membership change.
pub fn slot_position(slot: i64) -> i64 {
    slot * (i64::MAX / SHARD_SLOTS)
}

/// Vnodes-per-member default (`SECUREBLOX_SHARD_VNODES`).
fn env_vnodes() -> usize {
    std::env::var("SECUREBLOX_SHARD_VNODES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(16)
}

/// Broadcast-threshold default (`SECUREBLOX_SHARD_BROADCAST_MAX`).
fn env_broadcast_max() -> usize {
    std::env::var("SECUREBLOX_SHARD_BROADCAST_MAX")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(64)
}

/// Declares which base relations are partitioned, on which column, across
/// which group members.  Carried in [`DeploymentConfig::sharding`].
#[derive(Debug, Clone)]
pub struct ShardMap {
    group: Vec<String>,
    relations: BTreeMap<String, usize>,
    vnodes: usize,
    broadcast_max: usize,
}

impl ShardMap {
    /// A shard map over `group` (deployment principals).  Vnodes-per-member
    /// and the broadcast threshold honour `SECUREBLOX_SHARD_VNODES` /
    /// `SECUREBLOX_SHARD_BROADCAST_MAX`.
    pub fn new<I, S>(group: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ShardMap {
            group: group.into_iter().map(Into::into).collect(),
            relations: BTreeMap::new(),
            vnodes: env_vnodes(),
            broadcast_max: env_broadcast_max(),
        }
    }

    /// Partition `relation` by the hash of its `column`-th argument.
    pub fn shard(mut self, relation: impl Into<String>, column: usize) -> Self {
        self.relations.insert(relation.into(), column);
        self
    }

    /// Override the number of virtual ring points per member.
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Override the always-broadcast cardinality threshold.
    pub fn with_broadcast_max(mut self, broadcast_max: usize) -> Self {
        self.broadcast_max = broadcast_max;
        self
    }

    pub fn group(&self) -> &[String] {
        &self.group
    }

    pub fn relations(&self) -> &BTreeMap<String, usize> {
        &self.relations
    }

    pub fn partitions(&self) -> usize {
        self.group.len()
    }

    pub fn broadcast_max(&self) -> usize {
        self.broadcast_max
    }

    /// The partition column of `relation`, when it is sharded.
    pub fn partition_column(&self, relation: &str) -> Option<usize> {
        self.relations.get(relation).copied()
    }

    /// Whether the map actually shards anything.
    pub fn is_active(&self) -> bool {
        !self.group.is_empty() && !self.relations.is_empty()
    }

    /// Materialize the consistent-hash ring.
    pub fn ring(&self) -> ShardRing {
        ShardRing::build(&self.group, self.vnodes)
    }

    /// The `shard_slot(Slot, Owner)` and `shard_member(P)` facts every node
    /// carries — the Datalog mirror of the ring, quantized into
    /// [`SHARD_SLOTS`] fixed slots so the generated routing rules join on an
    /// indexed slot id (§7.2's `prin_minhash`/`prin_maxhash` range facts
    /// would make every routed tuple scan a segment list that grows with
    /// the group).
    pub fn exchange_facts(&self) -> Vec<(String, Tuple)> {
        let ring = self.ring();
        let mut facts: Vec<(String, Tuple)> =
            Vec::with_capacity(SHARD_SLOTS as usize + self.group.len());
        for slot in 0..SHARD_SLOTS {
            facts.push((
                SLOT_RELATION.to_string(),
                vec![
                    Value::Int(slot),
                    Value::str(ring.owner_of_hash(slot_position(slot))),
                ],
            ));
        }
        for member in &self.group {
            facts.push((MEMBER_RELATION.to_string(), vec![Value::str(member)]));
        }
        facts
    }
}

/// One contiguous hash-range of the ring and its owning member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSegment {
    pub owner: String,
    pub lo: i64,
    pub hi: i64,
}

/// The materialized consistent-hash ring: `vnodes` points per member over
/// the positive 63-bit hash space, sorted.  A key hashes to the owner of
/// the first point at or above it (wrapping), so adding or removing a
/// member moves only the segments adjacent to its points — the minimal
///-movement property [`Deployment::apply_shard_map`] relies on.
#[derive(Debug, Clone)]
pub struct ShardRing {
    points: Vec<(i64, String)>,
}

impl ShardRing {
    fn build(group: &[String], vnodes: usize) -> ShardRing {
        let mut points: Vec<(i64, String)> = Vec::with_capacity(group.len() * vnodes);
        for member in group {
            for vnode in 0..vnodes {
                points.push((
                    shard_hash(&Value::str(format!("{member}#vnode{vnode}"))),
                    member.clone(),
                ));
            }
        }
        // Sort by point; on the (astronomically unlikely) hash collision the
        // lexicographically smallest member wins deterministically.
        points.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        points.dedup_by_key(|(point, _)| *point);
        ShardRing { points }
    }

    /// The member owning `hash`.
    pub fn owner_of_hash(&self, hash: i64) -> &str {
        assert!(!self.points.is_empty(), "shard ring over an empty group");
        let index = self.points.partition_point(|(point, _)| *point < hash);
        let (_, owner) = self.points.get(index).unwrap_or(&self.points[0]);
        owner
    }

    /// The member owning a partition-column value.  Routes through the
    /// fixed slot table ([`slot_of`]/[`slot_position`]) rather than the raw
    /// hash, so Rust-side placement and the generated `sha1slot`-based
    /// routing rules agree tuple-for-tuple.
    pub fn owner_of(&self, value: &Value) -> &str {
        self.owner_of_hash(slot_position(slot_of(value)))
    }

    /// The ring as contiguous inclusive segments covering `[0, i64::MAX]`.
    pub fn segments(&self) -> Vec<ShardSegment> {
        assert!(!self.points.is_empty(), "shard ring over an empty group");
        let mut segments = Vec::with_capacity(self.points.len() + 1);
        let mut lo = 0i64;
        for (point, owner) in &self.points {
            segments.push(ShardSegment {
                owner: owner.clone(),
                lo,
                hi: *point,
            });
            if *point == i64::MAX {
                return segments;
            }
            lo = *point + 1;
        }
        // Wrap-around: everything above the last point belongs to the first.
        segments.push(ShardSegment {
            owner: self.points[0].1.clone(),
            lo,
            hi: i64::MAX,
        });
        segments
    }
}

/// The owner of a fact of `pred`, when `pred` is sharded (with the column
/// bounds checked against the actual tuple).
pub(crate) fn fact_owner<'r>(
    map: &ShardMap,
    ring: &'r ShardRing,
    pred: &str,
    tuple: &[Value],
) -> Result<Option<&'r str>> {
    let Some(column) = map.partition_column(pred) else {
        return Ok(None);
    };
    let Some(value) = tuple.get(column) else {
        return Err(DatalogError::Eval(format!(
            "shard map partitions {pred} on column {column}, but a fact has arity {}",
            tuple.len()
        )));
    };
    Ok(Some(ring.owner_of(value)))
}

/// Everything [`Deployment::build`] carries from the pre-compile shard
/// analysis to the post-compile rewrite: the generated routing source, the
/// base-cardinality estimates both planner passes share, and the dataflow
/// sets the generated source covers.
#[derive(Debug, Clone)]
pub(crate) struct ShardArtifacts {
    pub(crate) relations: BTreeMap<String, usize>,
    pub(crate) partitions: usize,
    pub(crate) broadcast_max: usize,
    pub(crate) generated_source: String,
    pub(crate) estimates: BTreeMap<String, usize>,
    pub(crate) shuffles: BTreeSet<(String, usize)>,
    pub(crate) broadcasts: BTreeSet<String>,
}

/// Analyze the app against the shard map: validate the sharded relations,
/// plan every rule, and generate the exchange declarations and routing
/// rules the plan needs.  Pure — a function of the app source, the map, and
/// the initial facts — so the identical classification in
/// [`rewrite_program`] cannot drift.
pub(crate) fn analyze(
    app_source: &str,
    map: &ShardMap,
    initial_facts: &[(String, Tuple)],
    strict_typing: bool,
) -> Result<ShardArtifacts> {
    let program = parse_program(app_source)?;

    for relation in map.relations().keys() {
        if RESERVED_RELATIONS.contains(&relation.as_str()) {
            return Err(DatalogError::Eval(format!(
                "relation {relation} is provisioned by the engine and cannot be sharded"
            )));
        }
        if relation.starts_with("shard_") || relation.contains('$') {
            return Err(DatalogError::Eval(format!(
                "relation name {relation} is reserved for the shard runtime"
            )));
        }
        if let Some(decl) = find_declaration(&program, relation) {
            if declared_functional(decl) {
                return Err(DatalogError::Eval(format!(
                    "sharded relations must be plain (non-functional): {relation} is declared \
                     with functional syntax"
                )));
            }
        } else if strict_typing {
            return Err(DatalogError::Eval(format!(
                "sharded relation {relation} has no type declaration; the generated exchange \
                 relations copy its declared column types"
            )));
        }
    }
    for statement in &program.statements {
        if let Statement::Constraint(constraint) = statement {
            for literal in constraint.lhs.iter().chain(&constraint.rhs) {
                if let Literal::Pos(atom) | Literal::Neg(atom) = literal {
                    if let Some(name) = atom.pred.as_named() {
                        if name.starts_with("shard_") {
                            return Err(DatalogError::Eval(format!(
                                "predicate name {name} is reserved for the shard runtime"
                            )));
                        }
                    }
                }
            }
        }
    }

    let mut estimates: BTreeMap<String, usize> = BTreeMap::new();
    for (pred, _) in initial_facts {
        *estimates.entry(pred.clone()).or_default() += 1;
    }
    for fact in program.facts() {
        if let Some(name) = fact.atom.pred.as_named() {
            *estimates.entry(name.to_string()).or_default() += 1;
        }
    }

    let plan = plan_over(&program, map, &estimates)?;
    let generated_source = generate_source(&program, initial_facts, &plan)?;
    Ok(ShardArtifacts {
        relations: map.relations().clone(),
        partitions: map.partitions(),
        broadcast_max: map.broadcast_max(),
        generated_source,
        estimates,
        shuffles: plan.shuffles,
        broadcasts: plan.broadcasts,
    })
}

/// Run the exchange planner over a program's rules, skipping generated
/// exchange machinery.
fn plan_over(
    program: &Program,
    map: &ShardMap,
    estimates: &BTreeMap<String, usize>,
) -> Result<ProgramExchangePlan> {
    let mut indexed: Vec<(usize, &Rule)> = Vec::new();
    for (index, statement) in program.statements.iter().enumerate() {
        if let Statement::Rule(rule) = statement {
            if rule_is_exchange_machinery(rule)? {
                continue;
            }
            indexed.push((index, rule));
        }
    }
    let estimate = |name: &str| estimates.get(name).copied().unwrap_or(0);
    shuffle::plan_rules(
        &indexed,
        &ExchangeInput {
            sharded: map.relations(),
            partitions: map.partitions(),
            broadcast_max: map.broadcast_max(),
            estimate: &estimate,
        },
    )
}

/// Whether a rule belongs to the generated exchange machinery (routing
/// rules, and the policy-generated import/`sig$` rules over exchange
/// relations) and must never be replanned or rewritten.
fn rule_is_exchange_machinery(rule: &Rule) -> Result<bool> {
    for atom in &rule.head {
        if atom.pred.is_concrete()
            && shuffle::is_exchange_generated(&runtime_pred_name(&atom.pred)?)
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Find a relation's type declaration: a constraint `rel(V…) -> types…`.
fn find_declaration<'p>(program: &'p Program, relation: &str) -> Option<&'p Constraint> {
    program.statements.iter().find_map(|statement| {
        let Statement::Constraint(constraint) = statement else {
            return None;
        };
        if constraint.lhs.len() != 1 || constraint.rhs.is_empty() {
            return None;
        }
        let Literal::Pos(atom) = &constraint.lhs[0] else {
            return None;
        };
        (atom.pred.as_named() == Some(relation)
            && atom
                .terms
                .iter()
                .all(|term| matches!(term, Term::Var(_) | Term::Wildcard)))
        .then_some(constraint)
    })
}

fn declared_functional(decl: &Constraint) -> bool {
    matches!(&decl.lhs[0], Literal::Pos(atom) if atom.functional)
}

/// The arity of a sharded relation: from its declaration, else from a body
/// literal, else from an initial fact.
fn relation_arity(
    program: &Program,
    relation: &str,
    initial_facts: &[(String, Tuple)],
) -> Result<usize> {
    if let Some(decl) = find_declaration(program, relation) {
        if let Literal::Pos(atom) = &decl.lhs[0] {
            return Ok(atom.terms.len());
        }
    }
    for statement in &program.statements {
        if let Statement::Rule(rule) = statement {
            for literal in &rule.body {
                if let Literal::Pos(atom) | Literal::Neg(atom) = literal {
                    if atom.pred.as_named() == Some(relation) {
                        return Ok(atom.terms.len());
                    }
                }
            }
        }
    }
    if let Some((_, tuple)) = initial_facts.iter().find(|(pred, _)| pred == relation) {
        return Ok(tuple.len());
    }
    Err(DatalogError::Eval(format!(
        "cannot determine the arity of sharded relation {relation}: it has no declaration, no \
         body occurrence, and no initial facts"
    )))
}

/// Rename the variables of a declaration's rhs literal to the generated
/// argument names.
fn rename_literal(literal: &Literal, renames: &BTreeMap<String, String>) -> Literal {
    fn rename_term(term: &Term, renames: &BTreeMap<String, String>) -> Term {
        match term {
            Term::Var(v) => Term::Var(renames.get(v).cloned().unwrap_or_else(|| v.clone())),
            Term::BinOp(l, op, r) => Term::BinOp(
                Box::new(rename_term(l, renames)),
                *op,
                Box::new(rename_term(r, renames)),
            ),
            other => other.clone(),
        }
    }
    let rename_atom = |atom: &Atom| Atom {
        pred: atom.pred.clone(),
        terms: atom.terms.iter().map(|t| rename_term(t, renames)).collect(),
        functional: atom.functional,
    };
    match literal {
        Literal::Pos(atom) => Literal::Pos(rename_atom(atom)),
        Literal::Neg(atom) => Literal::Neg(rename_atom(atom)),
        Literal::Cmp(l, op, r) => {
            Literal::Cmp(rename_term(l, renames), *op, rename_term(r, renames))
        }
    }
}

/// Generate the exchange source for a plan: typed declarations for every
/// exchange relation (copying the base relation's declared column types),
/// `exportable` listings so the `says` policy covers them, and the routing
/// rules — the engine-written generalization of the §7.2 rehash rules.
fn generate_source(
    program: &Program,
    initial_facts: &[(String, Tuple)],
    plan: &ProgramExchangePlan,
) -> Result<String> {
    let mut out = String::from("\n// --- generated by the shard runtime (do not hand-edit) ---\n");
    out.push_str(&format!(
        "{SLOT_RELATION}(SXB, SXP) -> int[32](SXB), principal(SXP).\n\
         {MEMBER_RELATION}(SXP) -> principal(SXP).\n"
    ));

    let args = |arity: usize| -> Vec<String> { (0..arity).map(|i| format!("SXV{i}")).collect() };
    let typed_decl = |relation: &str, exchange: &str, arity: usize| -> Option<String> {
        let decl = find_declaration(program, relation)?;
        let Literal::Pos(lhs) = &decl.lhs[0] else {
            return None;
        };
        let renames: BTreeMap<String, String> = lhs
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, term)| match term {
                Term::Var(v) => Some((v.clone(), format!("SXV{i}"))),
                _ => None,
            })
            .collect();
        let rhs: Vec<String> = decl
            .rhs
            .iter()
            .map(|literal| rename_literal(literal, &renames).to_string())
            .collect();
        Some(format!(
            "{exchange}({}) -> {}.\n",
            args(arity).join(", "),
            rhs.join(", ")
        ))
    };

    for (relation, column) in &plan.shuffles {
        let arity = relation_arity(program, relation, initial_facts)?;
        let exchange = exchange_name(relation, *column);
        if let Some(decl) = typed_decl(relation, &exchange, arity) {
            out.push_str(&decl);
        }
        out.push_str(&format!("exportable(`{exchange}).\n"));
        let vars = args(arity);
        out.push_str(&format!(
            "says[`{exchange}](self[], SXP, {vars}) <- {relation}({vars}), \
             sha1slot(SXV{column}, SXB), {SLOT_RELATION}(SXB, SXP).\n",
            vars = vars.join(", "),
        ));
    }
    for relation in &plan.broadcasts {
        let arity = relation_arity(program, relation, initial_facts)?;
        let exchange = broadcast_name(relation);
        if let Some(decl) = typed_decl(relation, &exchange, arity) {
            out.push_str(&decl);
        }
        out.push_str(&format!("exportable(`{exchange}).\n"));
        let vars = args(arity);
        out.push_str(&format!(
            "says[`{exchange}](self[], SXP, {vars}) <- {relation}({vars}), \
             {MEMBER_RELATION}(SXP).\n",
            vars = vars.join(", "),
        ));
    }
    Ok(out)
}

/// Rewrite the compiled program in place: re-run the deterministic
/// classification over every non-generated rule and substitute each
/// shuffled or broadcast sharded body atom with its exchanged copy.
/// Returns the program's exchange plan (summary surfaced in the report).
pub(crate) fn rewrite_program(
    program: &mut Program,
    artifacts: &ShardArtifacts,
) -> Result<ProgramExchangePlan> {
    let mut indexed: Vec<(usize, Rule)> = Vec::new();
    for (index, statement) in program.statements.iter().enumerate() {
        if let Statement::Rule(rule) = statement {
            if rule_is_exchange_machinery(rule)? {
                continue;
            }
            indexed.push((index, rule.clone()));
        }
    }
    let refs: Vec<(usize, &Rule)> = indexed.iter().map(|(i, r)| (*i, r)).collect();
    let estimate = |name: &str| artifacts.estimates.get(name).copied().unwrap_or(0);
    let plan = shuffle::plan_rules(
        &refs,
        &ExchangeInput {
            sharded: &artifacts.relations,
            partitions: artifacts.partitions,
            broadcast_max: artifacts.broadcast_max,
            estimate: &estimate,
        },
    )?;

    // The pre-compile analysis generated routing for exactly the dataflows
    // it planned; if compilation introduced a rule that needs one it did not
    // plan, the exchanged copy would silently stay empty — fail loudly.
    for shuffle_flow in &plan.shuffles {
        if !artifacts.shuffles.contains(shuffle_flow) {
            return Err(DatalogError::Eval(format!(
                "exchange planner drift: compiled program needs shuffle dataflow {}/{} that the \
                 analysis pass did not generate",
                shuffle_flow.0, shuffle_flow.1
            )));
        }
    }
    for broadcast_flow in &plan.broadcasts {
        if !artifacts.broadcasts.contains(broadcast_flow) {
            return Err(DatalogError::Eval(format!(
                "exchange planner drift: compiled program needs broadcast dataflow {broadcast_flow} \
                 that the analysis pass did not generate"
            )));
        }
    }

    for (index, rule_plan) in &plan.rules {
        let Statement::Rule(rule) = &mut program.statements[*index] else {
            continue;
        };
        for exchange in &rule_plan.literals {
            let replacement = match exchange.strategy {
                ExchangeStrategy::CoPartitioned => continue,
                ExchangeStrategy::Shuffle { column } => exchange_name(&exchange.relation, column),
                ExchangeStrategy::Broadcast => broadcast_name(&exchange.relation),
            };
            match &mut rule.body[exchange.literal] {
                Literal::Pos(atom) | Literal::Neg(atom) => {
                    atom.pred = PredRef::Named(replacement);
                }
                Literal::Cmp(..) => unreachable!("exchange plans only cover atoms"),
            }
        }
    }
    Ok(plan)
}

/// Route node-spec base facts to their ring owners (non-sharded facts stay
/// where the spec put them).
pub(crate) fn route_specs(specs: &[NodeSpec], map: &ShardMap) -> Result<Vec<NodeSpec>> {
    let ring = map.ring();
    let index: HashMap<&str, usize> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| (spec.principal.as_str(), i))
        .collect();
    let mut routed: Vec<NodeSpec> = specs
        .iter()
        .map(|spec| NodeSpec::new(&spec.principal))
        .collect();
    for (origin, spec) in specs.iter().enumerate() {
        for (pred, tuple) in &spec.base_facts {
            let destination = match fact_owner(map, &ring, pred, tuple)? {
                Some(owner) => *index.get(owner).ok_or_else(|| {
                    DatalogError::Eval(format!("shard owner {owner} is not a deployment node"))
                })?,
                None => origin,
            };
            routed[destination]
                .base_facts
                .push((pred.clone(), tuple.clone()));
        }
    }
    Ok(routed)
}

/// Shard section of a [`DeploymentReport`](crate::runtime::engine::DeploymentReport):
/// partition population, exchange traffic, and the planner's classification
/// counts — partition skew is visible here without reading logs.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Group size.
    pub partitions: usize,
    /// Sharded base tuples held per member.
    pub per_partition_tuples: Vec<(String, usize)>,
    /// Bytes of exchange deltas shipped on the wire.
    pub exchange_bytes: usize,
    pub co_partitioned_literals: usize,
    pub shuffle_literals: usize,
    pub broadcast_literals: usize,
    /// Max-over-mean of `per_partition_tuples` (1.0 = perfectly even).
    pub skew: f64,
}

/// Outcome of one [`Deployment::apply_shard_map`] re-partitioning.
#[derive(Debug, Clone)]
pub struct RepartitionReport {
    /// Base tuples that changed owner.
    pub moved_tuples: usize,
    /// Base tuples that stayed put.
    pub retained_tuples: usize,
    /// Ring segments before and after.
    pub segments_before: usize,
    pub segments_after: usize,
    /// The global sharded-content digest, verified unchanged by the move.
    pub digest: String,
    /// Per-node EDB Merkle roots after convergence (empty when the
    /// deployment is not durable).
    pub edb_roots: Vec<(String, String)>,
    /// Virtual time the re-partitioned deployment took to re-converge.
    pub convergence: Duration,
}

impl Deployment {
    /// Insert facts at runtime, routed through the shard map: each fact of a
    /// sharded relation is applied as a transaction at its ring owner (and
    /// flushed onto the update stream like any other insert).  Facts of
    /// non-sharded relations are rejected — their placement is the caller's
    /// decision, made through node specs or `process_batch`.
    pub fn ingest(&mut self, batch: Vec<(String, Tuple)>) -> Result<()> {
        let map = match &self.config.sharding {
            Some(map) if map.is_active() => map.clone(),
            _ => {
                return Err(DatalogError::Eval(
                    "Deployment::ingest requires an active shard map".into(),
                ))
            }
        };
        let ring = map.ring();
        let mut per_owner: BTreeMap<usize, Vec<(String, Tuple)>> = BTreeMap::new();
        for (pred, tuple) in batch {
            let Some(owner) = fact_owner(&map, &ring, &pred, &tuple)? else {
                return Err(DatalogError::Eval(format!(
                    "Deployment::ingest only routes sharded relations; {pred} is not in the \
                     shard map"
                )));
            };
            let &index = self.shared.principal_index.get(owner).ok_or_else(|| {
                DatalogError::Eval(format!("shard owner {owner} is not a deployment node"))
            })?;
            per_owner.entry(index).or_default().push((pred, tuple));
        }
        for (index, owner_batch) in per_owner {
            let now = self.nodes[index].available_at;
            self.node_ctx(index).process_batch(owner_batch, now)?;
        }
        Ok(())
    }

    /// The union of `pred` across every node, sorted and deduplicated — the
    /// complete extension of a sharded or partial relation.
    pub fn query_union(&self, pred: &str) -> Vec<Tuple> {
        let mut union: Vec<Tuple> = self
            .nodes
            .iter()
            .flat_map(|node| node.workspace.query(pred))
            .collect();
        union.sort_by(|a, b| tuple_total_cmp(a, b));
        union.dedup();
        union
    }

    /// A content digest of the union of the given relations across all
    /// nodes: SHA-1 over the sorted canonical encodings.  Placement-free by
    /// construction, so it is invariant under re-partitioning — the check
    /// [`Deployment::apply_shard_map`] enforces.
    pub fn union_digest(&self, preds: &[&str]) -> String {
        let mut hasher_input = Vec::new();
        for pred in preds {
            hasher_input.extend_from_slice(pred.as_bytes());
            for tuple in self.query_union(pred) {
                hasher_input.extend_from_slice(&serialize_tuple(&tuple));
            }
        }
        let digest = sha1(&hasher_input);
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The global digest of every sharded relation's union.
    pub fn shard_union_digest(&self) -> Result<String> {
        let map = self
            .config
            .sharding
            .as_ref()
            .ok_or_else(|| DatalogError::Eval("deployment has no shard map".into()))?;
        let preds: Vec<&str> = map.relations().keys().map(String::as_str).collect();
        Ok(self.union_digest(&preds))
    }

    /// Re-partition on membership change: replace the shard map with
    /// `new_map` (same relations, possibly different group/vnodes), moving
    /// only the base tuples whose hash slot changed owner.
    ///
    /// The movement itself is driven by the signed delta plane: the updated
    /// `shard_slot`/`shard_member` facts are asserted/retracted on every
    /// node (DRed then withdraws every exchange tuple whose routing no
    /// longer holds, and derives the new routing), moved base tuples are
    /// retracted at the old owner and re-asserted at the new one (both
    /// WAL-logged), and one [`Deployment::run`] re-converges the group.
    /// The global sharded-content digest is verified unchanged, and the
    /// per-node Merkle roots are re-read after the move.
    pub fn apply_shard_map(&mut self, new_map: ShardMap) -> Result<RepartitionReport> {
        let old_map = match &self.config.sharding {
            Some(map) if map.is_active() => map.clone(),
            _ => {
                return Err(DatalogError::Eval(
                    "apply_shard_map requires an already-sharded deployment".into(),
                ))
            }
        };
        if !new_map.is_active() {
            return Err(DatalogError::Eval(
                "apply_shard_map requires a non-empty new shard map".into(),
            ));
        }
        if new_map.relations() != old_map.relations() {
            return Err(DatalogError::Eval(
                "apply_shard_map changes membership, not the sharded relations; rebuild the \
                 deployment to change what is sharded"
                    .into(),
            ));
        }
        for member in new_map.group() {
            if !self.shared.principal_index.contains_key(member) {
                return Err(DatalogError::Eval(format!(
                    "shard group member {member} is not a deployment node"
                )));
            }
        }

        let digest_before = self.shard_union_digest()?;
        let segments_before = old_map.ring().segments().len();
        let new_ring = new_map.ring();
        let segments_after = new_ring.segments().len();

        // 1. Update the ring's Datalog mirror on every node.  DRed retracts
        //    every exchange derivation the old slot table supported; the
        //    new facts derive the new routing.  Only the diff moves.
        let old_facts = old_map.exchange_facts();
        let new_facts = new_map.exchange_facts();
        let retracts: Vec<(String, Tuple)> = old_facts
            .iter()
            .filter(|fact| !new_facts.contains(fact))
            .cloned()
            .collect();
        let asserts: Vec<(String, Tuple)> = new_facts
            .iter()
            .filter(|fact| !old_facts.contains(fact))
            .cloned()
            .collect();
        for index in 0..self.nodes.len() {
            let principal = self.nodes[index].info.principal.clone();
            if !retracts.is_empty() {
                self.retract(&principal, retracts.clone())?;
            }
            if !asserts.is_empty() {
                let now = self.nodes[index].available_at;
                self.node_ctx(index).process_batch(asserts.clone(), now)?;
            }
        }

        // 2. Move the base tuples whose owner changed — and only those.
        let mut moved_tuples = 0usize;
        let mut retained_tuples = 0usize;
        let mut moves: BTreeMap<usize, Vec<(String, Tuple)>> = BTreeMap::new();
        for index in 0..self.nodes.len() {
            let principal = self.nodes[index].info.principal.clone();
            let mut outgoing: Vec<(String, Tuple)> = Vec::new();
            for relation in new_map.relations().keys() {
                for tuple in self.nodes[index].workspace.query(relation) {
                    let owner = fact_owner(&new_map, &new_ring, relation, &tuple)?
                        .expect("relation is sharded");
                    if owner == principal {
                        retained_tuples += 1;
                    } else {
                        let &dest = self
                            .shared
                            .principal_index
                            .get(owner)
                            .expect("validated above");
                        outgoing.push((relation.clone(), tuple.clone()));
                        moves
                            .entry(dest)
                            .or_default()
                            .push((relation.clone(), tuple));
                        moved_tuples += 1;
                    }
                }
            }
            if !outgoing.is_empty() {
                self.retract(&principal, outgoing)?;
            }
        }
        for (dest, batch) in moves {
            let now = self.nodes[dest].available_at;
            self.node_ctx(dest).process_batch(batch, now)?;
        }

        // 3. Converge under the new map and verify nothing was lost,
        //    duplicated, or fabricated by the move.
        self.config.sharding = Some(new_map);
        let report = self.run()?;
        let digest_after = self.shard_union_digest()?;
        if digest_after != digest_before {
            return Err(DatalogError::Eval(format!(
                "re-partitioning changed the global sharded content: digest {digest_before} -> \
                 {digest_after}"
            )));
        }
        let edb_roots = self.edb_roots().unwrap_or_default();
        Ok(RepartitionReport {
            moved_tuples,
            retained_tuples,
            segments_before,
            segments_after,
            digest: digest_after,
            edb_roots,
            convergence: report.fixpoint_latency,
        })
    }

    /// The shard section of the deployment report, publishing the
    /// per-partition gauges as a side effect (mirroring how network stats
    /// publish their per-node views).
    pub(crate) fn shard_report(&self) -> Option<ShardReport> {
        let map = self.config.sharding.as_ref().filter(|m| m.is_active())?;
        let registry = secureblox_telemetry::registry();
        let mut per_partition_tuples = Vec::with_capacity(map.partitions());
        for member in map.group() {
            let Some(&index) = self.shared.principal_index.get(member) else {
                continue;
            };
            let tuples: usize = map
                .relations()
                .keys()
                .map(|relation| self.nodes[index].workspace.count(relation))
                .sum();
            registry
                .gauge(&format!(
                    "engine_shard_partition_tuples{{node=\"{member}\"}}"
                ))
                .set(tuples as i64);
            per_partition_tuples.push((member.clone(), tuples));
        }
        let exchange_bytes: usize = self.nodes.iter().map(|node| node.exchange_bytes).sum();
        registry
            .gauge("engine_shard_exchange_bytes")
            .set(exchange_bytes as i64);
        let max = per_partition_tuples
            .iter()
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        let total: usize = per_partition_tuples.iter().map(|(_, n)| *n).sum();
        let mean = total as f64 / per_partition_tuples.len().max(1) as f64;
        let summary = self.shard_summary.unwrap_or_default();
        Some(ShardReport {
            partitions: map.partitions(),
            per_partition_tuples,
            exchange_bytes,
            co_partitioned_literals: summary.co_partitioned,
            shuffle_literals: summary.shuffles,
            broadcast_literals: summary.broadcasts,
            skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("n{i}")).collect()
    }

    #[test]
    fn shard_hash_matches_the_pinned_values() {
        // Regression pin: the single shared hash definition behind the
        // `sha1hash` UDF, the hashjoin bucket placement, and ring routing.
        // If these change, every committed partition layout changes.
        assert_eq!(shard_hash(&Value::Int(0)), 4709311589747188149);
        assert_eq!(shard_hash(&Value::Int(1)), 3610050322085435747);
        assert_eq!(shard_hash(&Value::Int(42)), 2517355720152244704);
        assert_eq!(shard_hash(&Value::str("n0")), 7950901485012294306);
        for hash in [
            shard_hash(&Value::Int(0)),
            shard_hash(&Value::Int(1)),
            shard_hash(&Value::str("n0")),
        ] {
            assert!(hash >= 0, "partition hashes live in [0, i64::MAX]");
        }
    }

    #[test]
    fn ring_lookup_agrees_with_segments() {
        let map = ShardMap::new(members(5)).shard("r", 0).with_vnodes(8);
        let ring = map.ring();
        let segments = ring.segments();
        assert_eq!(segments.first().unwrap().lo, 0);
        assert_eq!(segments.last().unwrap().hi, i64::MAX);
        for window in segments.windows(2) {
            assert_eq!(
                window[0].hi + 1,
                window[1].lo,
                "segments must be contiguous"
            );
        }
        for probe in 0..2000i64 {
            let hash = shard_hash(&Value::Int(probe * 7919));
            let by_lookup = ring.owner_of_hash(hash);
            let by_segment = segments
                .iter()
                .find(|s| s.lo <= hash && hash <= s.hi)
                .map(|s| s.owner.as_str())
                .expect("segments cover the space");
            assert_eq!(by_lookup, by_segment);
        }
    }

    #[test]
    fn adding_a_member_moves_a_minority_of_keys() {
        let old = ShardMap::new(members(4)).shard("r", 0);
        let new = ShardMap::new(members(5)).shard("r", 0);
        let (old_ring, new_ring) = (old.ring(), new.ring());
        let total = 5000;
        let moved = (0..total)
            .filter(|i| {
                let value = Value::Int(*i * 31 + 7);
                old_ring.owner_of(&value) != new_ring.owner_of(&value)
            })
            .count();
        // Consistent hashing: ~1/5 of keys move to the new member; far less
        // than the ~4/5 a modulo scheme would reshuffle.
        assert!(moved > 0, "the new member must take some keys");
        assert!(
            moved * 2 < total as usize,
            "only a minority of keys may move ({moved}/{total})"
        );
        for i in 0..total {
            let value = Value::Int(i * 31 + 7);
            if old_ring.owner_of(&value) != new_ring.owner_of(&value) {
                assert_eq!(
                    new_ring.owner_of(&value),
                    "n4",
                    "moved keys must move to the new member only"
                );
            }
        }
    }

    #[test]
    fn exchange_facts_mirror_the_ring() {
        let map = ShardMap::new(members(3)).shard("r", 0).with_vnodes(4);
        let ring = map.ring();
        let facts = map.exchange_facts();
        let slots: Vec<&Tuple> = facts
            .iter()
            .filter(|(p, _)| p == SLOT_RELATION)
            .map(|(_, t)| t)
            .collect();
        let members_count = facts.iter().filter(|(p, _)| p == MEMBER_RELATION).count();
        assert_eq!(slots.len(), SHARD_SLOTS as usize);
        assert_eq!(members_count, 3);
        for tuple in slots {
            let slot = tuple[0].as_int().unwrap();
            let owner = ring.owner_of_hash(slot_position(slot));
            assert_eq!(tuple[1], Value::str(owner));
        }
    }

    #[test]
    fn reserved_relations_cannot_be_sharded() {
        let map = ShardMap::new(members(2)).shard("principal", 0);
        let err = analyze("p(X) -> int[32](X).", &map, &[], true).unwrap_err();
        assert!(
            err.to_string().contains("provisioned by the engine"),
            "{err}"
        );
    }
}
