//! Cryptographic and hashing user-defined functions.
//!
//! The paper's policies call `rsa_sign`, `rsa_verify`, `hmac_sign`,
//! `hmac_verify`, `sha1`, `aesencrypt` and `serialize` as user-defined
//! functions hooked into rule and constraint execution (§3.2, §5.1).  This
//! module registers those functions into a workspace.  They operate on the
//! byte values stored in the `public_key` / `private_key` / `secret`
//! relations, so changing a node's policy never requires touching the
//! runtime — only different relations and different generated rules.

use crate::runtime::codec::serialize_tuple;
use secureblox_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use secureblox_crypto::{aes128_ctr_decrypt, aes128_ctr_encrypt, hmac_sha1, hmac_sha1_verify};
use secureblox_datalog::udf::require_bound;
use secureblox_datalog::value::Value;
use secureblox_datalog::Workspace;

/// Register every SecureBlox UDF into `workspace`.
pub fn register_crypto_udfs(workspace: &mut Workspace) {
    // sha1hash(X, H): positive 63-bit hash of the canonical encoding of X,
    // used for hash partitioning (paper §7.2 uses sha1 for rehashing).  The
    // one definition shared with Rust-side routing lives in
    // `runtime::shard::shard_hash`, so DatalogLB rules and the shard ring
    // always agree on owners.
    workspace.register_udf("sha1hash", |args| {
        let value = require_bound(args, 0, "sha1hash")?;
        let hash = crate::runtime::shard::shard_hash(&value);
        Ok(vec![vec![value, Value::Int(hash)]])
    });

    // sha1slot(X, B): the fixed hash slot of X — `shard_hash(X)` folded into
    // `[0, SHARD_SLOTS)`.  The generated shard routing rules join this slot
    // id against the replicated `shard_slot(B, Owner)` table, an indexed
    // equality join whose cost is independent of the group size.
    workspace.register_udf("sha1slot", |args| {
        let value = require_bound(args, 0, "sha1slot")?;
        let slot = crate::runtime::shard::slot_of(&value);
        Ok(vec![vec![value, Value::Int(slot)]])
    });

    // serialize(V..., T): canonical byte encoding of the argument values.
    workspace.register_udf_family("serialize", |_param, args| {
        let mut values = Vec::with_capacity(args.len().saturating_sub(1));
        for (i, arg) in args.iter().enumerate().take(args.len().saturating_sub(1)) {
            values.push(
                arg.clone()
                    .ok_or_else(|| format!("serialize: argument {i} must be bound"))?,
            );
        }
        let mut row = values.clone();
        row.push(Value::bytes(serialize_tuple(&values)));
        Ok(vec![row])
    });

    // rsa_sign(K, V..., S): sign the canonical encoding of V... with the key
    // pair stored (serialized) in K.
    workspace.register_udf("rsa_sign", |args| {
        if args.len() < 2 {
            return Err("rsa_sign: expected key, values..., signature".into());
        }
        let key = require_bound(args, 0, "rsa_sign")?;
        let keypair = RsaKeyPair::from_bytes(key.as_bytes().ok_or("rsa_sign: key must be bytes")?)
            .map_err(|e| format!("rsa_sign: {e}"))?;
        let mut values = Vec::new();
        for (i, arg) in args.iter().enumerate().take(args.len() - 1).skip(1) {
            values.push(
                arg.clone()
                    .ok_or_else(|| format!("rsa_sign: argument {i} must be bound"))?,
            );
        }
        let signature = keypair.sign(&serialize_tuple(&values));
        let mut row = vec![key];
        row.extend(values);
        row.push(Value::bytes(signature.0));
        Ok(vec![row])
    });

    // rsa_verify(K, V..., S): filter — succeeds only if S is a valid
    // signature over V... under the public key K.
    workspace.register_udf("rsa_verify", |args| {
        if args.len() < 2 {
            return Err("rsa_verify: expected key, values..., signature".into());
        }
        let key = require_bound(args, 0, "rsa_verify")?;
        let public =
            RsaPublicKey::from_bytes(key.as_bytes().ok_or("rsa_verify: key must be bytes")?)
                .map_err(|e| format!("rsa_verify: {e}"))?;
        let signature = require_bound(args, args.len() - 1, "rsa_verify")?;
        let mut values = Vec::new();
        for (i, arg) in args.iter().enumerate().take(args.len() - 1).skip(1) {
            values.push(
                arg.clone()
                    .ok_or_else(|| format!("rsa_verify: argument {i} must be bound"))?,
            );
        }
        let valid = public.verify(
            &serialize_tuple(&values),
            &RsaSignature(signature.as_bytes().unwrap_or_default().to_vec()),
        );
        if valid {
            let mut row = vec![key];
            row.extend(values);
            row.push(signature);
            Ok(vec![row])
        } else {
            Ok(vec![])
        }
    });

    // hmac_sign(K, V..., S) and hmac_verify(K, V..., S).
    workspace.register_udf("hmac_sign", |args| {
        if args.len() < 2 {
            return Err("hmac_sign: expected key, values..., tag".into());
        }
        let key = require_bound(args, 0, "hmac_sign")?;
        let mut values = Vec::new();
        for (i, arg) in args.iter().enumerate().take(args.len() - 1).skip(1) {
            values.push(
                arg.clone()
                    .ok_or_else(|| format!("hmac_sign: argument {i} must be bound"))?,
            );
        }
        let tag = hmac_sha1(
            key.as_bytes().ok_or("hmac_sign: key must be bytes")?,
            &serialize_tuple(&values),
        );
        let mut row = vec![key];
        row.extend(values);
        row.push(Value::bytes(tag.to_vec()));
        Ok(vec![row])
    });
    workspace.register_udf("hmac_verify", |args| {
        if args.len() < 2 {
            return Err("hmac_verify: expected key, values..., tag".into());
        }
        let key = require_bound(args, 0, "hmac_verify")?;
        let tag = require_bound(args, args.len() - 1, "hmac_verify")?;
        let mut values = Vec::new();
        for (i, arg) in args.iter().enumerate().take(args.len() - 1).skip(1) {
            values.push(
                arg.clone()
                    .ok_or_else(|| format!("hmac_verify: argument {i} must be bound"))?,
            );
        }
        let valid = hmac_sha1_verify(
            key.as_bytes().ok_or("hmac_verify: key must be bytes")?,
            &serialize_tuple(&values),
            tag.as_bytes().unwrap_or_default(),
        );
        if valid {
            let mut row = vec![key];
            row.extend(values);
            row.push(tag);
            Ok(vec![row])
        } else {
            Ok(vec![])
        }
    });

    // aesencrypt(PT, K, CT) and aesdecrypt(CT, K, PT) over byte values.
    workspace.register_udf("aesencrypt", |args| {
        let plaintext = require_bound(args, 0, "aesencrypt")?;
        let key = require_bound(args, 1, "aesencrypt")?;
        let ciphertext = aes128_ctr_encrypt(
            key.as_bytes().ok_or("aesencrypt: key must be bytes")?,
            plaintext
                .as_bytes()
                .ok_or("aesencrypt: plaintext must be bytes")?,
        );
        Ok(vec![vec![plaintext, key, Value::bytes(ciphertext)]])
    });
    workspace.register_udf("aesdecrypt", |args| {
        let ciphertext = require_bound(args, 0, "aesdecrypt")?;
        let key = require_bound(args, 1, "aesdecrypt")?;
        let plaintext = aes128_ctr_decrypt(
            key.as_bytes().ok_or("aesdecrypt: key must be bytes")?,
            ciphertext
                .as_bytes()
                .ok_or("aesdecrypt: ciphertext must be bytes")?,
        )
        .map_err(|e| format!("aesdecrypt: {e}"))?;
        Ok(vec![vec![ciphertext, key, Value::bytes(plaintext)]])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workspace_with_udfs() -> Workspace {
        let mut ws = Workspace::new();
        register_crypto_udfs(&mut ws);
        ws
    }

    #[test]
    fn sha1hash_is_deterministic_and_positive() {
        let ws = workspace_with_udfs();
        let ws2 = workspace_with_udfs();
        let source = "bucket(X, H) <- item(X), sha1hash(X, H).\nitem(alpha). item(beta).";
        let mut a = ws;
        a.install_source(source).unwrap();
        a.fixpoint().unwrap();
        let mut b = ws2;
        b.install_source(source).unwrap();
        b.fixpoint().unwrap();
        assert_eq!(a.query("bucket"), b.query("bucket"));
        for tuple in a.query("bucket") {
            assert!(tuple[1].as_int().unwrap() >= 0);
        }
    }

    #[test]
    fn rsa_sign_and_verify_through_rules() {
        let mut rng = StdRng::seed_from_u64(11);
        let keypair = secureblox_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
        let mut ws = workspace_with_udfs();
        ws.install_source(
            "signed(M, S) <- msg(M), private_key[] = K, rsa_sign(K, M, S).\n\
             verified(M) <- signed(M, S), public_key(K), rsa_verify(K, M, S).",
        )
        .unwrap();
        ws.set_singleton("private_key", Value::bytes(keypair.to_bytes()))
            .unwrap();
        ws.assert_fact(
            "public_key",
            vec![Value::bytes(keypair.public_key().to_bytes())],
        )
        .unwrap();
        ws.assert_fact("msg", vec![Value::str("attack at dawn")])
            .unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(ws.count("signed"), 1);
        assert_eq!(ws.count("verified"), 1);
        let sig = ws.query("signed")[0][1].clone();
        assert_eq!(
            sig.as_bytes().unwrap().len(),
            keypair.public_key().modulus_bytes()
        );
    }

    #[test]
    fn hmac_verify_rejects_wrong_secret() {
        let mut ws = workspace_with_udfs();
        ws.install_source(
            "tagged(M, S) <- msg(M), secret_out(K), hmac_sign(K, M, S).\n\
             accepted(M) <- tagged(M, S), secret_in(K), hmac_verify(K, M, S).",
        )
        .unwrap();
        ws.assert_fact("secret_out", vec![Value::bytes(b"key-A".to_vec())])
            .unwrap();
        ws.assert_fact("secret_in", vec![Value::bytes(b"key-B".to_vec())])
            .unwrap();
        ws.assert_fact("msg", vec![Value::str("hello")]).unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(ws.count("tagged"), 1);
        assert_eq!(ws.count("accepted"), 0);
    }

    #[test]
    fn aes_roundtrip_through_rules() {
        let mut ws = workspace_with_udfs();
        ws.install_source(
            "ct(C) <- pt(P), key(K), aesencrypt(P, K, C).\n\
             roundtrip(P2) <- ct(C), key(K), aesdecrypt(C, K, P2).",
        )
        .unwrap();
        ws.assert_fact("key", vec![Value::bytes(vec![7u8; 16])])
            .unwrap();
        ws.assert_fact("pt", vec![Value::bytes(b"plaintext tuple batch".to_vec())])
            .unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(
            ws.query("roundtrip")[0][0],
            Value::bytes(b"plaintext tuple batch".to_vec())
        );
    }

    #[test]
    fn serialize_family_produces_bytes() {
        let mut ws = workspace_with_udfs();
        ws.install_source("wire(B) <- pair(X, Y), serialize(X, Y, B).\npair(a, 2).")
            .unwrap();
        ws.fixpoint().unwrap();
        let bytes = ws.query("wire")[0][0].clone();
        assert!(bytes.as_bytes().unwrap().len() > 4);
    }
}
