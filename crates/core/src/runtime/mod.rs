//! The SecureBlox distributed runtime: tuple serialization, the
//! authenticated update-stream envelope, cryptographic user-defined
//! functions, the simulated distributed query processor, and multi-replica
//! durability fan-out.

pub mod codec;
pub mod durable;
pub mod engine;
pub mod reactor;
pub mod replication;
pub mod shard;
pub mod stream;
pub mod udfs;

pub use codec::{deserialize_tuple, serialize_tuple, DeltaOp, UpdateDelta, UpdateEnvelope};
pub use durable::{CheckpointInfo, DurabilityError};
pub use engine::{CircuitSpec, Deployment, DeploymentConfig, DeploymentReport, NodeSpec};
pub use reactor::ReactorConfig;
pub use replication::{ReplicaState, ReplicaSyncReport};
pub use shard::{shard_hash, RepartitionReport, ShardMap, ShardReport, ShardRing, ShardSegment};
pub use stream::{LinkOutbox, StreamingConfig};
pub use udfs::register_crypto_udfs;
