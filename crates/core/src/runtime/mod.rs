//! The SecureBlox distributed runtime: tuple serialization, cryptographic
//! user-defined functions, and the simulated distributed query processor.

pub mod codec;
pub mod durable;
pub mod engine;
pub mod udfs;

pub use codec::{deserialize_tuple, serialize_tuple, SaysEnvelope};
pub use durable::{CheckpointInfo, DurabilityError};
pub use engine::{CircuitSpec, Deployment, DeploymentConfig, DeploymentReport, NodeSpec};
pub use udfs::register_crypto_udfs;
