//! The SecureBlox distributed runtime: tuple serialization, cryptographic
//! user-defined functions, and the simulated distributed query processor.

pub mod codec;
pub mod engine;
pub mod udfs;

pub use codec::{deserialize_tuple, serialize_tuple, SaysEnvelope};
pub use engine::{CircuitSpec, Deployment, DeploymentConfig, DeploymentReport, NodeSpec};
pub use udfs::register_crypto_udfs;
