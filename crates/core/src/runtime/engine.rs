//! The distributed query processor: simulated nodes, each running a
//! transactional DatalogLB workspace, exchanging authenticated (and
//! optionally encrypted) batches of `says` tuples over a discrete-event
//! network.
//!
//! Execution model (paper §5):
//!
//! * every node installs the same compiled program (queries + policies),
//! * a batch of incoming facts is processed in a local ACID transaction —
//!   insert, fixpoint, constraint check, commit or roll back,
//! * all inter-node state flow rides one **authenticated update stream**: an
//!   exported batch is an ordered sequence of signed `Assert`/`Retract`
//!   deltas ([`UpdateEnvelope`]), shipped FIFO per link.  `Assert` deltas
//!   carry newly derived `says$T` tuples (serialized, signed per the
//!   generated `sig$T` rules, optionally AES-encrypted); the receiver inserts
//!   the `says$T` and `sig$T` facts and its own constraints decide whether to
//!   accept them.  `Retract` deltas withdraw previously shipped tuples under
//!   the same detached signature; the receiver verifies it, DRed-maintains
//!   everything derived from the fact, logs the retraction to its WAL, and
//!   propagates any cascaded withdrawals onward through its own streams,
//! * anonymity-circuit traffic (`anon_says$T`) wraps the same delta envelope
//!   in onion layers and is relayed hop by hop.
//!
//! Virtual time: each node's transaction advances its own clock by the
//! *measured* wall-clock compute time, and the network adds latency per
//! message, so the latency / convergence figures reflect N nodes running in
//! parallel even though the simulation executes them in one process.

use crate::policy::{compile_secured_program, SecurityConfig};
use crate::runtime::codec::{serialize_tuple, DeltaOp, UpdateDelta, UpdateEnvelope};
use crate::runtime::reactor::ReactorConfig;
use crate::runtime::replication::ReplicaState;
use crate::runtime::shard::{self, ShardMap, ShardReport};
use crate::runtime::stream::{LinkOutbox, StreamingConfig};
use crate::runtime::udfs::register_crypto_udfs;
use secureblox_crypto::{
    aes128_ctr_decrypt, aes128_ctr_encrypt, hmac_sha1_verify, AuthScheme, EncScheme, KeyStore,
    RsaSignature,
};
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_datalog::eval::shuffle::{is_exchange_pred, ExchangeSummary};
use secureblox_datalog::value::{tuple_total_cmp, Tuple, Value};
use secureblox_datalog::{column_set, EvalConfig, EvalOptions, PlanStatsSnapshot, Workspace};
use secureblox_net::stats::TimingStats;
use secureblox_net::{
    LatencyModel, Message, MessageKind, NodeId, NodeInfo, SimNetwork, VirtualTime,
};
use secureblox_store::{derive_node_key, DurabilityConfig, FactStore};
use secureblox_telemetry::HistogramSummary;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Specification of one simulated node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The principal hosted at this node (also used as its node name).
    pub principal: String,
    /// Facts delivered to the node at virtual time zero.
    pub base_facts: Vec<(String, Tuple)>,
}

impl NodeSpec {
    /// A node with no initial facts.
    pub fn new(principal: impl Into<String>) -> Self {
        NodeSpec {
            principal: principal.into(),
            base_facts: Vec::new(),
        }
    }
}

/// An anonymity circuit to pre-establish at deployment time.
#[derive(Debug, Clone)]
pub struct CircuitSpec {
    pub initiator: String,
    pub relays: Vec<String>,
    pub endpoint: String,
}

/// Deployment-wide configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    pub security: SecurityConfig,
    pub latency: LatencyModel,
    /// Seed for key provisioning (experiments vary it per trial).
    pub seed: u64,
    /// Permit recursive negation (needed by the path-vector protocol's
    /// "do not advertise to a node already on the path" guard).
    pub allow_recursive_negation: bool,
    /// Disable static type checking for programs with intentionally partial
    /// schemas.
    pub strict_typing: bool,
    /// Singletons set identically on every node (e.g. `initiator[]`).
    pub singletons: Vec<(String, Value)>,
    /// Additional facts asserted on every node (e.g. `node(X)` universe).
    pub shared_facts: Vec<(String, Tuple)>,
    /// Anonymity circuits to establish.
    pub circuits: Vec<CircuitSpec>,
    /// Extra policy sources appended to the generated `says` policy.
    pub extra_policies: Vec<String>,
    /// When true (the default), every node's `trustworthy` relation is
    /// pre-populated with every principal.  Set to false to provision trust
    /// explicitly through [`NodeSpec::base_facts`] or
    /// [`DeploymentConfig::shared_facts`] — required to exercise the
    /// `Trustworthy` / `PerPredicate` delegation models of paper §6.1.
    pub grant_default_trust: bool,
    /// When true (the default) and the policy enables `write_access`, every
    /// principal is granted `writeAccess[T]` for every exportable predicate.
    /// Set to false to grant write access explicitly per node.
    pub grant_default_write_access: bool,
    /// When set, every node persists its dynamic base facts to an HMAC-chained
    /// WAL under `durability.dir/<principal>`, enabling
    /// [`Deployment::checkpoint`] and [`Deployment::recover`].
    pub durability: Option<DurabilityConfig>,
    /// Per-node evaluation parallelism: each node's workspace hash-partitions
    /// its fixpoint deltas across this many workers (`<= 1` means serial).
    /// The default honours `SECUREBLOX_WORKERS`.
    pub parallelism: usize,
    /// Streaming-scheduler knobs: per-link delta batching, annihilation, and
    /// credit-based backpressure.  The default honours `SECUREBLOX_STREAMING`,
    /// `SECUREBLOX_BATCH_MAX`, and `SECUREBLOX_QUEUE_HIGH_WATER`.
    pub streaming: StreamingConfig,
    /// Maximum data-plane deliveries one [`Deployment::run`] will process
    /// before declaring the protocol non-convergent.  The default honours
    /// `SECUREBLOX_MESSAGE_BUDGET` (falling back to 10 million).
    pub message_budget: usize,
    /// Event-driven reactor executor: nodes run as wall-clock-parallel worker
    /// tasks woken by message arrival instead of turns in the virtual-time
    /// loop.  The default honours `SECUREBLOX_REACTOR` and
    /// `SECUREBLOX_REACTOR_THREADS`.
    pub reactor: ReactorConfig,
    /// Horizontal EDB sharding: when set (and active), base facts of the
    /// mapped relations are routed to their consistent-hash ring owner at
    /// build/ingest time, and cross-partition rule evaluation goes through
    /// planner-generated exchange dataflows over the signed update stream
    /// (see `runtime::shard`).
    pub sharding: Option<ShardMap>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            security: SecurityConfig::default(),
            latency: LatencyModel::default(),
            seed: 1,
            allow_recursive_negation: false,
            strict_typing: true,
            singletons: Vec::new(),
            shared_facts: Vec::new(),
            circuits: Vec::new(),
            extra_policies: Vec::new(),
            grant_default_trust: true,
            grant_default_write_access: true,
            durability: env_durability(),
            parallelism: EvalOptions::default().workers,
            streaming: StreamingConfig::default(),
            message_budget: env_message_budget(),
            reactor: ReactorConfig::default(),
            sharding: None,
        }
    }
}

/// Whether a message kind spends the non-convergence budget.  Control
/// traffic (credit grants, bootstrap markers) is caused by — and bounded by —
/// data-plane deliveries, so only the latter count.
pub(crate) fn is_data_plane(kind: MessageKind) -> bool {
    matches!(
        kind,
        MessageKind::Update | MessageKind::AnonForward | MessageKind::AnonBackward
    )
}

/// Message-budget default from the environment (`SECUREBLOX_MESSAGE_BUDGET`),
/// falling back to 10 million deliveries.
fn env_message_budget() -> usize {
    std::env::var("SECUREBLOX_MESSAGE_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(10_000_000)
}

/// Durability default from the environment: when `SECUREBLOX_DURABILITY_DIR`
/// is set, every default-configured deployment persists its nodes under a
/// fresh subdirectory of it.  This lets the CI matrix run the whole
/// integration suite with durability and the worker pool enabled together
/// without code changes.  Each call yields a distinct directory (process id
/// plus a counter) because a fresh build refuses a directory with state.
fn env_durability() -> Option<DurabilityConfig> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::var_os("SECUREBLOX_DURABILITY_DIR")?;
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    Some(DurabilityConfig::new(
        PathBuf::from(base).join(format!("deploy-{}-{unique}", std::process::id())),
    ))
}

/// Summary of one deployment run — the quantities the paper's figures plot.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Figure label, e.g. `RSA-AES`.
    pub label: String,
    pub num_nodes: usize,
    /// Virtual time until no node had any further work (Figures 4/5).
    pub fixpoint_latency: Duration,
    /// Average committed-transaction duration (Figure 7).
    pub average_transaction: Duration,
    /// Average per-node communication overhead in KB (Figures 6/12).
    pub per_node_kb: f64,
    pub total_transactions: usize,
    /// Batches refused by a security constraint (unknown principal, invalid
    /// signature, missing write access, forbidden delegation, undecryptable
    /// payload).
    pub rejected_batches: usize,
    /// Batches rolled back by a functional-dependency conflict — duplicate
    /// data rather than a security decision.  The path-vector protocol
    /// produces these when the same path entity is advertised to a node along
    /// two different branches (see `apps::pathvector`).
    pub conflicting_batches: usize,
    /// Retraction deltas verified and applied across all nodes (distributed
    /// retraction through the update stream).
    pub retractions_applied: usize,
    /// Per-node convergence times (Figures 8/9).
    pub convergence_times: Vec<Duration>,
    /// Per-node sent bytes.
    pub per_node_bytes: Vec<usize>,
    pub total_messages: usize,
    /// Planner / index counters summed over every node's workspace (plan
    /// cache hits, index probes, full scans, …) for the bench harness.
    pub plan: PlanStatsSnapshot,
    /// The per-node worker-pool size the deployment ran with.
    pub workers: usize,
    /// Fraction of the worker pool kept busy across sharded evaluations:
    /// `shards_executed / (parallel_batches × workers)`.  `0.0` when every
    /// batch stayed on the serial path.
    pub worker_utilization: f64,
    /// Median committed-transaction (apply) latency across all nodes — the
    /// p50 figure of the streaming-throughput benchmark.
    pub apply_latency_p50: Duration,
    /// 99th-percentile committed-transaction (apply) latency.
    pub apply_latency_p99: Duration,
    /// Named latency-histogram summaries (p50/p90/p99/max, nanoseconds) from
    /// the process-wide telemetry registry at report time: fixpoint latency
    /// (`datalog_fixpoint_ns`), WAL appends (`store_wal_append_ns`),
    /// update-stream applies (`engine_update_apply_ns`), and every other
    /// histogram the run touched.  Registry-wide and monotone across runs in
    /// one process, unlike the per-run fields above.
    pub telemetry: Vec<HistogramSummary>,
    /// Shard-plane view — partition population, exchange traffic, planner
    /// classification, skew — when the deployment runs with an active
    /// [`DeploymentConfig::sharding`] map.
    pub shard: Option<ShardReport>,
}

impl DeploymentReport {
    /// Cumulative fraction of nodes converged at `samples` evenly spaced
    /// points in time (the series of Figures 8 and 9).
    pub fn convergence_cdf(&self, samples: usize) -> Vec<(Duration, f64)> {
        let end = self
            .convergence_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
            .max(Duration::from_nanos(1));
        let n = self.convergence_times.len().max(1);
        (0..=samples)
            .map(|i| {
                let t = end.mul_f64(i as f64 / samples.max(1) as f64);
                let converged = self.convergence_times.iter().filter(|&&c| c <= t).count();
                (t, converged as f64 / n as f64)
            })
            .collect()
    }
}

/// A pre-established anonymity circuit.
#[derive(Debug, Clone)]
pub(crate) struct Circuit {
    id: u64,
    initiator: usize,
    /// Relay node indices in forward order.
    relays: Vec<usize>,
    endpoint: usize,
    /// Per-hop symmetric keys: one per relay, then the endpoint's key.
    keys: Vec<Vec<u8>>,
}

/// State of one simulated node.
pub(crate) struct NodeState {
    pub(crate) info: NodeInfo,
    pub(crate) workspace: Workspace,
    /// Outgoing `says`/`anon` tuples already exported, mapped to the detached
    /// signature they shipped with.  Membership deduplicates asserts; a tuple
    /// that later disappears from the workspace is withdrawn through the same
    /// channel as a `Retract` delta carrying the recorded signature, and its
    /// entry is removed so a re-derivation re-asserts it.
    pub(crate) sent: HashMap<(String, Tuple), Vec<u8>>,
    pub(crate) available_at: VirtualTime,
    pub(crate) pending_bootstrap: Vec<(String, Tuple)>,
    /// The node's durable fact store, when durability is configured.
    pub(crate) store: Option<FactStore>,
    /// Set after a local or delivered retraction: the next flush scans `sent`
    /// for withdrawn exports.  Insert-only transactions never remove `says`
    /// tuples, so the scan is skipped on the common path.
    pub(crate) needs_retraction_scan: bool,
    /// Highest update-stream sequence number seen per sending node, used to
    /// drop stale duplicates (at-most-once application per delta).
    pub(crate) last_update_seq_in: HashMap<u32, u64>,
    /// Per-destination update-stream sequence counters (sender side).  Owned
    /// by the sending node so reactor tasks never share counter state.
    pub(crate) stream_seq: HashMap<usize, u64>,
    /// Bytes of exchange-relation deltas (`shard_xchg_*` / `shard_bcast_*`)
    /// this node shipped on the update stream — the wire cost of the shard
    /// plane, separated from ordinary `says` traffic.
    pub(crate) exchange_bytes: usize,
    /// Streaming mode: this node's per-destination sender outboxes
    /// (coalescing + credit).  A `BTreeMap` so the quiescence force-flush
    /// walks links in a deterministic order (the reference executor's
    /// bit-for-bit reproducibility depends on it).  Sender-owned: a credit
    /// grant is *addressed to* the data sender, so delivering it only ever
    /// touches the receiving node's own state.
    pub(crate) outboxes: BTreeMap<usize, LinkOutbox>,
}

/// Immutable cross-node state shared by every node task: the principal
/// universe, provisioned key material, and pre-established circuits.  Nothing
/// here is written after [`Deployment::build`], so reactor workers share it
/// by plain reference.
pub(crate) struct EngineShared {
    /// Principal name per node index — lets delivery paths name a *peer*
    /// without touching that peer's (possibly locked) node state.
    pub(crate) principals: Vec<String>,
    pub(crate) principal_index: HashMap<String, usize>,
    pub(crate) keystore: KeyStore,
    pub(crate) circuits: Vec<Circuit>,
}

/// A complete simulated SecureBlox deployment.
pub struct Deployment {
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) network: SimNetwork,
    pub(crate) timing: TimingStats,
    pub(crate) config: DeploymentConfig,
    pub(crate) shared: EngineShared,
    exportable: Vec<String>,
    /// Registered read replicas with per-node WAL cursors (see
    /// `runtime::replication`).
    pub(crate) replicas: Vec<ReplicaState>,
    /// Exchange-planner classification counts from the post-compile rewrite,
    /// surfaced through [`DeploymentReport::shard`].
    pub(crate) shard_summary: Option<ExchangeSummary>,
}

/// Where a node context's outbound messages go.  The reference executor
/// passes the [`SimNetwork`] itself; the reactor substitutes a per-task sink
/// that computes delivery times locally, records into a per-task statistics
/// shard, and enqueues into the concurrent [`secureblox_net::LinkLanes`].
pub(crate) trait NetSink {
    /// Latency-modelled send; returns the delivery time.
    fn send(&mut self, message: Message, now: VirtualTime) -> VirtualTime;
    /// Send on the link's FIFO stream: delivery never precedes the previous
    /// `send_fifo` message on the same (from, to) link.
    fn send_fifo(&mut self, message: Message, now: VirtualTime) -> VirtualTime;
}

impl NetSink for SimNetwork {
    fn send(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        SimNetwork::send(self, message, now)
    }

    fn send_fifo(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        SimNetwork::send_fifo(self, message, now)
    }
}

/// One node's engine context: exclusive access to that node's state plus the
/// shared immutable deployment state, an outbound [`NetSink`], and a timing
/// recorder.  Every per-node operation — transactions, export flushes,
/// delivery handlers — lives here, so the virtual-time reference loop and the
/// reactor's worker tasks drive *identical* logic and differ only in how they
/// schedule nodes and route messages.
pub(crate) struct NodeCtx<'a> {
    pub(crate) index: usize,
    pub(crate) node: &'a mut NodeState,
    pub(crate) shared: &'a EngineShared,
    pub(crate) config: &'a DeploymentConfig,
    pub(crate) net: &'a mut dyn NetSink,
    pub(crate) timing: &'a mut TimingStats,
}

impl Deployment {
    /// Build a deployment: provision keys, generate and compile the policies
    /// together with `app_source`, and install the result on every node.
    pub fn build(app_source: &str, specs: &[NodeSpec], config: DeploymentConfig) -> Result<Self> {
        // Sharding pre-pass: validate the map against the app, generate the
        // exchange declarations and routing rules (compiled with the app so
        // the `says` policy covers them), and route every sharded base fact
        // — spec-placed or shared — to its ring owner.  Everything here is a
        // deterministic function of (app_source, specs, config), which
        // durable recovery's rebuild-then-replay depends on.
        let mut config = config;
        let mut effective_source = app_source.to_string();
        let mut routed_specs: Option<Vec<NodeSpec>> = None;
        let shard_artifacts = match config.sharding.clone().filter(|m| m.is_active()) {
            Some(map) => {
                let mut initial: Vec<(String, Tuple)> = specs
                    .iter()
                    .flat_map(|spec| spec.base_facts.iter().cloned())
                    .collect();
                initial.extend(config.shared_facts.iter().cloned());
                let artifacts = shard::analyze(app_source, &map, &initial, config.strict_typing)?;
                effective_source.push_str(&artifacts.generated_source);
                let mut routed = shard::route_specs(specs, &map)?;
                let ring = map.ring();
                let spec_index: HashMap<&str, usize> = specs
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| (spec.principal.as_str(), i))
                    .collect();
                let mut replicated = Vec::new();
                for (pred, tuple) in config.shared_facts.drain(..) {
                    match shard::fact_owner(&map, &ring, &pred, &tuple)? {
                        Some(owner) => {
                            let &dest = spec_index.get(owner).ok_or_else(|| {
                                DatalogError::Eval(format!(
                                    "shard owner {owner} is not a deployment node"
                                ))
                            })?;
                            routed[dest].base_facts.push((pred, tuple));
                        }
                        None => replicated.push((pred, tuple)),
                    }
                }
                // Every node carries the ring's Datalog mirror.
                replicated.extend(map.exchange_facts());
                config.shared_facts = replicated;
                routed_specs = Some(routed);
                Some(artifacts)
            }
            None => None,
        };
        let specs: &[NodeSpec] = routed_specs.as_deref().unwrap_or(specs);
        let app_source: &str = &effective_source;

        let principals: Vec<String> = specs.iter().map(|s| s.principal.clone()).collect();
        let needs_secrets = config.security.needs_secrets() || !config.circuits.is_empty();
        let keystore = if config.security.needs_rsa() {
            KeyStore::provision(&principals, config.security.rsa_bits, 4, config.seed)
        } else if needs_secrets {
            KeyStore::provision_secrets_only(&principals, config.seed)
        } else {
            Ok(KeyStore::empty())
        }
        .map_err(|e| DatalogError::Eval(format!("key provisioning failed: {e}")))?;

        let mut compiled =
            compile_secured_program(app_source, &config.security, &config.extra_policies)?;
        // Post-compile: re-plan over the compiled rules (the same pure
        // classification as the pre-pass) and swap each shuffled/broadcast
        // sharded body atom for its exchanged copy.
        let shard_summary = match &shard_artifacts {
            Some(artifacts) => {
                Some(shard::rewrite_program(&mut compiled.program, artifacts)?.summary)
            }
            None => None,
        };
        let exportable: Vec<String> = compiled
            .mappings
            .iter()
            .filter(|((generic, _), _)| generic == "says")
            .map(|((_, param), _)| param.clone())
            .collect();

        let principal_index: HashMap<String, usize> = principals
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();

        let mut nodes = Vec::with_capacity(specs.len());
        for (index, spec) in specs.iter().enumerate() {
            let mut workspace = Workspace::with_config(EvalConfig {
                exec: EvalOptions {
                    workers: config.parallelism.max(1),
                    ..EvalOptions::default()
                },
                ..EvalConfig::default()
            });
            workspace.set_strict_typing(config.strict_typing);
            workspace.set_allow_recursive_negation(config.allow_recursive_negation);
            workspace.set_entity_namespace(index as u64 + 1);
            register_crypto_udfs(&mut workspace);
            workspace.install_program(&compiled.program)?;
            workspace.set_singleton("self", Value::str(&spec.principal))?;
            for (pred, value) in &config.singletons {
                workspace.set_singleton(pred, value.clone())?;
            }
            // Every node knows the universe of principals / nodes and the
            // principal → node mapping (1:1 in the simulation).
            for principal in &principals {
                workspace.assert_fact("principal", vec![Value::str(principal)])?;
                workspace.assert_fact("node", vec![Value::str(principal)])?;
                workspace.assert_fact(
                    "principal_node",
                    vec![Value::str(principal), Value::str(principal)],
                )?;
                if config.grant_default_trust {
                    workspace.assert_fact("trustworthy", vec![Value::str(principal)])?;
                }
            }
            for (pred, tuple) in &config.shared_facts {
                workspace.assert_fact(pred, tuple.clone())?;
            }
            // Key material relations referenced by the generated policies.
            if config.security.needs_rsa() {
                let own = keystore
                    .keypair(&spec.principal)
                    .map_err(|e| DatalogError::Eval(e.to_string()))?;
                workspace.set_singleton("private_key", Value::bytes(own.to_bytes()))?;
                for principal in &principals {
                    let public = keystore
                        .public_key(principal)
                        .map_err(|e| DatalogError::Eval(e.to_string()))?;
                    workspace.assert_fact(
                        "public_key",
                        vec![Value::str(principal), Value::bytes(public.to_bytes())],
                    )?;
                }
            }
            if needs_secrets {
                for principal in &principals {
                    let secret = if principal == &spec.principal {
                        // A principal's "secret with itself" only matters for
                        // locally-routed says tuples; derive it from the seed.
                        secureblox_crypto::hmac_sha1(
                            spec.principal.as_bytes(),
                            &config.seed.to_be_bytes(),
                        )
                        .to_vec()
                    } else {
                        keystore
                            .shared_secret(&spec.principal, principal)
                            .map_err(|e| DatalogError::Eval(e.to_string()))?
                            .to_vec()
                    };
                    workspace
                        .assert_fact("secret", vec![Value::str(principal), Value::bytes(secret)])?;
                }
            }
            if config.security.write_access && config.grant_default_write_access {
                for exported in &exportable {
                    for principal in &principals {
                        workspace.assert_fact(
                            &format!("writeAccess${exported}"),
                            vec![Value::str(principal)],
                        )?;
                    }
                }
            }
            nodes.push(NodeState {
                info: NodeInfo::new(index as u32, spec.principal.clone()),
                workspace,
                sent: HashMap::new(),
                available_at: 0,
                pending_bootstrap: spec.base_facts.clone(),
                store: None,
                needs_retraction_scan: false,
                last_update_seq_in: HashMap::new(),
                stream_seq: HashMap::new(),
                exchange_bytes: 0,
                outboxes: BTreeMap::new(),
            });
        }

        // Pre-establish anonymity circuits.
        let mut circuits = Vec::new();
        for (id, spec) in config.circuits.iter().enumerate() {
            let lookup = |name: &str| -> Result<usize> {
                principal_index
                    .get(name)
                    .copied()
                    .ok_or_else(|| DatalogError::Eval(format!("unknown circuit principal {name}")))
            };
            let initiator = lookup(&spec.initiator)?;
            let endpoint = lookup(&spec.endpoint)?;
            let relays: Vec<usize> = spec
                .relays
                .iter()
                .map(|r| lookup(r))
                .collect::<Result<_>>()?;
            let mut keys = Vec::with_capacity(relays.len() + 1);
            for hop in spec.relays.iter().chain(std::iter::once(&spec.endpoint)) {
                keys.push(
                    keystore
                        .circuit_key(&spec.initiator, hop, id as u64)
                        .map_err(|e| DatalogError::Eval(e.to_string()))?,
                );
            }
            circuits.push(Circuit {
                id: id as u64,
                initiator,
                relays,
                endpoint,
                keys,
            });
        }

        let network = SimNetwork::new(specs.len(), config.latency.clone());
        let timing = TimingStats::new(specs.len());
        let mut deployment = Deployment {
            nodes,
            network,
            timing,
            config,
            shared: EngineShared {
                principals,
                principal_index,
                keystore,
                circuits,
            },
            exportable,
            replicas: Vec::new(),
            shard_summary,
        };
        if let Some(durability) = deployment.config.durability.clone() {
            for node in &mut deployment.nodes {
                let key = derive_node_key(deployment.config.seed, &node.info.principal);
                let mut store = FactStore::open(durability.node_dir(&node.info.principal), &key)
                    .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
                if store.wal_seq() != 0 || store.snapshot().is_some() {
                    return Err(DatalogError::Eval(format!(
                        "durable store for {} already holds state; use Deployment::recover",
                        node.info.principal
                    )));
                }
                store.set_flush_each_batch(durability.flush_each_batch);
                node.store = Some(store);
            }
        }
        Ok(deployment)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The predicates covered by the `says` policy.
    pub fn exportable_predicates(&self) -> &[String] {
        &self.exportable
    }

    /// Query a predicate on the node hosting `principal`.
    pub fn query(&self, principal: &str, pred: &str) -> Vec<Tuple> {
        self.shared
            .principal_index
            .get(principal)
            .map(|&i| self.nodes[i].workspace.query(pred))
            .unwrap_or_default()
    }

    /// Completion times (virtual) of committed transactions at `principal`'s
    /// node — the series behind the hash-join CDFs.
    pub fn completion_times(&self, principal: &str) -> Vec<Duration> {
        self.shared
            .principal_index
            .get(principal)
            .map(|&i| {
                self.timing
                    .completions(NodeId(i as u32))
                    .iter()
                    .map(|&t| Duration::from_nanos(t))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Retract base facts at `principal`'s node: incremental deletion (DRed)
    /// in the workspace, logged to the node's durable store when durability
    /// is enabled so recovery replays the retraction in order.
    ///
    /// Retraction is distributed: any previously exported `says$T` /
    /// `anon_says$T` tuple that the deletion un-derives is withdrawn through
    /// the same policy-mangled channel as a signed `Retract` delta, so
    /// running the deployment afterwards (`run`) converges every remote
    /// fixpoint — and every remote store Merkle root — to the state it would
    /// have had if the facts had never been asserted.
    pub fn retract(&mut self, principal: &str, batch: Vec<(String, Tuple)>) -> Result<()> {
        let &index = self
            .shared
            .principal_index
            .get(principal)
            .ok_or_else(|| DatalogError::Eval(format!("unknown principal {principal}")))?;
        let started = Instant::now();
        self.nodes[index].workspace.retract(batch.clone())?;
        let finish = self.nodes[index].available_at + started.elapsed().as_nanos() as u64;
        self.nodes[index].available_at = finish;
        if let Some(store) = &mut self.nodes[index].store {
            store
                .log_retracts(batch.iter().map(|(p, t)| (p.as_str(), t)), finish)
                .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
        }
        self.timing.record_retraction(NodeId(index as u32), finish);
        self.nodes[index].needs_retraction_scan = true;
        self.node_ctx(index).flush_updates(finish)
    }

    /// Borrow one node's engine context against the deployment's shared state
    /// and network — the reference executor's way of driving [`NodeCtx`]
    /// operations (the reactor builds its contexts against per-task sinks).
    pub(crate) fn node_ctx(&mut self, index: usize) -> NodeCtx<'_> {
        NodeCtx {
            index,
            node: &mut self.nodes[index],
            shared: &self.shared,
            config: &self.config,
            net: &mut self.network,
            timing: &mut self.timing,
        }
    }

    /// Inject a raw update-stream payload into the network as if node `from`
    /// had sent it to node `to` — an adversarial testing hook for forged
    /// envelopes and replayed streams.  The payload is delivered (and
    /// scrutinized) by the normal [`MessageKind::Update`] path on the next
    /// [`Deployment::run`].
    ///
    /// **Intentionally bypasses the per-link FIFO floor**: the plain `send`
    /// at virtual time 0 lets the injected payload overtake every legitimate
    /// message queued on the same link — the reordering/replay position an
    /// on-path adversary gets on a real network.  The receiver's defenses
    /// (sequence watermark, signature constraints) must hold against it; see
    /// the `stale_seq_replay_is_rejected_even_out_of_order` regression test.
    pub fn inject_message(&mut self, from: usize, to: usize, payload: Vec<u8>) {
        self.network.send(
            Message::new(
                NodeId(from as u32),
                NodeId(to as u32),
                MessageKind::Update,
                payload,
            ),
            0,
        );
    }

    /// Run to the distributed fixpoint: no batches pending and no messages in
    /// flight.  Dispatches on [`DeploymentConfig::reactor`]: the event-driven
    /// executor (`runtime::reactor`) runs nodes wall-clock-parallel; the
    /// virtual-time reference loop below stays the deterministic baseline.
    pub fn run(&mut self) -> Result<DeploymentReport> {
        if self.config.reactor.enabled {
            self.run_reactor()
        } else {
            self.run_virtual()
        }
    }

    /// The deterministic reference executor: one global loop delivering
    /// messages in virtual-time order.
    fn run_virtual(&mut self) -> Result<DeploymentReport> {
        // Bootstrap batches at virtual time zero.
        for index in 0..self.nodes.len() {
            let batch = std::mem::take(&mut self.nodes[index].pending_bootstrap);
            self.node_ctx(index).process_batch(batch, 0)?;
        }
        // Message loop.  When the network goes quiet the streaming
        // scheduler may still hold sub-batch residues in its outboxes
        // (Nagle hold, see `drain_outbox`); force-flushing them wakes the
        // loop back up until delivery *and* outboxes are both drained.
        let mut guard = 0usize;
        let message_budget = self.config.message_budget;
        loop {
            let Some((arrival, message)) = self.network.next_delivery() else {
                if self.config.streaming.enabled && self.flush_pending_outboxes()? {
                    continue;
                }
                break;
            };
            // Only data-plane traffic spends budget.  Control messages —
            // credit grants above all — are *caused* by data deliveries
            // (bounded by them one-to-one), and counting them once made
            // backpressure-heavy streaming runs trip the non-convergence
            // error at half the configured budget.
            if is_data_plane(message.kind) {
                guard += 1;
                if guard > message_budget {
                    return Err(self.budget_exceeded_error());
                }
            }
            self.node_ctx(message.to.index())
                .deliver(message, arrival)?;
        }
        Ok(self.report())
    }

    /// The non-convergence diagnostic for an exhausted message budget, naming
    /// the busiest links.  Shared by both executors.
    pub(crate) fn budget_exceeded_error(&self) -> DatalogError {
        let message_budget = self.config.message_budget;
        let busiest: Vec<String> = self
            .network
            .stats()
            .busiest_links(3)
            .into_iter()
            .map(|(from, to, traffic)| {
                format!(
                    "{}->{} ({} msgs, {} bytes)",
                    self.nodes[from.index()].info.principal,
                    self.nodes[to.index()].info.principal,
                    traffic.messages,
                    traffic.bytes
                )
            })
            .collect();
        DatalogError::Eval(format!(
            "distributed execution exceeded its message budget of {message_budget} \
             (SECUREBLOX_MESSAGE_BUDGET / DeploymentConfig::message_budget); the \
             protocol is not converging; busiest links: {}",
            busiest.join(", ")
        ))
    }

    /// Summarize the run.
    pub fn report(&self) -> DeploymentReport {
        let stats = self.network.stats();
        let plan = self.plan_stats();
        let workers = self.config.parallelism.max(1);
        // Publish the summed planner counters and per-node traffic to the
        // global registry as gauge views, then snapshot every histogram the
        // run touched into the report's telemetry section.
        plan.publish_to_registry();
        stats.publish_to_registry();
        DeploymentReport {
            label: self.config.security.label(),
            num_nodes: self.nodes.len(),
            fixpoint_latency: Duration::from_nanos(self.timing.fixpoint_time()),
            average_transaction: self.timing.average_transaction_duration(),
            per_node_kb: stats.average_per_node_kb(),
            total_transactions: self.timing.total_transactions(),
            rejected_batches: self.timing.total_rejections(),
            conflicting_batches: self.timing.total_conflicts(),
            retractions_applied: self.timing.total_retractions(),
            convergence_times: self
                .timing
                .convergence_times()
                .iter()
                .map(|&t| Duration::from_nanos(t))
                .collect(),
            per_node_bytes: stats.nodes().iter().map(|n| n.bytes_sent).collect(),
            total_messages: stats.nodes().iter().map(|n| n.messages_sent).sum(),
            plan,
            workers,
            worker_utilization: plan.worker_utilization(workers),
            apply_latency_p50: self.timing.transaction_duration_percentile(0.5),
            apply_latency_p99: self.timing.transaction_duration_percentile(0.99),
            shard: self.shard_report(),
            telemetry: secureblox_telemetry::histogram_summaries(),
        }
    }

    /// Planner / index counters summed over every node's workspace.  Plan
    /// caches live in the workspaces, so they persist across deployment
    /// ticks: steady-state ticks should show cache hits, not compilations.
    pub fn plan_stats(&self) -> PlanStatsSnapshot {
        self.nodes
            .iter()
            .map(|node| node.workspace.plan_stats())
            .fold(PlanStatsSnapshot::default(), |acc, s| acc + s)
    }

    /// Force-flush every outbox still holding deltas (see
    /// [`NodeCtx::drain_outbox`]'s Nagle hold).  Called by the reference
    /// loop when the network goes quiet; returns whether anything shipped
    /// (so the message loop resumes).  Credit is returned unconditionally
    /// per drained delta, so by quiescence every window has refilled — an
    /// unshippable residue here is a protocol bug, not a schedule, and
    /// fails loudly rather than silently dropping deltas.
    fn flush_pending_outboxes(&mut self) -> Result<bool> {
        let mut shipped = false;
        for index in 0..self.nodes.len() {
            let pending: Vec<usize> = self.nodes[index]
                .outboxes
                .iter()
                .filter(|(_, outbox)| outbox.live() > 0)
                .map(|(&dest, _)| dest)
                .collect();
            if pending.is_empty() {
                continue;
            }
            let now = self.nodes[index].available_at;
            let mut ctx = self.node_ctx(index);
            for dest in pending {
                let before = ctx.node.outboxes[&dest].live();
                ctx.drain_outbox(dest, now, true)?;
                let after = ctx.node.outboxes.get(&dest).map_or(0, |o| o.live());
                shipped |= after < before;
            }
        }
        if !shipped
            && self
                .nodes
                .iter()
                .any(|node| node.outboxes.values().any(|o| o.live() > 0))
        {
            return Err(DatalogError::Eval(
                "streaming outboxes wedged at quiescence: held deltas with no credit".into(),
            ));
        }
        Ok(shipped)
    }
}

impl NodeCtx<'_> {
    // ------------------------------------------------------------------
    // Batch processing and export
    // ------------------------------------------------------------------

    /// Process one incoming batch as a local ACID transaction.  Returns
    /// whether the batch *committed* — callers use this as channel-level
    /// evidence that the peer's envelope was accepted by policy.
    pub(crate) fn process_batch(
        &mut self,
        batch: Vec<(String, Tuple)>,
        arrival: VirtualTime,
    ) -> Result<bool> {
        let committed = self.apply_transaction(batch, arrival, false)?;
        if committed {
            let finish = self.node.available_at;
            self.flush_updates(finish)?;
        }
        Ok(committed)
    }

    /// The transaction step shared by [`Deployment::process_batch`] and the
    /// streaming drain: apply `batch` as one ACID transaction, account
    /// virtual time, WAL-log on commit, and record the verdict.  Does NOT
    /// flush update streams — the caller decides when (per transaction on
    /// the per-envelope path, once per drained envelope in streaming mode).
    ///
    /// `incremental` selects [`Workspace::transaction_incremental`], the
    /// seeded snapshot-free path with identical verdicts; it requires a
    /// converged workspace, which every streaming drain has (the bootstrap
    /// transaction at time zero converges each node, and every later
    /// transaction or DRed retraction leaves a fixpoint).
    fn apply_transaction(
        &mut self,
        batch: Vec<(String, Tuple)>,
        arrival: VirtualTime,
        incremental: bool,
    ) -> Result<bool> {
        let start_virtual = arrival.max(self.node.available_at);
        let started = Instant::now();
        let log_batch = match &self.node.store {
            Some(_) if !batch.is_empty() => Some(batch.clone()),
            _ => None,
        };
        let outcome = if incremental {
            self.node.workspace.transaction_incremental(batch)
        } else {
            self.node.workspace.transaction(batch)
        };
        let elapsed = started.elapsed();
        secureblox_telemetry::histogram!("engine_txn_apply_ns").record_duration(elapsed);
        let finish = start_virtual + elapsed.as_nanos() as u64;
        self.node.available_at = finish;
        match outcome {
            Ok(_) => {
                // Log only *committed* batches: rolled-back facts are not
                // part of the EDB and must not resurface at recovery.
                if let (Some(store), Some(batch)) = (&mut self.node.store, log_batch) {
                    store
                        .log_inserts(batch.iter().map(|(p, t)| (p.as_str(), t)), finish)
                        .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
                }
                self.timing
                    .record_transaction(NodeId(self.index as u32), elapsed, finish);
                Ok(true)
            }
            Err(DatalogError::ConstraintViolation(_)) => {
                // The paper's semantics: the whole batch (including the input
                // tuples) rolls back; the sender is not notified.
                self.timing
                    .record_rejection(NodeId(self.index as u32), finish);
                Ok(false)
            }
            Err(DatalogError::FunctionalDependency { .. }) => {
                // Same rollback semantics, but counted separately: this is a
                // data-level duplicate (e.g. a second composition for an
                // already-known path entity), not a policy refusing the batch.
                self.timing
                    .record_conflict(NodeId(self.index as u32), finish);
                Ok(false)
            }
            Err(other) => Err(other),
        }
    }

    /// Flush this node's update streams: withdraw previously exported
    /// tuples the workspace no longer derives (as signed `Retract` deltas),
    /// export newly derived `says$T` / anonymity tuples (as `Assert` deltas),
    /// and ship one ordered [`UpdateEnvelope`] per destination over a FIFO
    /// link.
    pub(crate) fn flush_updates(&mut self, now: VirtualTime) -> Result<()> {
        let self_principal = self.node.info.principal.clone();
        let started = Instant::now();
        // Ordered deltas per destination node: retractions first (they refer
        // to the pre-flush state), then asserts, each in deterministic order.
        let mut per_dest: BTreeMap<usize, Vec<UpdateDelta>> = BTreeMap::new();
        let mut anon_outgoing: Vec<(usize, Message)> = Vec::new();
        // Export-cursor mutations to WAL-log after the scans: marks for newly
        // shipped tuples, clears for flushed withdrawals.
        let mut export_marks: Vec<(String, Tuple, Vec<u8>)> = Vec::new();
        let mut export_clears: Vec<(String, Tuple)> = Vec::new();

        // 1. Withdrawals.  Insert-only transactions never remove `says`
        //    tuples, so the scan over the export history only runs after a
        //    retraction touched this node.
        if self.node.needs_retraction_scan {
            self.node.needs_retraction_scan = false;
            let node = &self.node;
            let mut withdrawn: Vec<(String, Tuple)> = node
                .sent
                .keys()
                .filter(|(pred, tuple)| !node.workspace.contains_fact(pred, tuple))
                .cloned()
                .collect();
            withdrawn.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| tuple_total_cmp(&a.1, &b.1)));
            for key in withdrawn {
                let signature = self.node.sent.remove(&key).unwrap_or_default();
                export_clears.push(key.clone());
                let (pred, tuple) = key;
                if let Some(param) = pred.strip_prefix("says$") {
                    let Some(to) = tuple.get(1).and_then(|v| v.as_str()) else {
                        continue;
                    };
                    let Some(&dest) = self.shared.principal_index.get(to) else {
                        continue;
                    };
                    per_dest.entry(dest).or_default().push(UpdateDelta {
                        op: DeltaOp::Retract,
                        pred: param.to_string(),
                        tuple,
                        signature,
                    });
                } else if let Some(param) = pred.strip_prefix("anon_says$") {
                    let Some(to) = tuple.get(1).and_then(|v| v.as_str()).map(String::from) else {
                        continue;
                    };
                    let message = self.onion_wrap_forward(param, &to, &tuple, DeltaOp::Retract)?;
                    anon_outgoing.push(message);
                } else if let Some(param) = pred.strip_prefix("anon_says_id_out$") {
                    if let Some(message) =
                        self.onion_wrap_backward(param, &tuple, DeltaOp::Retract)?
                    {
                        anon_outgoing.push(message);
                    }
                }
            }
        }

        // 2. Assertions.
        let predicate_names = self.node.workspace.predicate_names();
        for pred in &predicate_names {
            if let Some(param) = pred.strip_prefix("says$") {
                let tuples = self.node.workspace.query(pred);
                for tuple in tuples {
                    if tuple.len() < 2 {
                        continue;
                    }
                    let from = tuple[0].as_str().unwrap_or_default().to_string();
                    let to = tuple[1].as_str().unwrap_or_default().to_string();
                    if from != self_principal || to == self_principal {
                        continue;
                    }
                    let key = (pred.clone(), tuple.clone());
                    if self.node.sent.contains_key(&key) {
                        continue;
                    }
                    let signature = self.lookup_signature(param, &tuple);
                    export_marks.push((key.0.clone(), key.1.clone(), signature.clone()));
                    self.node.sent.insert(key, signature.clone());
                    let Some(&dest) = self.shared.principal_index.get(&to) else {
                        continue;
                    };
                    per_dest.entry(dest).or_default().push(UpdateDelta {
                        op: DeltaOp::Assert,
                        pred: param.to_string(),
                        tuple,
                        signature,
                    });
                }
            } else if let Some(param) = pred.strip_prefix("anon_says$") {
                let tuples = self.node.workspace.query(pred);
                for tuple in tuples {
                    if tuple.len() < 2 {
                        continue;
                    }
                    let from = tuple[0].as_str().unwrap_or_default().to_string();
                    let to = tuple[1].as_str().unwrap_or_default().to_string();
                    if from != self_principal {
                        continue;
                    }
                    let key = (pred.clone(), tuple.clone());
                    if self.node.sent.contains_key(&key) {
                        continue;
                    }
                    export_marks.push((key.0.clone(), key.1.clone(), Vec::new()));
                    self.node.sent.insert(key, Vec::new());
                    let message = self.onion_wrap_forward(param, &to, &tuple, DeltaOp::Assert)?;
                    anon_outgoing.push(message);
                }
            } else if let Some(param) = pred.strip_prefix("anon_says_id_out$") {
                let tuples = self.node.workspace.query(pred);
                for tuple in tuples {
                    if tuple.is_empty() {
                        continue;
                    }
                    let key = (pred.clone(), tuple.clone());
                    if self.node.sent.contains_key(&key) {
                        continue;
                    }
                    export_marks.push((key.0.clone(), key.1.clone(), Vec::new()));
                    self.node.sent.insert(key, Vec::new());
                    if let Some(message) =
                        self.onion_wrap_backward(param, &tuple, DeltaOp::Assert)?
                    {
                        anon_outgoing.push(message);
                    }
                }
            }
        }

        // Persist the export-cursor mutations before anything ships: a mark
        // must hit the WAL no later than its message leaves, or a crash in
        // between would lose the recovery obligation the message created.
        if !export_clears.is_empty() || !export_marks.is_empty() {
            if let Some(store) = &mut self.node.store {
                store
                    .log_export_clears(export_clears.iter().map(|(p, t)| (p.as_str(), t)), now)
                    .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
                store
                    .log_export_marks(
                        export_marks
                            .iter()
                            .map(|(p, t, s)| (p.as_str(), t, s.as_slice())),
                        now,
                    )
                    .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
            }
        }

        // 3. Export processing (serialization, signature lookup, encryption)
        //    costs real compute; charge it to the node's virtual clock, then
        //    ship over the FIFO stream — directly (one envelope per
        //    destination, the seed path) or through the per-link outboxes
        //    (streaming: coalescing, annihilation, credit).
        let overhead = started.elapsed();
        let send_time = now + overhead.as_nanos() as u64;
        self.node.available_at = self.node.available_at.max(send_time);
        if self.config.streaming.enabled {
            for (dest, deltas) in per_dest {
                let high_water = self.config.streaming.queue_high_water;
                let outbox = self
                    .node
                    .outboxes
                    .entry(dest)
                    .or_insert_with(|| LinkOutbox::new(high_water));
                for delta in deltas {
                    if outbox.push(delta) {
                        secureblox_telemetry::counter!("engine_stream_annihilated_total").add(2);
                    }
                }
                self.drain_outbox(dest, send_time, false)?;
            }
        } else {
            for (dest, deltas) in per_dest {
                let seq = {
                    let counter = self.node.stream_seq.entry(dest).or_insert(0);
                    *counter += 1;
                    *counter
                };
                self.ship_envelope(dest, UpdateEnvelope { seq, deltas }, send_time)?;
            }
        }
        for (_, message) in anon_outgoing {
            self.net.send_fifo(message, send_time);
        }
        Ok(())
    }

    /// Ship as much of this node's `dest` outbox as its credit window
    /// allows, in envelopes of up to `batch_max` deltas each.  Marks the
    /// outbox stalled when deltas remain with no credit left — the stall ends
    /// (and shipping resumes) when the receiver's credit grant arrives.
    ///
    /// Unless `force`d, a residue smaller than `batch_max` is *held* (Nagle
    /// style): while other traffic is still in flight, the next flushes keep
    /// topping the outbox up and whole-batch envelopes amortize the
    /// receiver's per-transaction cost.  Both executors force-flush every
    /// outbox at quiescence, so held deltas always ship before a run can
    /// converge.
    pub(crate) fn drain_outbox(
        &mut self,
        dest: usize,
        now: VirtualTime,
        force: bool,
    ) -> Result<()> {
        let batch_max = self.config.streaming.batch_max;
        loop {
            let Some(outbox) = self.node.outboxes.get_mut(&dest) else {
                return Ok(());
            };
            if outbox.live() == 0 || (!force && outbox.live() < batch_max) {
                return Ok(());
            }
            if outbox.credit() == 0 {
                outbox.mark_stalled(now);
                return Ok(());
            }
            let take = batch_max.min(outbox.credit());
            let deltas = outbox.take_batch(take);
            outbox.consume_credit(deltas.len());
            if deltas.is_empty() {
                return Ok(());
            }
            secureblox_telemetry::histogram!("engine_stream_batch_deltas")
                .record(deltas.len() as u64);
            let seq = {
                let counter = self.node.stream_seq.entry(dest).or_insert(0);
                *counter += 1;
                *counter
            };
            self.ship_envelope(dest, UpdateEnvelope { seq, deltas }, now)?;
        }
    }

    /// Encode (and, under AES, encrypt) one update-stream envelope and send
    /// it on the link's FIFO stream.
    fn ship_envelope(
        &mut self,
        dest: usize,
        envelope: UpdateEnvelope,
        send_time: VirtualTime,
    ) -> Result<()> {
        if self.config.sharding.is_some() {
            let bytes: usize = envelope
                .deltas
                .iter()
                .filter(|delta| is_exchange_pred(&delta.pred))
                .map(|delta| {
                    delta.pred.len() + serialize_tuple(&delta.tuple).len() + delta.signature.len()
                })
                .sum();
            if bytes > 0 {
                self.node.exchange_bytes += bytes;
                secureblox_telemetry::counter!("engine_shard_exchange_bytes_total")
                    .add(bytes as u64);
            }
        }
        let mut payload = envelope.encode();
        if self.config.security.enc == EncScheme::Aes128 {
            let from_principal = &self.node.info.principal;
            let to_principal = &self.shared.principals[dest];
            let secret = self
                .shared
                .keystore
                .shared_secret(from_principal, to_principal)
                .map_err(|e| DatalogError::Eval(e.to_string()))?;
            payload = aes128_ctr_encrypt(secret, &payload);
        }
        self.net.send_fifo(
            Message::new(
                NodeId(self.index as u32),
                NodeId(dest as u32),
                MessageKind::Update,
                payload,
            ),
            send_time,
        );
        Ok(())
    }

    /// Find the detached signature for a `says$T` tuple in the corresponding
    /// `sig$T` relation (empty when the scheme carries no signatures), via a
    /// secondary index on the tuple prefix — built once, maintained
    /// incrementally — instead of a linear scan per exported tuple.
    fn lookup_signature(&mut self, param: &str, says_tuple: &[Value]) -> Vec<u8> {
        let sig_pred = format!("sig${param}");
        let cols = column_set(0..says_tuple.len());
        for tuple in self
            .node
            .workspace
            .probe_indexed(&sig_pred, cols, says_tuple)
        {
            if tuple.len() == says_tuple.len() + 1 {
                if let Some(bytes) = tuple[says_tuple.len()].as_bytes() {
                    return bytes.to_vec();
                }
            }
        }
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Anonymity circuits
    // ------------------------------------------------------------------

    fn circuit_for(&self, endpoint: &str) -> Option<&Circuit> {
        let endpoint_index = *self.shared.principal_index.get(endpoint)?;
        self.shared
            .circuits
            .iter()
            .find(|c| c.initiator == self.index && c.endpoint == endpoint_index)
    }

    /// Wrap an `anon_says$T` delta in onion layers and address it to the
    /// first hop of this node's circuit to the destination.
    fn onion_wrap_forward(
        &self,
        param: &str,
        destination: &str,
        tuple: &[Value],
        op: DeltaOp,
    ) -> Result<(usize, Message)> {
        let circuit = self.circuit_for(destination).ok_or_else(|| {
            DatalogError::Eval(format!(
                "no anonymity circuit from {} to {destination}; declare it in DeploymentConfig::circuits",
                self.node.info.principal
            ))
        })?;
        // The serialized payload omits the initiator: the endpoint can only
        // name the circuit (paper §6.2).  Circuit traffic rides the same
        // delta envelope as peer streams; the onion layers authenticate it in
        // place of a detached signature.
        let envelope = UpdateEnvelope {
            seq: 0,
            deltas: vec![UpdateDelta {
                op,
                pred: param.to_string(),
                tuple: tuple[2..].to_vec(),
                signature: Vec::new(),
            }],
        };
        let mut body = envelope.encode();
        for key in circuit.keys.iter().rev() {
            body = aes128_ctr_encrypt(key, &body);
        }
        let first_hop = circuit.relays.first().copied().unwrap_or(circuit.endpoint);
        let payload = encode_anon_cell(circuit.id, 0, &body);
        Ok((
            first_hop,
            Message::new(
                NodeId(self.index as u32),
                NodeId(first_hop as u32),
                MessageKind::AnonForward,
                payload,
            ),
        ))
    }

    /// Wrap an `anon_says_id_out$T` reply delta for the backward direction.
    fn onion_wrap_backward(
        &self,
        param: &str,
        tuple: &[Value],
        op: DeltaOp,
    ) -> Result<Option<(usize, Message)>> {
        let Some(circuit_id) = tuple[0].as_int() else {
            return Ok(None);
        };
        let Some(circuit) = self
            .shared
            .circuits
            .iter()
            .find(|c| c.id == circuit_id as u64 && c.endpoint == self.index)
        else {
            return Ok(None);
        };
        let envelope = UpdateEnvelope {
            seq: 0,
            deltas: vec![UpdateDelta {
                op,
                pred: param.to_string(),
                tuple: tuple[1..].to_vec(),
                signature: Vec::new(),
            }],
        };
        // The endpoint adds its own layer; each relay will add one more on
        // the way back and the initiator peels them all.
        let body = aes128_ctr_encrypt(
            circuit.keys.last().expect("endpoint key"),
            &envelope.encode(),
        );
        let (next, hop) = match circuit.relays.last() {
            Some(&relay) => (relay, circuit.relays.len() as u32 - 1),
            None => (circuit.initiator, u32::MAX),
        };
        let payload = encode_anon_cell(circuit.id, hop, &body);
        Ok(Some((
            next,
            Message::new(
                NodeId(self.index as u32),
                NodeId(next as u32),
                MessageKind::AnonBackward,
                payload,
            ),
        )))
    }

    // ------------------------------------------------------------------
    // Delivery
    // ------------------------------------------------------------------

    pub(crate) fn deliver(&mut self, message: Message, arrival: VirtualTime) -> Result<()> {
        match message.kind {
            MessageKind::Update => self.deliver_update(message, arrival),
            MessageKind::AnonForward => self.deliver_anon_forward(message, arrival),
            MessageKind::AnonBackward => self.deliver_anon_backward(message, arrival),
            MessageKind::Bootstrap => Ok(()),
            MessageKind::Credit => self.deliver_credit(message, arrival),
        }
    }

    /// A credit grant travelling back to a sender: top up the link's outbox
    /// window (capped at the high-water mark, so forged or replayed grants
    /// can refill but never grow it) and resume a stalled stream.
    fn deliver_credit(&mut self, message: Message, arrival: VirtualTime) -> Result<()> {
        let Some(granted) = secureblox_net::message::decode_credit(&message.payload) else {
            // Malformed grant — drop it rather than trusting the count.
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        // The grant is addressed to the sender side of the data stream: this
        // node is the sender, `message.from` the receiver that granted.
        let dest = message.from.index();
        let Some(outbox) = self.node.outboxes.get_mut(&dest) else {
            // Credit for a stream that never sent anything (forged): ignore.
            return Ok(());
        };
        if let Some(stalled_for) = outbox.grant_credit(granted, arrival) {
            secureblox_telemetry::histogram!("engine_stream_stall_ns").record(stalled_for);
        }
        self.drain_outbox(dest, arrival, false)
    }

    /// Apply one inbound update-stream envelope: decrypt, decode, drop stale
    /// duplicates, then apply every delta in order — each `Assert` as its own
    /// ACID transaction (paper semantics), each `Retract` as a verified
    /// incremental deletion.
    fn deliver_update(&mut self, message: Message, arrival: VirtualTime) -> Result<()> {
        let _apply_timer = secureblox_telemetry::histogram!("engine_update_apply_ns").start_timer();
        let mut update_span =
            secureblox_telemetry::span("engine", "update_apply").node(message.to.0 as u64);
        let from_principal = self.shared.principals[message.from.index()].clone();
        let to_principal = self.node.info.principal.clone();
        let mut payload = message.payload.to_vec();
        if self.config.security.enc == EncScheme::Aes128 {
            let secret = self
                .shared
                .keystore
                .shared_secret(&to_principal, &from_principal)
                .map_err(|e| DatalogError::Eval(e.to_string()))?;
            match aes128_ctr_decrypt(secret, &payload) {
                Ok(plain) => payload = plain,
                Err(_) => {
                    self.timing.record_rejection(message.to, arrival);
                    return Ok(());
                }
            }
        }
        let envelope = match UpdateEnvelope::decode(&payload) {
            Ok(envelope) => envelope,
            Err(_) => {
                self.timing.record_rejection(message.to, arrival);
                return Ok(());
            }
        };
        // At-most-once per delta: links are FIFO, so a sequence number at or
        // below the highest *accepted* sequence from this sender is a
        // duplicate of an already applied envelope and is dropped whole.
        if let Some(&last) = self.node.last_update_seq_in.get(&message.from.0) {
            if envelope.seq <= last {
                return Ok(());
            }
        }
        // The watermark advances below only when some delta produces
        // policy-accepted evidence (a committed transaction or a
        // signature-verified retraction).  An envelope of forged deltas —
        // whatever sequence number it claims — must not be able to mute the
        // link for the peer's legitimate traffic.
        let mut accepted = false;
        update_span.record_field("from", message.from.0 as u64);
        update_span.record_field("seq", envelope.seq);
        update_span.record_field("deltas", envelope.deltas.len() as u64);
        // Shuffle-apply latency: wall time to apply an envelope that carries
        // exchange deltas — the receive half of a shard exchange step.
        let _shuffle_timer = envelope
            .deltas
            .iter()
            .any(|delta| is_exchange_pred(&delta.pred))
            .then(|| {
                secureblox_telemetry::histogram!("engine_shard_shuffle_apply_ns").start_timer()
            });
        if self.config.streaming.enabled {
            accepted = self.drain_inbox(message.from, envelope.deltas, arrival)?;
        } else {
            for delta in envelope.deltas {
                let batch = delta_batch(&delta);
                match delta.op {
                    DeltaOp::Assert => {
                        // The receiver's own constraints (signature
                        // verification, trust, write access) accept or roll
                        // back the batch.
                        if self.process_batch(batch, arrival)? {
                            accepted = true;
                        }
                    }
                    DeltaOp::Retract => {
                        // Channel-level checks mirror the datalog-side assert
                        // constraints: only the principal that said a fact —
                        // and whose signature still verifies over it — may
                        // retract it, and only at the addressee.
                        let authorized = delta.tuple.len() >= 2
                            && delta.tuple[0].as_str() == Some(from_principal.as_str())
                            && delta.tuple[1].as_str() == Some(to_principal.as_str())
                            && self.verify_update_signature(
                                &from_principal,
                                &to_principal,
                                &delta,
                            )?;
                        if !authorized {
                            self.timing.record_rejection(message.to, arrival);
                            continue;
                        }
                        accepted = true;
                        self.apply_retraction(batch, arrival)?;
                    }
                }
            }
        }
        if accepted {
            let last = self
                .node
                .last_update_seq_in
                .entry(message.from.0)
                .or_insert(0);
            *last = (*last).max(envelope.seq);
        }
        update_span.record_field("accepted", accepted as u64);
        Ok(())
    }

    /// Verify a retract delta's detached signature under the deployment's
    /// authentication scheme — the same coverage the generated `sig$T` rules
    /// sign: the canonical encoding of the payload columns (after the two
    /// principal columns).
    fn verify_update_signature(
        &self,
        from_principal: &str,
        to_principal: &str,
        delta: &UpdateDelta,
    ) -> Result<bool> {
        secureblox_telemetry::counter!("engine_signature_checks_total").inc();
        let _verify_timer =
            secureblox_telemetry::histogram!("engine_update_verify_ns").start_timer();
        let payload = serialize_tuple(&delta.tuple[2..]);
        match self.config.security.auth {
            AuthScheme::NoAuth => Ok(true),
            AuthScheme::HmacSha1 => {
                let secret = self
                    .shared
                    .keystore
                    .shared_secret(to_principal, from_principal)
                    .map_err(|e| DatalogError::Eval(e.to_string()))?;
                Ok(hmac_sha1_verify(secret, &payload, &delta.signature))
            }
            AuthScheme::Rsa => {
                let public = self
                    .shared
                    .keystore
                    .public_key(from_principal)
                    .map_err(|e| DatalogError::Eval(e.to_string()))?;
                Ok(public.verify(&payload, &RsaSignature(delta.signature.clone())))
            }
        }
    }

    /// Streaming mode: apply one delivered envelope's deltas in order, each
    /// with exactly the per-envelope path's verdict — every `Assert` is its
    /// own ACID transaction (via the seeded, snapshot-free
    /// [`Workspace::transaction_incremental`], which commits and rolls back
    /// identically to [`Workspace::transaction`]), every `Retract` is
    /// authorized and DRed-applied individually.  What the batch amortizes
    /// is *scheduling*, not semantics: one export flush per drained envelope
    /// instead of one per committed delta (flushes are idempotent — the
    /// `sent` cursor dedups — so deferring them cannot change what ships),
    /// plus the sender-side coalescing and credit return below.  Returns
    /// whether any delta produced policy-accepted evidence.
    fn drain_inbox(
        &mut self,
        from: NodeId,
        deltas: Vec<UpdateDelta>,
        arrival: VirtualTime,
    ) -> Result<bool> {
        let to_id = NodeId(self.index as u32);
        secureblox_telemetry::histogram!("engine_stream_recv_batch_deltas")
            .record(deltas.len() as u64);
        if deltas.is_empty() {
            return Ok(false);
        }
        let from_principal = self.shared.principals[from.index()].clone();
        let to_principal = self.node.info.principal.clone();
        let mut accepted = false;
        let mut dirty = false;
        for delta in &deltas {
            match delta.op {
                DeltaOp::Assert => {
                    if self.apply_transaction(delta_batch(delta), arrival, true)? {
                        accepted = true;
                        dirty = true;
                    }
                }
                DeltaOp::Retract => {
                    // Channel-level checks, per delta, exactly as on the
                    // per-envelope path: only the principal that said a fact
                    // — and whose signature still verifies over it — may
                    // retract it, and only at the addressee.
                    let authorized = delta.tuple.len() >= 2
                        && delta.tuple[0].as_str() == Some(from_principal.as_str())
                        && delta.tuple[1].as_str() == Some(to_principal.as_str())
                        && self.verify_update_signature(&from_principal, &to_principal, delta)?;
                    if !authorized {
                        self.timing.record_rejection(to_id, arrival);
                        continue;
                    }
                    accepted = true;
                    if self.apply_retraction_inner(delta_batch(delta), arrival)? {
                        dirty = true;
                    }
                }
            }
        }
        if dirty {
            let now = self.node.available_at;
            self.flush_updates(now)?;
        }
        // Return the drained deltas' credit once the applies finish.  The
        // grant is unconditional — rejected deltas were still drained — so
        // every shipped delta eventually refills the sender's window and a
        // stalled outbox can never deadlock.  Credit rides a plain
        // (unordered) message: grants are cumulative counts, order-free.
        let send_at = arrival.max(self.node.available_at);
        secureblox_telemetry::counter!("engine_stream_credits_total").inc();
        self.net.send(
            Message::new(
                to_id,
                from,
                MessageKind::Credit,
                secureblox_net::message::encode_credit(deltas.len() as u64),
            ),
            send_at,
        );
        Ok(accepted)
    }

    /// Apply a verified retraction batch here and, when it deleted
    /// stored facts, immediately propagate the cascaded withdrawals through
    /// this node's own update streams (the per-envelope path's behaviour;
    /// the streaming drain defers that flush to the end of the envelope).
    fn apply_retraction(
        &mut self,
        batch: Vec<(String, Tuple)>,
        arrival: VirtualTime,
    ) -> Result<()> {
        if self.apply_retraction_inner(batch, arrival)? {
            let finish = self.node.available_at;
            self.flush_updates(finish)?;
        }
        Ok(())
    }

    /// DRed the batch out of the workspace, WAL-log it (so recovery replays
    /// it in order), and record the verdict.  Returns whether stored facts
    /// were actually deleted — only then does the caller need to flush
    /// update streams for cascaded withdrawals.
    fn apply_retraction_inner(
        &mut self,
        batch: Vec<(String, Tuple)>,
        arrival: VirtualTime,
    ) -> Result<bool> {
        let start_virtual = arrival.max(self.node.available_at);
        let started = Instant::now();
        let outcome = self.node.workspace.retract(batch.clone());
        let elapsed = started.elapsed();
        secureblox_telemetry::histogram!("engine_retraction_apply_ns").record_duration(elapsed);
        let finish = start_virtual + elapsed.as_nanos() as u64;
        self.node.available_at = finish;
        match outcome {
            Ok(stats) => {
                if stats.base_deleted == 0 {
                    // Nothing was stored here (e.g. the assert had been
                    // rejected); at-most-once means there is nothing to log
                    // or propagate.
                    return Ok(false);
                }
                if let Some(store) = &mut self.node.store {
                    store
                        .log_retracts(batch.iter().map(|(p, t)| (p.as_str(), t)), finish)
                        .map_err(|e| DatalogError::Eval(format!("durability: {e}")))?;
                }
                // A cascade: the retraction removed stored facts and may now
                // propagate further withdrawals through this node's streams.
                secureblox_telemetry::counter!("engine_retraction_cascades_total").inc();
                secureblox_telemetry::histogram!("engine_retraction_deleted_facts")
                    .record((stats.base_deleted + stats.over_deleted) as u64);
                self.timing
                    .record_retraction(NodeId(self.index as u32), finish);
                self.node.needs_retraction_scan = true;
                Ok(true)
            }
            Err(DatalogError::ConstraintViolation(_)) => {
                // Deleting the fact would violate a constraint: the whole
                // retraction rolls back, mirroring assert-batch semantics.
                self.timing
                    .record_rejection(NodeId(self.index as u32), finish);
                Ok(false)
            }
            Err(DatalogError::FunctionalDependency { .. }) => {
                self.timing
                    .record_conflict(NodeId(self.index as u32), finish);
                Ok(false)
            }
            Err(other) => Err(other),
        }
    }

    fn deliver_anon_forward(&mut self, message: Message, arrival: VirtualTime) -> Result<()> {
        let here = self.index;
        let Some((circuit_id, hop, body)) = decode_anon_cell(&message.payload) else {
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        let Some(circuit) = self
            .shared
            .circuits
            .iter()
            .find(|c| c.id == circuit_id)
            .cloned()
        else {
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        let key = circuit.keys.get(hop as usize).cloned().unwrap_or_default();
        let Ok(peeled) = aes128_ctr_decrypt(&key, &body) else {
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        let is_endpoint = (hop as usize) == circuit.relays.len();
        if is_endpoint || circuit.relays.is_empty() && here == circuit.endpoint {
            // Deliver into the endpoint's workspace keyed by the circuit.
            let envelope = match UpdateEnvelope::decode(&peeled) {
                Ok(envelope) => envelope,
                Err(_) => {
                    self.timing.record_rejection(message.to, arrival);
                    return Ok(());
                }
            };
            for delta in envelope.deltas {
                let mut tuple = vec![Value::Int(circuit.id as i64)];
                tuple.extend(delta.tuple);
                let batch = vec![(format!("anon_says_id_in${}", delta.pred), tuple)];
                match delta.op {
                    DeltaOp::Assert => {
                        self.process_batch(batch, arrival)?;
                    }
                    // The onion layers already authenticate circuit traffic;
                    // a withdrawal needs no detached signature.
                    DeltaOp::Retract => self.apply_retraction(batch, arrival)?,
                }
            }
            return Ok(());
        }
        // Relay: forward the peeled cell to the next hop.
        let next_hop_index = hop as usize + 1;
        let next = if next_hop_index == circuit.relays.len() {
            circuit.endpoint
        } else {
            circuit.relays[next_hop_index]
        };
        let forward = Message::new(
            NodeId(here as u32),
            NodeId(next as u32),
            MessageKind::AnonForward,
            encode_anon_cell(circuit_id, next_hop_index as u32, &peeled),
        );
        let send_at = arrival.max(self.node.available_at);
        self.node.available_at = send_at;
        self.net.send_fifo(forward, send_at);
        Ok(())
    }

    fn deliver_anon_backward(&mut self, message: Message, arrival: VirtualTime) -> Result<()> {
        let here = self.index;
        let Some((circuit_id, hop, body)) = decode_anon_cell(&message.payload) else {
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        let Some(circuit) = self
            .shared
            .circuits
            .iter()
            .find(|c| c.id == circuit_id)
            .cloned()
        else {
            self.timing.record_rejection(message.to, arrival);
            return Ok(());
        };
        if hop == u32::MAX || here == circuit.initiator {
            // Initiator: peel every layer (relays in forward order, then the
            // endpoint's innermost layer).
            let mut plain = body;
            for key in &circuit.keys {
                match aes128_ctr_decrypt(key, &plain) {
                    Ok(next) => plain = next,
                    Err(_) => {
                        self.timing.record_rejection(message.to, arrival);
                        return Ok(());
                    }
                }
            }
            let envelope = match UpdateEnvelope::decode(&plain) {
                Ok(envelope) => envelope,
                Err(_) => {
                    self.timing.record_rejection(message.to, arrival);
                    return Ok(());
                }
            };
            for delta in envelope.deltas {
                let batch = vec![(format!("anon_reply${}", delta.pred), delta.tuple)];
                match delta.op {
                    DeltaOp::Assert => {
                        self.process_batch(batch, arrival)?;
                    }
                    DeltaOp::Retract => self.apply_retraction(batch, arrival)?,
                }
            }
            return Ok(());
        }
        // Relay: add this hop's layer and forward towards the initiator.
        let key = circuit.keys.get(hop as usize).cloned().unwrap_or_default();
        let wrapped = aes128_ctr_encrypt(&key, &body);
        let (next, next_hop) = if hop == 0 {
            (circuit.initiator, u32::MAX)
        } else {
            (circuit.relays[hop as usize - 1], hop - 1)
        };
        let forward = Message::new(
            NodeId(here as u32),
            NodeId(next as u32),
            MessageKind::AnonBackward,
            encode_anon_cell(circuit_id, next_hop, &wrapped),
        );
        let send_at = arrival.max(self.node.available_at);
        self.node.available_at = send_at;
        self.net.send_fifo(forward, send_at);
        Ok(())
    }
}

/// The receiver-side insertion batch for one update-stream delta: the
/// `says$T` tuple plus, when a detached signature rides along, the matching
/// `sig$T` row the generated verification constraints consume.
fn delta_batch(delta: &UpdateDelta) -> Vec<(String, Tuple)> {
    let mut batch: Vec<(String, Tuple)> =
        vec![(format!("says${}", delta.pred), delta.tuple.clone())];
    if !delta.signature.is_empty() {
        let mut sig_tuple = delta.tuple.clone();
        sig_tuple.push(Value::bytes(delta.signature.clone()));
        batch.push((format!("sig${}", delta.pred), sig_tuple));
    }
    batch
}

/// Encode an anonymity cell: circuit id, hop index, body.
fn encode_anon_cell(circuit_id: u64, hop: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&circuit_id.to_be_bytes());
    out.extend_from_slice(&hop.to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Decode an anonymity cell.
fn decode_anon_cell(payload: &[u8]) -> Option<(u64, u32, Vec<u8>)> {
    if payload.len() < 12 {
        return None;
    }
    let circuit_id = u64::from_be_bytes(payload[0..8].try_into().ok()?);
    let hop = u32::from_be_bytes(payload[8..12].try_into().ok()?);
    Some((circuit_id, hop, payload[12..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{SecurityConfig, TrustModel};
    use secureblox_crypto::{AuthScheme, EncScheme};

    /// A two-node "reachability gossip" application: each node says its links
    /// to the other node, which imports them into `remote_link`.
    const GOSSIP_APP: &str = r#"
        link(N1, N2) -> node(N1), node(N2).
        remote_link(N1, N2) -> node(N1), node(N2).
        exportable(`remote_link).

        says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    "#;

    fn two_node_specs() -> Vec<NodeSpec> {
        vec![
            NodeSpec {
                principal: "n0".into(),
                base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
            },
            NodeSpec {
                principal: "n1".into(),
                base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n0")])],
            },
        ]
    }

    fn run_gossip(security: SecurityConfig) -> (Deployment, DeploymentReport) {
        let config = DeploymentConfig {
            security,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        let report = deployment.run().unwrap();
        (deployment, report)
    }

    #[test]
    fn noauth_gossip_exchanges_facts() {
        let (deployment, report) =
            run_gossip(SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None));
        assert_eq!(
            deployment.query("n0", "remote_link"),
            vec![vec![Value::str("n1"), Value::str("n0")]]
        );
        assert_eq!(
            deployment.query("n1", "remote_link"),
            vec![vec![Value::str("n0"), Value::str("n1")]]
        );
        assert_eq!(report.rejected_batches, 0);
        assert!(report.total_messages >= 2);
        assert!(report.fixpoint_latency > Duration::ZERO);
        assert!(report.per_node_kb > 0.0);
    }

    #[test]
    fn hmac_and_rsa_gossip_verify_and_cost_more_bytes() {
        let (_, noauth) = run_gossip(SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None));
        let (hmac_dep, hmac) =
            run_gossip(SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None));
        let (rsa_dep, rsa) = run_gossip(SecurityConfig::new(AuthScheme::Rsa, EncScheme::None));
        // Facts still arrive.
        assert_eq!(hmac_dep.query("n0", "remote_link").len(), 1);
        assert_eq!(rsa_dep.query("n0", "remote_link").len(), 1);
        assert_eq!(hmac.rejected_batches, 0);
        assert_eq!(rsa.rejected_batches, 0);
        // Signature overhead ordering matches Figure 6.
        assert!(noauth.per_node_kb < hmac.per_node_kb);
        assert!(hmac.per_node_kb < rsa.per_node_kb);
    }

    #[test]
    fn aes_encryption_still_delivers_and_adds_bytes() {
        let (deployment, plain) =
            run_gossip(SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None));
        let (enc_dep, enc) =
            run_gossip(SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::Aes128));
        assert_eq!(
            deployment.query("n0", "remote_link"),
            enc_dep.query("n0", "remote_link")
        );
        assert!(enc.per_node_kb > plain.per_node_kb);
    }

    #[test]
    fn untrusted_principal_rejected_with_trustworthy_model() {
        // n1 is not trustworthy at n0, so n0 must not import its fact, but n1
        // (which trusts everyone it lists) still imports n0's fact.
        let security = SecurityConfig {
            auth: AuthScheme::NoAuth,
            trust: TrustModel::Trustworthy,
            ..SecurityConfig::default()
        };
        let config = DeploymentConfig {
            security,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        // Remove n1 from n0's trustworthy relation before running.
        deployment.nodes[0]
            .workspace
            .retract(vec![("trustworthy".into(), vec![Value::str("n1")])])
            .unwrap();
        deployment.run().unwrap();
        assert_eq!(deployment.query("n0", "remote_link").len(), 0);
        assert_eq!(deployment.query("n1", "remote_link").len(), 1);
        // The says fact from n1 itself was accepted (n1 is a known
        // principal); only the import into remote_link is withheld.  n0 also
        // stores its own outgoing says tuple, hence two rows.
        let incoming: Vec<_> = deployment
            .query("n0", "says$remote_link")
            .into_iter()
            .filter(|t| t[1].as_str() == Some("n0"))
            .collect();
        assert_eq!(incoming.len(), 1);
    }

    #[test]
    fn forged_signature_rolls_back_batch() {
        let security = SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None);
        let config = DeploymentConfig {
            security,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        // Forge a message from n1 to n0 with a bad tag by injecting it
        // directly into the network.
        let envelope = UpdateEnvelope {
            seq: 0,
            deltas: vec![UpdateDelta {
                op: DeltaOp::Assert,
                pred: "remote_link".into(),
                tuple: vec![
                    Value::str("n1"),
                    Value::str("n0"),
                    Value::str("evil"),
                    Value::str("evil2"),
                ],
                signature: vec![0u8; 20],
            }],
        };
        let forged = Message::new(NodeId(1), NodeId(0), MessageKind::Update, envelope.encode());
        deployment.network.send(forged, 0);
        let report = deployment.run().unwrap();
        assert!(report.rejected_batches >= 1);
        assert!(!deployment
            .query("n0", "remote_link")
            .contains(&vec![Value::str("evil"), Value::str("evil2")]));
        // Legitimate traffic still arrived.
        assert_eq!(deployment.query("n0", "remote_link").len(), 1);
    }

    #[test]
    fn write_access_constraint_enforced() {
        let security = SecurityConfig {
            auth: AuthScheme::NoAuth,
            write_access: true,
            ..SecurityConfig::default()
        };
        let config = DeploymentConfig {
            security,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        // Revoke n1's write access to remote_link at n0.
        deployment.nodes[0]
            .workspace
            .retract(vec![(
                "writeAccess$remote_link".into(),
                vec![Value::str("n1")],
            )])
            .unwrap();
        let report = deployment.run().unwrap();
        assert!(report.rejected_batches >= 1);
        assert_eq!(deployment.query("n0", "remote_link").len(), 0);
        assert_eq!(deployment.query("n1", "remote_link").len(), 1);
    }

    #[test]
    fn parallel_deployment_matches_serial_and_reports_workers() {
        let serial_config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            parallelism: 1,
            ..DeploymentConfig::default()
        };
        let mut serial = Deployment::build(GOSSIP_APP, &two_node_specs(), serial_config).unwrap();
        let serial_report = serial.run().unwrap();
        let parallel_config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            parallelism: 4,
            ..DeploymentConfig::default()
        };
        let mut parallel =
            Deployment::build(GOSSIP_APP, &two_node_specs(), parallel_config).unwrap();
        let parallel_report = parallel.run().unwrap();
        assert_eq!(serial_report.workers, 1);
        assert_eq!(parallel_report.workers, 4);
        assert!(parallel_report.worker_utilization >= 0.0);
        assert!(parallel_report.worker_utilization <= 1.0);
        for principal in ["n0", "n1"] {
            assert_eq!(
                serial.query(principal, "remote_link"),
                parallel.query(principal, "remote_link"),
                "parallel evaluation must not change {principal}'s fixpoint"
            );
        }
        assert_eq!(
            serial_report.rejected_batches,
            parallel_report.rejected_batches
        );
    }

    #[test]
    fn stale_seq_replay_is_rejected_even_out_of_order() {
        // NoAuth, so nothing but the sequence watermark stands between an
        // injected replay and the workspace: the deltas would be accepted if
        // the envelope were fresh.
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        deployment.run().unwrap();
        // The legitimate n1→n0 stream used sequence 1; replay that sequence
        // with attacker-chosen contents.  `inject_message` sends at virtual
        // time 0, bypassing the per-link FIFO floor — the replay arrives
        // *before* anything else queued on the link, the strongest reordering
        // an on-path adversary can force.
        let replay = UpdateEnvelope {
            seq: 1,
            deltas: vec![UpdateDelta {
                op: DeltaOp::Assert,
                pred: "remote_link".into(),
                tuple: vec![
                    Value::str("n1"),
                    Value::str("n0"),
                    Value::str("evil"),
                    Value::str("evil2"),
                ],
                signature: Vec::new(),
            }],
        };
        deployment.inject_message(1, 0, replay.encode());
        deployment.run().unwrap();
        assert!(
            !deployment
                .query("n0", "remote_link")
                .contains(&vec![Value::str("evil"), Value::str("evil2")]),
            "stale-sequence replay must be dropped whole, not applied"
        );
        assert_eq!(deployment.query("n0", "remote_link").len(), 1);
    }

    #[test]
    fn exhausted_message_budget_names_busiest_links() {
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            message_budget: 1,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        let err = deployment.run().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("message budget of 1"), "got: {text}");
        assert!(text.contains("busiest links:"), "got: {text}");
        assert!(text.contains("msgs"), "got: {text}");
    }

    #[test]
    fn streaming_gossip_matches_per_envelope_path() {
        let baseline_config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            streaming: StreamingConfig::disabled(),
            ..DeploymentConfig::default()
        };
        let mut baseline =
            Deployment::build(GOSSIP_APP, &two_node_specs(), baseline_config).unwrap();
        let baseline_report = baseline.run().unwrap();
        let streaming_config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            streaming: StreamingConfig::with_knobs(8, 32),
            ..DeploymentConfig::default()
        };
        let mut streaming =
            Deployment::build(GOSSIP_APP, &two_node_specs(), streaming_config).unwrap();
        let streaming_report = streaming.run().unwrap();
        for principal in ["n0", "n1"] {
            for pred in ["remote_link", "says$remote_link", "link"] {
                assert_eq!(
                    baseline.query(principal, pred),
                    streaming.query(principal, pred),
                    "{principal}/{pred} diverged under streaming"
                );
            }
        }
        assert_eq!(
            baseline_report.rejected_batches,
            streaming_report.rejected_batches
        );
        assert_eq!(
            baseline_report.retractions_applied,
            streaming_report.retractions_applied
        );
    }

    #[test]
    fn streaming_retraction_converges_and_annihilates_nothing_shipped() {
        // Assert, converge, retract at the source: the withdrawal must cross
        // the wire as a Retract delta and remove the remote copy, exactly as
        // on the per-envelope path.
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            streaming: StreamingConfig::with_knobs(8, 32),
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        deployment.run().unwrap();
        assert_eq!(deployment.query("n0", "remote_link").len(), 1);
        deployment
            .retract(
                "n1",
                vec![("link".into(), vec![Value::str("n1"), Value::str("n0")])],
            )
            .unwrap();
        let report = deployment.run().unwrap();
        assert_eq!(deployment.query("n0", "remote_link").len(), 0);
        assert!(report.retractions_applied >= 1);
    }

    /// Regression (PR 9): the non-convergence guard must count only
    /// data-plane deliveries.  A streaming gossip exchange is exactly two
    /// Update envelopes plus two Credit grants; with the old counting the
    /// credits spent half the budget and a budget of 2 tripped spuriously.
    #[test]
    fn credit_messages_do_not_spend_the_message_budget() {
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            streaming: StreamingConfig::with_knobs(8, 32),
            message_budget: 2,
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        deployment.run().expect(
            "a budget equal to the data-plane message count must suffice; \
             credit grants are control traffic",
        );
        let stats = deployment.network.stats();
        assert_eq!(stats.messages_for_kind(MessageKind::Update), 2);
        assert!(
            stats.messages_for_kind(MessageKind::Credit) >= 2,
            "backpressure credits must actually have flowed for this test to bite"
        );
        assert_eq!(deployment.query("n0", "remote_link").len(), 1);
        assert_eq!(deployment.query("n1", "remote_link").len(), 1);
    }

    #[test]
    fn reactor_gossip_matches_reference() {
        let (reference, reference_report) =
            run_gossip(SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None));
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            reactor: ReactorConfig::with_threads(2),
            ..DeploymentConfig::default()
        };
        let mut reactor = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        let reactor_report = reactor.run().unwrap();
        for principal in ["n0", "n1"] {
            for pred in ["remote_link", "says$remote_link", "link"] {
                assert_eq!(
                    reference.query(principal, pred),
                    reactor.query(principal, pred),
                    "{principal}/{pred} diverged under the reactor executor"
                );
            }
        }
        assert_eq!(
            reference_report.rejected_batches,
            reactor_report.rejected_batches
        );
        assert_eq!(
            reference_report.total_messages, reactor_report.total_messages,
            "the reactor's per-task traffic shards must merge to the same totals"
        );
    }

    #[test]
    fn reactor_budget_exhaustion_reports_like_the_reference() {
        let config = DeploymentConfig {
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            message_budget: 1,
            reactor: ReactorConfig::with_threads(2),
            ..DeploymentConfig::default()
        };
        let mut deployment = Deployment::build(GOSSIP_APP, &two_node_specs(), config).unwrap();
        let err = deployment.run().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("message budget of 1"), "got: {text}");
        assert!(text.contains("busiest links:"), "got: {text}");
    }

    #[test]
    fn anon_cell_roundtrip() {
        let cell = encode_anon_cell(7, 2, b"body bytes");
        let (id, hop, body) = decode_anon_cell(&cell).unwrap();
        assert_eq!((id, hop), (7, 2));
        assert_eq!(body, b"body bytes");
        assert!(decode_anon_cell(&cell[..5]).is_none());
    }
}
