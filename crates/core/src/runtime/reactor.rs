//! The event-driven reactor executor: every node is an independent worker
//! task woken by message arrival, instead of a turn in the reference
//! executor's global virtual-time loop.
//!
//! The reference loop ([`Deployment::run`] with `SECUREBLOX_REACTOR=0`)
//! replays the deployment as a discrete-event simulation: one thread pops
//! messages off a global heap in virtual-time order, so a 36-node deployment
//! uses one core no matter how many the host has.  The reactor keeps the
//! *virtual-time bookkeeping* (per-node clocks still advance by measured
//! compute plus modelled latency, so `DeploymentReport` latency figures keep
//! their meaning) but replaces the *scheduler*: nodes run wall-clock-parallel
//! on a small worker pool, woken when an envelope or credit grant lands in
//! one of their per-link mailboxes ([`secureblox_net::LinkLanes`]).
//!
//! Scheduling is a per-node wake state machine (`IDLE → QUEUED → RUNNING →
//! IDLE`, with `DIRTY` marking arrivals that raced a running service pass):
//! a node is enqueued at most once, never runs on two workers at once, and a
//! message pushed to its mailbox is never lost — the push happens before the
//! wake, and a service pass drains mailboxes after marking itself `RUNNING`.
//!
//! Quiescence — the distributed fixpoint — is detected by a global
//! in-flight counter instead of an empty delivery heap: every queued unit of
//! work (a seeded bootstrap batch, an in-mailbox message) holds one count,
//! workers release counts only *after* processing (so counts taken by a
//! message's children overlap with its own), and `outstanding == 0` therefore
//! means no work exists anywhere.  The coordinator then force-flushes any
//! streaming outbox residues (the Nagle hold, exactly like the reference
//! loop) and shuts the pool down when nothing ships.
//!
//! What is deliberately *not* reproduced is the global cross-link
//! virtual-time interleaving: per-link FIFO order and the PR 8 credit-window
//! semantics are preserved, but messages on different links interleave
//! arbitrarily.  The executors are outcome-equivalent (same relations, same
//! verdicts, same store Merkle roots — see `tests/props_reactor.rs`), not
//! schedule-equivalent.  DESIGN.md §13 documents the argument.

use crate::runtime::engine::{
    is_data_plane, Deployment, DeploymentConfig, DeploymentReport, EngineShared, NetSink, NodeCtx,
    NodeState,
};
use crate::runtime::stream::{env_flag, env_usize};
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_net::{
    record_message_latency, LinkLanes, Message, NetworkStats, TimingStats, VirtualTime,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Reactor-executor knobs.  The default honours `SECUREBLOX_REACTOR`
/// (off = the deterministic virtual-time reference loop) and
/// `SECUREBLOX_REACTOR_THREADS` (worker-pool size, default: available
/// hardware parallelism).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Run [`Deployment::run`] on the event-driven executor.
    pub enabled: bool,
    /// Worker threads servicing woken nodes (clamped to `1..=nodes`).
    pub threads: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            enabled: env_flag("SECUREBLOX_REACTOR"),
            threads: env_usize("SECUREBLOX_REACTOR_THREADS", default_threads()),
        }
    }
}

impl ReactorConfig {
    /// The reference executor, ignoring the environment.
    pub fn disabled() -> Self {
        ReactorConfig {
            enabled: false,
            threads: 1,
        }
    }

    /// The reactor executor with an explicit worker-pool size.
    pub fn with_threads(threads: usize) -> Self {
        ReactorConfig {
            enabled: true,
            threads: threads.max(1),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// The per-node wake state machine.  Transitions:
//   IDLE    --wake-->  QUEUED   (pushed to the run queue, exactly once)
//   QUEUED  --pop--->  RUNNING  (a worker starts a service pass)
//   RUNNING --wake-->  DIRTY    (an arrival raced the pass; re-drain)
//   RUNNING --done-->  IDLE
//   DIRTY   --done-->  RUNNING  (the servicing worker loops, no re-enqueue)
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DIRTY: u8 = 3;

/// Everything one node's service pass mutates: the node state itself plus
/// per-task shards of the statistics the reference executor records through
/// shared structures.  Shards are merged back into the deployment at
/// teardown, so reports are identical in shape across executors.
struct NodeCell {
    node: NodeState,
    /// Per-task timing shard (indexed by `NodeId` like the shared recorder).
    timing: TimingStats,
    /// Per-task traffic shard, absorbed into [`secureblox_net::SimNetwork`]'s
    /// counters at teardown.
    stats: NetworkStats,
    /// Sender-side per-destination FIFO floors (the reactor's replacement
    /// for `SimNetwork`'s internal `link_floor` map).  Sender-owned: only
    /// this node sends on its outgoing links, so no cross-task floor exists.
    /// Dropped at teardown — at quiescence no stream has in-flight messages,
    /// so the floors carry no obligation forward.
    floors: HashMap<usize, VirtualTime>,
    /// The virtual-time-zero bootstrap batch has been processed.
    bootstrapped: bool,
}

struct NodeSlot {
    cell: Mutex<NodeCell>,
    sched: AtomicU8,
}

/// The shared event core: slots, mailboxes, the run queue, and the
/// quiescence/halt machinery.  Borrows the deployment's immutable shared
/// state; node state lives inside the slots for the reactor's lifetime.
struct Reactor<'d> {
    slots: Vec<NodeSlot>,
    lanes: LinkLanes,
    /// Woken nodes awaiting a worker, with their enqueue instant (wake
    /// latency telemetry).  At most one entry per node (see `wake`).
    runq: Mutex<VecDeque<(usize, Instant)>>,
    runq_cv: Condvar,
    /// Units of queued work anywhere in the system: seeded bootstrap batches
    /// plus in-mailbox messages.  Zero means quiescent — a unit's count is
    /// released only after processing, so counts taken by the children it
    /// spawned overlap with its own and the counter can never dip to zero
    /// while causally-pending work exists.
    outstanding: AtomicI64,
    quiet: Mutex<()>,
    quiet_cv: Condvar,
    /// Data-plane deliveries so far, against `config.message_budget`.
    budget_spent: AtomicUsize,
    budget_exceeded: AtomicBool,
    halted: AtomicBool,
    shutdown: AtomicBool,
    /// First worker error wins; composed into the run result at teardown.
    error: Mutex<Option<DatalogError>>,
    shared: &'d EngineShared,
    config: &'d DeploymentConfig,
}

/// The per-task [`NetSink`]: computes delivery times from the shared latency
/// model, records traffic into the sending task's statistics shard, enqueues
/// into the concurrent mailboxes, and wakes the receiver.
struct ReactorSink<'r, 'd> {
    reactor: &'r Reactor<'d>,
    stats: &'r mut NetworkStats,
    floors: &'r mut HashMap<usize, VirtualTime>,
}

impl ReactorSink<'_, '_> {
    fn dispatch(&mut self, message: Message, now: VirtualTime, floor: VirtualTime) -> VirtualTime {
        let wire_size = message.wire_size();
        let delay = self.reactor.config.latency.delay(wire_size).as_nanos() as u64;
        let deliver_at = (now + delay).max(floor);
        self.stats
            .record_send(message.from, message.to, wire_size, message.kind);
        record_message_latency(message.kind, deliver_at - now);
        let to = message.to.index();
        // Count the message before it becomes visible: a receiver must never
        // drain work the quiescence counter has not yet accounted for.
        self.reactor.outstanding.fetch_add(1, Ordering::SeqCst);
        self.reactor.lanes.push(deliver_at, message);
        self.reactor.wake(to);
        deliver_at
    }
}

impl NetSink for ReactorSink<'_, '_> {
    fn send(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        self.dispatch(message, now, 0)
    }

    fn send_fifo(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        let dest = message.to.index();
        let floor = self.floors.get(&dest).copied().unwrap_or(0);
        let delivered = self.dispatch(message, now, floor);
        self.floors.insert(dest, delivered);
        delivered
    }
}

impl<'d> Reactor<'d> {
    /// Wake node `index`: ensure a service pass will observe everything
    /// pushed to its mailboxes before this call.  Enqueues at most once.
    fn wake(&self, index: usize) {
        let slot = &self.slots[index];
        loop {
            match slot.sched.load(Ordering::SeqCst) {
                IDLE => {
                    if slot
                        .sched
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        let mut queue = self.runq.lock().expect("run queue poisoned");
                        queue.push_back((index, Instant::now()));
                        secureblox_telemetry::gauge!("reactor_run_queue_depth")
                            .set(queue.len() as i64);
                        drop(queue);
                        self.runq_cv.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    // The racing service pass may already be past its drain;
                    // DIRTY forces one more drain before it goes idle.
                    if slot
                        .sched
                        .compare_exchange(RUNNING, DIRTY, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // QUEUED / DIRTY: a future drain is already guaranteed.
                _ => return,
            }
        }
    }

    /// Release `count` units of queued work; signals the coordinator when
    /// the last unit anywhere drains.
    fn finish(&self, count: i64) {
        if self.outstanding.fetch_sub(count, Ordering::SeqCst) == count {
            let _guard = self.quiet.lock().expect("quiet lock poisoned");
            self.quiet_cv.notify_all();
        }
    }

    fn halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    /// Stop the run: workers drain out, the coordinator stops waiting.
    fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let _queue = self.runq.lock().expect("run queue poisoned");
            self.runq_cv.notify_all();
        }
        let _guard = self.quiet.lock().expect("quiet lock poisoned");
        self.quiet_cv.notify_all();
    }

    /// Record the first error and halt.
    fn fail(&self, error: DatalogError) {
        {
            let mut slot = self.error.lock().expect("error slot poisoned");
            slot.get_or_insert(error);
        }
        self.halt();
    }

    /// Build a [`NodeCtx`] over one locked cell's disjoint shards and run
    /// `body` against it — the reactor-side twin of
    /// [`Deployment::node_ctx`].
    fn with_ctx<R>(
        &self,
        index: usize,
        cell: &mut NodeCell,
        body: impl FnOnce(&mut NodeCtx<'_>) -> R,
    ) -> R {
        let NodeCell {
            node,
            timing,
            stats,
            floors,
            ..
        } = cell;
        let mut sink = ReactorSink {
            reactor: self,
            stats,
            floors,
        };
        let mut ctx = NodeCtx {
            index,
            node,
            shared: self.shared,
            config: self.config,
            net: &mut sink,
            timing,
        };
        body(&mut ctx)
    }

    /// Worker loop: pop woken nodes and service them until shutdown.
    fn worker(&self) {
        loop {
            let (index, woken_at) = {
                let mut queue = self.runq.lock().expect("run queue poisoned");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(entry) = queue.pop_front() {
                        secureblox_telemetry::gauge!("reactor_run_queue_depth")
                            .set(queue.len() as i64);
                        break entry;
                    }
                    let parked = Instant::now();
                    queue = self.runq_cv.wait(queue).expect("run queue poisoned");
                    secureblox_telemetry::histogram!("reactor_parked_ns")
                        .record_duration(parked.elapsed());
                }
            };
            secureblox_telemetry::histogram!("reactor_wake_latency_ns")
                .record_duration(woken_at.elapsed());
            self.service(index);
        }
    }

    /// One service pass: mark `RUNNING`, drain this node's mailboxes, apply
    /// every message through the same [`NodeCtx`] handlers the reference
    /// executor uses, and go idle — unless an arrival raced us (`DIRTY`), in
    /// which case drain again.
    fn service(&self, index: usize) {
        let slot = &self.slots[index];
        slot.sched.store(RUNNING, Ordering::SeqCst);
        let mut cell = slot.cell.lock().expect("node cell poisoned");
        let mut inbox: Vec<(VirtualTime, Message)> = Vec::new();
        loop {
            if !cell.bootstrapped {
                cell.bootstrapped = true;
                let batch = std::mem::take(&mut cell.node.pending_bootstrap);
                if let Err(error) =
                    self.with_ctx(index, &mut cell, |ctx| ctx.process_batch(batch, 0))
                {
                    self.fail(error);
                }
                self.finish(1);
            }
            inbox.clear();
            self.lanes.drain_to(index, &mut inbox);
            let drained = inbox.len() as i64;
            for (arrival, message) in inbox.drain(..) {
                if self.halted() {
                    break;
                }
                if is_data_plane(message.kind) {
                    let spent = self.budget_spent.fetch_add(1, Ordering::SeqCst) + 1;
                    if spent > self.config.message_budget {
                        self.budget_exceeded.store(true, Ordering::SeqCst);
                        self.halt();
                        break;
                    }
                }
                if let Err(error) =
                    self.with_ctx(index, &mut cell, |ctx| ctx.deliver(message, arrival))
                {
                    self.fail(error);
                }
            }
            if drained > 0 {
                self.finish(drained);
            }
            if self.halted() {
                slot.sched.store(IDLE, Ordering::SeqCst);
                return;
            }
            match slot
                .sched
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                // An arrival raced this pass: reclaim RUNNING and re-drain.
                Err(_) => slot.sched.store(RUNNING, Ordering::SeqCst),
            }
        }
    }

    /// The main-thread coordinator: wait for quiescence, force-flush
    /// streaming residues (which creates new work and resumes the pool), and
    /// shut down when the system is genuinely drained.
    fn coordinate(&self) {
        loop {
            {
                let mut guard = self.quiet.lock().expect("quiet lock poisoned");
                while self.outstanding.load(Ordering::SeqCst) != 0 && !self.halted() {
                    guard = self.quiet_cv.wait(guard).expect("quiet lock poisoned");
                }
            }
            if self.halted() {
                break;
            }
            if !self.config.streaming.enabled {
                break;
            }
            match self.flush_residues() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(error) => {
                    self.fail(error);
                    break;
                }
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let _queue = self.runq.lock().expect("run queue poisoned");
        self.runq_cv.notify_all();
    }

    /// At quiescence, force-flush every outbox still holding deltas — the
    /// reactor's twin of the reference loop's `flush_pending_outboxes`.
    /// Runs on the coordinator with the pool parked (outstanding == 0), so
    /// locking cells one at a time is race-free; anything shipped re-wakes
    /// its receiver.  Credit is returned unconditionally per drained delta,
    /// so by quiescence every window has refilled — an unshippable residue
    /// is a protocol bug, not a schedule, and fails loudly.
    fn flush_residues(&self) -> Result<bool> {
        let mut shipped = false;
        for (index, slot) in self.slots.iter().enumerate() {
            let mut cell = slot.cell.lock().expect("node cell poisoned");
            let pending: Vec<usize> = cell
                .node
                .outboxes
                .iter()
                .filter(|(_, outbox)| outbox.live() > 0)
                .map(|(&dest, _)| dest)
                .collect();
            if pending.is_empty() {
                continue;
            }
            let now = cell.node.available_at;
            for dest in pending {
                let before = cell.node.outboxes[&dest].live();
                self.with_ctx(index, &mut cell, |ctx| ctx.drain_outbox(dest, now, true))?;
                let after = cell.node.outboxes.get(&dest).map_or(0, |o| o.live());
                shipped |= after < before;
            }
        }
        if !shipped {
            let wedged = self.slots.iter().any(|slot| {
                let cell = slot.cell.lock().expect("node cell poisoned");
                cell.node.outboxes.values().any(|outbox| outbox.live() > 0)
            });
            if wedged {
                return Err(DatalogError::Eval(
                    "streaming outboxes wedged at quiescence: held deltas with no credit".into(),
                ));
            }
        }
        Ok(shipped)
    }
}

impl Deployment {
    /// Run to the distributed fixpoint on the event-driven executor: spawn a
    /// worker pool, seed it with the bootstrap batches and any pre-queued
    /// network traffic, coordinate quiescence, then fold every per-task
    /// shard back into the deployment so reports, stats, and subsequent
    /// ticks are indistinguishable from a reference-mode run.
    pub(crate) fn run_reactor(&mut self) -> Result<DeploymentReport> {
        let node_count = self.nodes.len();
        let lanes = LinkLanes::new(node_count);
        // Drain anything already scheduled on the reference network —
        // injected adversarial payloads, pre-run retract traffic — into the
        // mailboxes as seeded work.
        let mut seeded = 0i64;
        while let Some((deliver_at, message)) = self.network.next_delivery() {
            lanes.push(deliver_at, message);
            seeded += 1;
        }
        let slots: Vec<NodeSlot> = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(|node| NodeSlot {
                cell: Mutex::new(NodeCell {
                    node,
                    timing: TimingStats::new(node_count),
                    stats: NetworkStats::new(node_count),
                    floors: HashMap::new(),
                    bootstrapped: false,
                }),
                sched: AtomicU8::new(QUEUED),
            })
            .collect();
        let now = Instant::now();
        let reactor = Reactor {
            slots,
            lanes,
            runq: Mutex::new((0..node_count).map(|index| (index, now)).collect()),
            runq_cv: Condvar::new(),
            // One unit per node for its bootstrap batch, plus the seeds.
            outstanding: AtomicI64::new(node_count as i64 + seeded),
            quiet: Mutex::new(()),
            quiet_cv: Condvar::new(),
            budget_spent: AtomicUsize::new(0),
            budget_exceeded: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            error: Mutex::new(None),
            shared: &self.shared,
            config: &self.config,
        };
        let threads = self.config.reactor.threads.max(1).min(node_count.max(1));
        secureblox_telemetry::gauge!("reactor_threads").set(threads as i64);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| reactor.worker());
            }
            reactor.coordinate();
        });
        // Teardown: fold the per-task shards back into the deployment.
        let Reactor {
            slots,
            budget_exceeded,
            error,
            ..
        } = reactor;
        for slot in slots {
            let cell = slot.cell.into_inner().expect("node cell poisoned");
            self.network.absorb_stats(&cell.stats);
            self.timing.merge(cell.timing);
            self.nodes.push(cell.node);
        }
        if let Some(error) = error.into_inner().expect("error slot poisoned") {
            return Err(error);
        }
        if budget_exceeded.into_inner() {
            return Err(self.budget_exceeded_error());
        }
        Ok(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_with_threads_clamps_to_one() {
        let config = ReactorConfig::with_threads(0);
        assert!(config.enabled);
        assert_eq!(config.threads, 1);
        assert!(!ReactorConfig::disabled().enabled);
    }
}
