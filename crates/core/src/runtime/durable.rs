//! Checkpointing and crash recovery for durable deployments.
//!
//! With [`DeploymentConfig::durability`] set, every node appends its
//! committed base facts to an HMAC-chained WAL as it runs.
//! [`Deployment::checkpoint`] then writes one Merkle-committed,
//! content-addressed snapshot per node, and [`Deployment::recover`] rebuilds
//! an equivalent deployment from disk alone:
//!
//! 1. re-provision the deterministic parts (compiled program, key material,
//!    principal universe, shared facts) by re-running the normal build with
//!    the same `app_source`/`specs`/`config`;
//! 2. per node, open the [`FactStore`] — which verifies every content
//!    address, the snapshot Merkle root, and the full WAL HMAC chain,
//!    surfacing tampering as typed [`StoreError`]s;
//! 3. replay the snapshot facts as one transaction, then the WAL suffix
//!    grouped by the original commit watermarks, re-running the seminaive
//!    fixpoint — derived state is rebuilt, never read from disk;
//! 4. resume each node's virtual clock at its watermark. Assert exports keep
//!    at-least-once semantics across a crash (messages in flight at the
//!    crash may never have arrived): the outbox dedup set omits every tuple
//!    still derived, so the first `run()` re-ships it and receivers absorb
//!    duplicates idempotently. Retract exports are recovered from the WAL's
//!    export-cursor records: a cursor entry whose tuple is *no longer*
//!    derived marks a withdrawal that may have been lost in flight, so it is
//!    restored into the outbox set and the first `run()` re-sends the
//!    retraction under the originally recorded signature.
//!
//! A recovered deployment answers the same queries and commits to the same
//! per-node Merkle roots as the one that was dropped.

use crate::runtime::engine::{Deployment, DeploymentConfig, NodeSpec};
use secureblox_datalog::error::DatalogError;
use secureblox_datalog::value::Tuple;
use secureblox_store::{derive_node_key, DurabilityConfig, FactStore, StoreError, WalOp};
use std::fmt;
use std::path::PathBuf;

/// Errors from the durability layer of a deployment.  Storage corruption and
/// engine replay failures stay distinguishable so callers (and tests) can
/// react to tampering specifically.
#[derive(Debug)]
pub enum DurabilityError {
    /// The deployment was built without [`DeploymentConfig::durability`].
    Disabled,
    /// A typed storage failure: I/O, tampered WAL record, content-address
    /// mismatch, corrupt snapshot, Merkle-root mismatch.
    Store(StoreError),
    /// The Datalog engine failed while replaying recovered facts.
    Engine(DatalogError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Disabled => {
                write!(f, "durability is not enabled on this deployment")
            }
            DurabilityError::Store(e) => write!(f, "store error: {e}"),
            DurabilityError::Engine(e) => write!(f, "replay error: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Disabled => None,
            DurabilityError::Store(e) => Some(e),
            DurabilityError::Engine(e) => Some(e),
        }
    }
}

impl From<StoreError> for DurabilityError {
    fn from(e: StoreError) -> Self {
        DurabilityError::Store(e)
    }
}

impl From<DatalogError> for DurabilityError {
    fn from(e: DatalogError) -> Self {
        DurabilityError::Engine(e)
    }
}

/// One node's checkpoint: the snapshot identity the test suite compares
/// across crash/recover boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    pub principal: String,
    /// Merkle root (hex) committing the node's entire dynamic EDB.
    pub root: String,
    /// Virtual-time watermark (ns) the snapshot was taken at.
    pub watermark: u64,
    /// Content address of the snapshot manifest object.
    pub manifest_id: String,
}

impl Deployment {
    /// The durability configuration, if any.
    pub fn durability(&self) -> Option<&DurabilityConfig> {
        self.config.durability.as_ref()
    }

    /// Snapshot every node's base-fact state at its current virtual time.
    /// Returns one [`CheckpointInfo`] per node, in node order.
    pub fn checkpoint(&mut self) -> Result<Vec<CheckpointInfo>, DurabilityError> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            let store = node.store.as_mut().ok_or(DurabilityError::Disabled)?;
            let info = store.checkpoint(node.available_at)?;
            out.push(CheckpointInfo {
                principal: node.info.principal.clone(),
                root: info.root_hex(),
                watermark: info.watermark,
                manifest_id: info.manifest_id,
            });
        }
        Ok(out)
    }

    /// The Merkle root (hex) each node's current base-fact state commits to,
    /// computed in memory without writing a snapshot.
    pub fn edb_roots(&self) -> Result<Vec<(String, String)>, DurabilityError> {
        self.nodes
            .iter()
            .map(|node| {
                let store = node.store.as_ref().ok_or(DurabilityError::Disabled)?;
                Ok((node.info.principal.clone(), store.base_root_hex()))
            })
            .collect()
    }

    /// Rebuild a deployment from the durable stores under `dir`, verifying
    /// integrity and re-converging to the fixpoint the dropped deployment
    /// had.  `app_source`, `specs`, and `config` must match the original
    /// build — the deterministic provisioned state (compiled program, keys,
    /// principal universe) is a pure function of them and is reconstructed,
    /// not persisted.
    pub fn recover(
        dir: impl Into<PathBuf>,
        app_source: &str,
        specs: &[NodeSpec],
        config: DeploymentConfig,
    ) -> Result<Deployment, DurabilityError> {
        // The `dir` argument always names the stores being recovered from —
        // a config that happens to carry a different durability dir (e.g. a
        // restore-from-backup) must not silently win over it.  Other
        // durability settings (flush cadence) are kept from the config.
        let durability = match config.durability.clone() {
            Some(mut durability) => {
                durability.dir = dir.into();
                durability
            }
            None => DurabilityConfig::new(dir.into()),
        };
        // Build without durability so the fresh-build guard (which refuses
        // non-empty stores) does not trip; stores attach below, after replay.
        let mut stripped = config;
        stripped.durability = None;
        let mut deployment = Deployment::build(app_source, specs, stripped)?;
        deployment.config.durability = Some(durability.clone());

        for index in 0..deployment.nodes.len() {
            let principal = deployment.nodes[index].info.principal.clone();
            let key = derive_node_key(deployment.config.seed, &principal);
            let mut store = FactStore::open(durability.node_dir(&principal), &key)?;
            store.set_flush_each_batch(durability.flush_each_batch);

            let node = &mut deployment.nodes[index];
            // Once a node's store holds any history, the WAL supersedes the
            // bootstrap facts (they were logged when the original deployment
            // committed them at virtual time zero).  An empty store means the
            // original crashed between build and run — keep the bootstrap so
            // a subsequent run() commits (and logs) it normally.
            if store.wal_seq() > 0 || store.snapshot().is_some() {
                node.pending_bootstrap.clear();
            }

            // Replay the snapshot as one transaction, then the WAL suffix
            // with the original commit boundaries (records sharing a
            // watermark committed together).
            let snapshot_facts = store.recovered_snapshot_facts().to_vec();
            if !snapshot_facts.is_empty() {
                node.workspace.transaction(snapshot_facts)?;
            }
            let mut pending: Vec<(String, Tuple)> = Vec::new();
            let mut pending_mark = 0u64;
            for record in store.recovered_suffix().to_vec() {
                match record.op {
                    WalOp::Insert => {
                        if !pending.is_empty() && record.watermark != pending_mark {
                            node.workspace.transaction(std::mem::take(&mut pending))?;
                        }
                        pending_mark = record.watermark;
                        pending.push((record.pred, record.tuple));
                    }
                    WalOp::Retract => {
                        if !pending.is_empty() {
                            node.workspace.transaction(std::mem::take(&mut pending))?;
                        }
                        node.workspace.retract(vec![(record.pred, record.tuple)])?;
                    }
                    // Export-cursor records carry no base facts; the store
                    // already folded them into its cursor state at open.
                    WalOp::ExportMark | WalOp::ExportClear => {}
                }
            }
            if !pending.is_empty() {
                node.workspace.transaction(pending)?;
            }
            // Derive IDB state even when the store was empty (the provisioned
            // facts alone may drive rules).
            node.workspace.fixpoint()?;

            // Rebuild the outbox dedup set from the WAL's export cursor.
            // Entries whose tuple is still derived stay OUT of `sent`: a
            // crash may have dropped the assert in flight, so the first
            // run() re-ships it and receivers absorb the duplicate as an
            // idempotent set insert (at-least-once asserts).  Entries whose
            // tuple is *gone* from the fixpoint are the §9.3 gap: the local
            // retraction committed but the withdrawal message may never
            // have left.  Restoring them into `sent` (with the signature
            // the export went out under) and flagging a retraction scan
            // makes the first flush re-send exactly those Retract deltas.
            for (pred, tuple, signature) in store.export_cursor() {
                if !node.workspace.contains_fact(&pred, &tuple) {
                    node.sent.insert((pred, tuple), signature);
                }
            }
            node.needs_retraction_scan = !node.sent.is_empty();
            node.available_at = store.watermark();
            node.store = Some(store);
        }
        Ok(deployment)
    }
}
