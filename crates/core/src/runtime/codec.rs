//! Tuple serialization and the authenticated update-stream envelope.
//!
//! The canonical tuple byte encoding lives in
//! [`secureblox_datalog::codec`] — it is shared between this runtime (network
//! payloads, signature coverage, AES plaintexts) and the durable fact store
//! (WAL records, content-addressed snapshot objects).  This module re-exports
//! it and adds the network-level framing of the **update stream**: every
//! inter-node batch is an ordered sequence of signed assert/retract deltas,
//! so withdrawals travel through exactly the same channel — and under exactly
//! the same signatures and encryption — as new derivations.

pub use secureblox_datalog::codec::{deserialize_tuple, serialize_tuple};

use secureblox_datalog::value::Tuple;

/// The two operations an update-stream delta can describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// A newly derived `says`/`anon_says` tuple the receiver should import.
    Assert,
    /// A previously asserted tuple the origin has withdrawn; the receiver
    /// verifies the same detached signature that authenticated the assert and
    /// DRed-maintains everything derived from the fact.
    Retract,
}

/// One signed delta of the update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateDelta {
    pub op: DeltaOp,
    /// The parameter predicate `T` of `says[T]` (not the mangled name).
    pub pred: String,
    /// The full `says$T` tuple, including the two principal columns (for
    /// anonymity-circuit traffic: the payload columns only).
    pub tuple: Tuple,
    /// Detached signature bytes (empty for NoAuth and circuit traffic).
    pub signature: Vec<u8>,
}

/// A serialized update-stream batch: a per-link sequence number and the
/// ordered deltas.  Streams are FIFO per link (the simulator's ordered send
/// models a TCP-like channel), and `seq` lets a receiver drop stale
/// duplicates so every delta is applied at most once.
///
/// The envelope is natively **multi-delta**: the streaming scheduler's
/// per-link outbox coalesces up to `SECUREBLOX_BATCH_MAX` consecutive deltas
/// (assert-then-retract pairs for the same fact annihilate before shipping)
/// into one envelope, which the receiver drains as one run-grouped batch
/// apply.  The per-envelope path simply ships whatever one flush produced.
/// Either way the wire format is identical — a batched stream decodes with
/// the same [`UpdateEnvelope::decode`] as a per-flush stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateEnvelope {
    /// Position of this envelope in the sender's per-link stream (1-based).
    pub seq: u64,
    /// The deltas, in the order the receiver must apply them.
    pub deltas: Vec<UpdateDelta>,
}

impl UpdateEnvelope {
    /// Serialize the envelope into message-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.deltas.len() as u32).to_be_bytes());
        for delta in &self.deltas {
            out.push(match delta.op {
                DeltaOp::Assert => 0,
                DeltaOp::Retract => 1,
            });
            out.extend_from_slice(&(delta.pred.len() as u32).to_be_bytes());
            out.extend_from_slice(delta.pred.as_bytes());
            out.extend_from_slice(&serialize_tuple(&delta.tuple));
            out.extend_from_slice(&(delta.signature.len() as u32).to_be_bytes());
            out.extend_from_slice(&delta.signature);
        }
        out
    }

    /// Parse an envelope from message-payload bytes.
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take4 = |data: &[u8], pos: &mut usize, what: &str| -> Result<usize, String> {
            let bytes = data
                .get(*pos..*pos + 4)
                .ok_or_else(|| format!("truncated {what}"))?;
            *pos += 4;
            Ok(u32::from_be_bytes(bytes.try_into().expect("4 bytes")) as usize)
        };
        let seq_bytes = data.get(0..8).ok_or("truncated stream sequence")?;
        pos += 8;
        let seq = u64::from_be_bytes(seq_bytes.try_into().expect("8 bytes"));
        let count = take4(data, &mut pos, "delta count")?;
        let mut deltas = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let op = match data.get(pos) {
                Some(0) => DeltaOp::Assert,
                Some(1) => DeltaOp::Retract,
                Some(other) => return Err(format!("unknown delta op {other}")),
                None => return Err("truncated delta op".into()),
            };
            pos += 1;
            let len = take4(data, &mut pos, "predicate length")?;
            let pred_bytes = data.get(pos..pos + len).ok_or("truncated predicate name")?;
            pos += len;
            let pred =
                String::from_utf8(pred_bytes.to_vec()).map_err(|_| "invalid predicate name")?;
            let tuple = deserialize_tuple(data, &mut pos)?;
            let sig_len = take4(data, &mut pos, "signature length")?;
            let signature = data
                .get(pos..pos + sig_len)
                .ok_or("truncated signature")?
                .to_vec();
            pos += sig_len;
            deltas.push(UpdateDelta {
                op,
                pred,
                tuple,
                signature,
            });
        }
        if pos != data.len() {
            return Err("trailing bytes after deltas".into());
        }
        Ok(UpdateEnvelope { seq, deltas })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::value::Value;

    fn sample_tuple() -> Tuple {
        vec![
            Value::str("n1"),
            Value::Int(-42),
            Value::Bool(true),
            Value::bytes(vec![1, 2, 3]),
            Value::Entity(77),
            Value::pred("path"),
            Value::str("unicode ✓"),
        ]
    }

    fn sample_envelope() -> UpdateEnvelope {
        UpdateEnvelope {
            seq: 9,
            deltas: vec![
                UpdateDelta {
                    op: DeltaOp::Assert,
                    pred: "path".into(),
                    tuple: sample_tuple(),
                    signature: vec![9u8; 64],
                },
                UpdateDelta {
                    op: DeltaOp::Retract,
                    pred: "rehashA".into(),
                    tuple: vec![Value::Int(1)],
                    signature: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let envelope = sample_envelope();
        let back = UpdateEnvelope::decode(&envelope.encode()).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.deltas[0].op, DeltaOp::Assert);
        assert_eq!(back.deltas[1].op, DeltaOp::Retract);
        assert!(back.deltas[1].signature.is_empty());
    }

    #[test]
    fn empty_envelope_roundtrip() {
        let envelope = UpdateEnvelope {
            seq: 1,
            deltas: Vec::new(),
        };
        let back = UpdateEnvelope::decode(&envelope.encode()).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let bytes = sample_envelope().encode();
        for cut in [0usize, 3, 7, 11, 13, bytes.len() - 1] {
            assert!(
                UpdateEnvelope::decode(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(UpdateEnvelope::decode(&extended).is_err(), "trailing byte");
    }

    #[test]
    fn decode_rejects_unknown_op() {
        let mut bytes = sample_envelope().encode();
        // First op byte sits right after seq (8) + count (4).
        bytes[12] = 7;
        assert!(UpdateEnvelope::decode(&bytes).is_err());
    }
}
