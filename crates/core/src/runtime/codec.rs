//! Tuple serialization.
//!
//! The generated export rules in the paper call a `serialize[P]` user-defined
//! function before signing and shipping tuples; this module provides that
//! canonical byte encoding.  The same encoding is used (a) as the message
//! payload on the simulated network, (b) as the byte string that HMAC / RSA
//! signatures cover, and (c) as the plaintext of AES-encrypted batches, so
//! the communication-overhead figures count exactly what the crypto operates
//! on.

use secureblox_datalog::value::{Tuple, Value};

/// Encode a single value.
fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        Value::Bytes(b) => {
            out.push(3);
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
        Value::Entity(e) => {
            out.push(4);
            out.extend_from_slice(&e.to_be_bytes());
        }
        Value::Pred(p) => {
            out.push(5);
            out.extend_from_slice(&(p.len() as u32).to_be_bytes());
            out.extend_from_slice(p.as_bytes());
        }
    }
}

fn read_value(data: &[u8], pos: &mut usize) -> Result<Value, String> {
    let tag = *data.get(*pos).ok_or("truncated value tag")?;
    *pos += 1;
    let take = |data: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>, String> {
        let slice = data.get(*pos..*pos + n).ok_or("truncated value body")?.to_vec();
        *pos += n;
        Ok(slice)
    };
    match tag {
        0 => {
            let bytes = take(data, pos, 8)?;
            Ok(Value::Int(i64::from_be_bytes(bytes.try_into().expect("8 bytes"))))
        }
        1 | 5 => {
            let len_bytes = take(data, pos, 4)?;
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            let body = take(data, pos, len)?;
            let text = String::from_utf8(body).map_err(|_| "invalid utf-8 in string value")?;
            Ok(if tag == 1 { Value::str(text) } else { Value::pred(text) })
        }
        2 => {
            let byte = take(data, pos, 1)?;
            Ok(Value::Bool(byte[0] != 0))
        }
        3 => {
            let len_bytes = take(data, pos, 4)?;
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            Ok(Value::bytes(take(data, pos, len)?))
        }
        4 => {
            let bytes = take(data, pos, 8)?;
            Ok(Value::Entity(u64::from_be_bytes(bytes.try_into().expect("8 bytes"))))
        }
        other => Err(format!("unknown value tag {other}")),
    }
}

/// Serialize a tuple of values (the byte string covered by signatures).
pub fn serialize_tuple(tuple: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.len() * 12);
    out.extend_from_slice(&(tuple.len() as u32).to_be_bytes());
    for value in tuple {
        write_value(&mut out, value);
    }
    out
}

/// Deserialize a tuple serialized with [`serialize_tuple`].
pub fn deserialize_tuple(data: &[u8], pos: &mut usize) -> Result<Tuple, String> {
    let len_bytes = data.get(*pos..*pos + 4).ok_or("truncated tuple length")?;
    *pos += 4;
    let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let mut tuple = Vec::with_capacity(len);
    for _ in 0..len {
        tuple.push(read_value(data, pos)?);
    }
    Ok(tuple)
}

/// A serialized `says` export: the said predicate, the tuple, and an optional
/// detached signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaysEnvelope {
    /// The parameter predicate `T` of `says[T]` (not the mangled name).
    pub pred: String,
    /// The full `says$T` tuple, including the two principal columns.
    pub tuple: Tuple,
    /// Detached signature bytes (empty for NoAuth).
    pub signature: Vec<u8>,
}

impl SaysEnvelope {
    /// Serialize the envelope into message-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.pred.len() as u32).to_be_bytes());
        out.extend_from_slice(self.pred.as_bytes());
        out.extend_from_slice(&serialize_tuple(&self.tuple));
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parse an envelope from message-payload bytes.
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let len_bytes = data.get(0..4).ok_or("truncated predicate length")?;
        pos += 4;
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let pred_bytes = data.get(pos..pos + len).ok_or("truncated predicate name")?;
        pos += len;
        let pred = String::from_utf8(pred_bytes.to_vec()).map_err(|_| "invalid predicate name")?;
        let tuple = deserialize_tuple(data, &mut pos)?;
        let sig_len_bytes = data.get(pos..pos + 4).ok_or("truncated signature length")?;
        pos += 4;
        let sig_len = u32::from_be_bytes(sig_len_bytes.try_into().expect("4 bytes")) as usize;
        let signature = data.get(pos..pos + sig_len).ok_or("truncated signature")?.to_vec();
        Ok(SaysEnvelope { pred, tuple, signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        vec![
            Value::str("n1"),
            Value::Int(-42),
            Value::Bool(true),
            Value::bytes(vec![1, 2, 3]),
            Value::Entity(77),
            Value::pred("path"),
            Value::str("unicode ✓"),
        ]
    }

    #[test]
    fn tuple_roundtrip() {
        let tuple = sample_tuple();
        let bytes = serialize_tuple(&tuple);
        let mut pos = 0;
        let back = deserialize_tuple(&bytes, &mut pos).unwrap();
        assert_eq!(back, tuple);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn envelope_roundtrip() {
        let envelope = SaysEnvelope {
            pred: "path".into(),
            tuple: sample_tuple(),
            signature: vec![9u8; 64],
        };
        let bytes = envelope.encode();
        let back = SaysEnvelope::decode(&bytes).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn envelope_without_signature() {
        let envelope = SaysEnvelope { pred: "rehashA".into(), tuple: vec![Value::Int(1)], signature: Vec::new() };
        let back = SaysEnvelope::decode(&envelope.encode()).unwrap();
        assert!(back.signature.is_empty());
    }

    #[test]
    fn decode_rejects_truncation() {
        let envelope = SaysEnvelope { pred: "p".into(), tuple: sample_tuple(), signature: vec![1, 2] };
        let bytes = envelope.encode();
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(SaysEnvelope::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(deserialize_tuple(&[0, 0, 0, 5, 9], &mut 0).is_err());
    }

    #[test]
    fn serialization_is_canonical() {
        // Equal tuples encode to equal bytes (required for signature checks).
        assert_eq!(serialize_tuple(&sample_tuple()), serialize_tuple(&sample_tuple()));
        assert_ne!(
            serialize_tuple(&[Value::Int(1)]),
            serialize_tuple(&[Value::Int(2)])
        );
        // Str and Pred with the same text are distinguishable.
        assert_ne!(
            serialize_tuple(&[Value::str("path")]),
            serialize_tuple(&[Value::pred("path")])
        );
    }
}
