//! Tuple serialization and the `says` export envelope.
//!
//! The canonical tuple byte encoding lives in
//! [`secureblox_datalog::codec`] — it is shared between this runtime (network
//! payloads, signature coverage, AES plaintexts) and the durable fact store
//! (WAL records, content-addressed snapshot objects).  This module re-exports
//! it and adds the network-level [`SaysEnvelope`] framing.

pub use secureblox_datalog::codec::{deserialize_tuple, serialize_tuple};

use secureblox_datalog::value::Tuple;

/// A serialized `says` export: the said predicate, the tuple, and an optional
/// detached signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaysEnvelope {
    /// The parameter predicate `T` of `says[T]` (not the mangled name).
    pub pred: String,
    /// The full `says$T` tuple, including the two principal columns.
    pub tuple: Tuple,
    /// Detached signature bytes (empty for NoAuth).
    pub signature: Vec<u8>,
}

impl SaysEnvelope {
    /// Serialize the envelope into message-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.pred.len() as u32).to_be_bytes());
        out.extend_from_slice(self.pred.as_bytes());
        out.extend_from_slice(&serialize_tuple(&self.tuple));
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parse an envelope from message-payload bytes.
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let len_bytes = data.get(0..4).ok_or("truncated predicate length")?;
        pos += 4;
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let pred_bytes = data.get(pos..pos + len).ok_or("truncated predicate name")?;
        pos += len;
        let pred = String::from_utf8(pred_bytes.to_vec()).map_err(|_| "invalid predicate name")?;
        let tuple = deserialize_tuple(data, &mut pos)?;
        let sig_len_bytes = data.get(pos..pos + 4).ok_or("truncated signature length")?;
        pos += 4;
        let sig_len = u32::from_be_bytes(sig_len_bytes.try_into().expect("4 bytes")) as usize;
        let signature = data
            .get(pos..pos + sig_len)
            .ok_or("truncated signature")?
            .to_vec();
        Ok(SaysEnvelope {
            pred,
            tuple,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::value::Value;

    fn sample_tuple() -> Tuple {
        vec![
            Value::str("n1"),
            Value::Int(-42),
            Value::Bool(true),
            Value::bytes(vec![1, 2, 3]),
            Value::Entity(77),
            Value::pred("path"),
            Value::str("unicode ✓"),
        ]
    }

    #[test]
    fn envelope_roundtrip() {
        let envelope = SaysEnvelope {
            pred: "path".into(),
            tuple: sample_tuple(),
            signature: vec![9u8; 64],
        };
        let bytes = envelope.encode();
        let back = SaysEnvelope::decode(&bytes).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn envelope_without_signature() {
        let envelope = SaysEnvelope {
            pred: "rehashA".into(),
            tuple: vec![Value::Int(1)],
            signature: Vec::new(),
        };
        let back = SaysEnvelope::decode(&envelope.encode()).unwrap();
        assert!(back.signature.is_empty());
    }

    #[test]
    fn decode_rejects_truncation() {
        let envelope = SaysEnvelope {
            pred: "p".into(),
            tuple: sample_tuple(),
            signature: vec![1, 2],
        };
        let bytes = envelope.encode();
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(SaysEnvelope::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
