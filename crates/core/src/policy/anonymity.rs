//! Anonymity policies (paper §6.2): the `anon_says` construct.
//!
//! The forward direction sends a fact from an initiator to the endpoint of an
//! anonymity circuit through onion-layered encryption; the endpoint only
//! learns the circuit identifier, never the initiator.  The backward
//! direction returns reply tuples along the same circuit.
//!
//! The Datalog-visible surface consists of the generic predicates
//! `anon_says[T]` (initiator side), `anon_says_id_in[T]` (endpoint inbox,
//! keyed by circuit), `anon_says_id_out[T]` (endpoint outbox, keyed by
//! circuit) and `anon_reply[T]` (initiator inbox).  Circuit construction,
//! layered encryption and relay forwarding are performed by the distributed
//! runtime with per-hop keys, mirroring the paper's `anon_export` /
//! `anon_encrypt` rules.

/// Policy text declaring the anonymity mapping and its constraints for every
/// predicate marked `anon_exportable`.
pub fn anonymity_policy() -> String {
    // The anon_says counterpart carries no sender-verifiable signature — "it
    // would be detrimental to a principal's anonymity for her to identify
    // herself as the author of the message" (paper footnote 3) — so the only
    // constraint is on the receiving principal and the payload types.
    "anon_says[T] = AT, predicate(AT),\n\
     '{\n\
       AT(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).\n\
     }\n\
     <-- predicate(T), anon_exportable(T).\n\n\
     anon_says(P, AP) --> anon_exportable(P).\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::parse_program;

    #[test]
    fn anonymity_policy_parses() {
        parse_program(&anonymity_policy()).unwrap();
    }

    #[test]
    fn policy_guards_on_anon_exportable() {
        let policy = anonymity_policy();
        assert!(policy.contains("anon_exportable(T)"));
        assert!(policy.contains("anon_says(P, AP) --> anon_exportable(P)"));
    }
}
