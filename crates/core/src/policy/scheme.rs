//! Security configuration: which authentication, confidentiality, trust and
//! authorization mechanisms the generated policies should use.

pub use secureblox_crypto::{AuthScheme, EncScheme};

/// How incoming `says` facts are accepted into local predicates (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustModel {
    /// "In a benign world, where a principal trusts all other principals, he
    /// may derive a fact for predicate T for every T fact said to him."
    TrustAll,
    /// Only facts said by principals in the local `trustworthy` relation are
    /// imported.
    Trustworthy,
    /// Per-predicate delegation: only principals in `trustworthyPerPred[T]`
    /// are trusted for predicate `T`.
    PerPredicate,
}

/// The complete security configuration of a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityConfig {
    /// Authentication scheme for exported tuples.
    pub auth: AuthScheme,
    /// Confidentiality scheme for exported batches.
    pub enc: EncScheme,
    /// RSA modulus size in bits (the paper uses 1024; the simulation defaults
    /// to 512 to keep key generation cheap — signature cost and size still
    /// dominate HMAC, which is the relationship the figures show).
    pub rsa_bits: usize,
    /// Trust/delegation model for imports.
    pub trust: TrustModel,
    /// Whether the `writeAccess` authorization constraint is generated.
    pub write_access: bool,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig {
            auth: AuthScheme::NoAuth,
            enc: EncScheme::None,
            rsa_bits: 512,
            trust: TrustModel::TrustAll,
            write_access: false,
        }
    }
}

impl SecurityConfig {
    /// Convenience constructor matching the paper's figure labels.
    pub fn new(auth: AuthScheme, enc: EncScheme) -> Self {
        SecurityConfig {
            auth,
            enc,
            ..Self::default()
        }
    }

    /// The label used in the paper's figures, e.g. `NoAuth`, `HMAC`, `RSA-AES`.
    pub fn label(&self) -> String {
        match self.enc {
            EncScheme::None => self.auth.label().to_string(),
            EncScheme::Aes128 => format!("{}-{}", self.auth.label(), self.enc.label()),
        }
    }

    /// Whether any RSA material must be provisioned.
    pub fn needs_rsa(&self) -> bool {
        self.auth == AuthScheme::Rsa
    }

    /// Whether pairwise shared secrets must be provisioned.
    pub fn needs_secrets(&self) -> bool {
        self.auth == AuthScheme::HmacSha1 || self.enc == EncScheme::Aes128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(
            SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None).label(),
            "NoAuth"
        );
        assert_eq!(
            SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None).label(),
            "HMAC"
        );
        assert_eq!(
            SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128).label(),
            "RSA-AES"
        );
        assert_eq!(
            SecurityConfig::new(AuthScheme::NoAuth, EncScheme::Aes128).label(),
            "NoAuth-AES"
        );
    }

    #[test]
    fn provisioning_needs() {
        assert!(!SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None).needs_secrets());
        assert!(SecurityConfig::new(AuthScheme::NoAuth, EncScheme::Aes128).needs_secrets());
        assert!(SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None).needs_secrets());
        assert!(SecurityConfig::new(AuthScheme::Rsa, EncScheme::None).needs_rsa());
        assert!(!SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None).needs_rsa());
    }
}
