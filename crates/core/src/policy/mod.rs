//! Security policies as BloxGenerics meta-programs.
//!
//! In SecureBlox the `says` construct, authorization, delegation, and
//! anonymity are *not* hard-wired into the runtime: they are DatalogLB /
//! BloxGenerics source text that is compiled together with the application
//! query (paper §3.2, §6).  This module generates that source text from a
//! [`SecurityConfig`] and compiles it with the application program.

pub mod anonymity;
pub mod says;
pub mod scheme;

pub use anonymity::anonymity_policy;
pub use says::{authorization_policy, says_policy};
pub use scheme::{SecurityConfig, TrustModel};

use secureblox_datalog::error::Result;
use secureblox_datalog::parse_program;
use secureblox_generics::{CompiledProgram, GenericsCompiler};

/// Compile an application program together with the policy sources generated
/// for `config` (plus any extra policy text) into plain DatalogLB.
pub fn compile_secured_program(
    app_source: &str,
    config: &SecurityConfig,
    extra_policies: &[String],
) -> Result<CompiledProgram> {
    let mut source = String::new();
    source.push_str(app_source);
    source.push('\n');
    source.push_str(&says_policy(config));
    for extra in extra_policies {
        source.push('\n');
        source.push_str(extra);
    }
    let program = parse_program(&source)?;
    GenericsCompiler::new().compile(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_crypto::{AuthScheme, EncScheme};

    #[test]
    fn compile_pipeline_produces_mappings_for_every_scheme() {
        let app = r#"
            link(N1, N2) -> node(N1), node(N2).
            reachable(X, Y) -> node(X), node(Y).
            exportable(`reachable).
            reachable(X, Y) <- link(X, Y).
        "#;
        for auth in [AuthScheme::NoAuth, AuthScheme::HmacSha1, AuthScheme::Rsa] {
            let config = SecurityConfig {
                auth,
                enc: EncScheme::None,
                ..SecurityConfig::default()
            };
            let compiled = compile_secured_program(app, &config, &[]).unwrap();
            assert_eq!(
                compiled.mapping("says", "reachable"),
                Some("says$reachable")
            );
        }
    }
}
