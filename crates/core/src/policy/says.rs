//! The customizable `says` policy (paper §3.2) and its variants.
//!
//! Everything here is *source text* in the DatalogLB / BloxGenerics dialect,
//! exactly as a SecureBlox user would write it: the meaning of `says` is not
//! baked into the runtime.  The distributed runtime only assumes the naming
//! convention that `says[T]` compiles to the concrete predicate `says$T` and
//! `sig[T]` to `sig$T`.

use super::scheme::{SecurityConfig, TrustModel};
use secureblox_crypto::AuthScheme;

/// The core authentication block: the `says` mapping, its type/authentication
/// constraint, the export-scope generic constraint, the import (delegation)
/// rule, and — depending on the scheme — signature generation and
/// verification.
pub fn says_policy(config: &SecurityConfig) -> String {
    let mut policy = String::new();

    // says[T] = ST: one "said" counterpart per exportable predicate, with the
    // constraint that both principals are known (simple authentication) and
    // the payload has T's types.
    policy.push_str(
        "says[T] = ST, predicate(ST),\n\
         '{\n\
           ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).\n\
         }\n\
         <-- predicate(T), exportable(T).\n\n",
    );

    // Compile-time scope check: only exportable predicates may be said.
    policy.push_str("says(P, SP) --> exportable(P).\n\n");

    // Import / trust delegation (paper §6.1).
    match config.trust {
        TrustModel::TrustAll => policy.push_str(
            "'{ T(V*) <- says[T](P, self[], V*). }\n<-- predicate(T), exportable(T).\n\n",
        ),
        TrustModel::Trustworthy => policy.push_str(
            "'{ T(V*) <- says[T](P, self[], V*), trustworthy(P). }\n\
             <-- predicate(T), exportable(T).\n\n",
        ),
        TrustModel::PerPredicate => policy.push_str(
            "'{ T(V*) <- says[T](P, self[], V*), trustworthyPerPred[T](P). }\n\
             <-- predicate(T), exportable(T).\n\n",
        ),
    }

    // Authorization (paper §3.2 "Authorization").
    if config.write_access {
        policy.push_str(&authorization_policy());
        policy.push('\n');
    }

    // Cryptographic signatures (paper §3.2 "Cryptography" and the HMAC
    // variant under "Alternate Cryptographic Scheme").
    match config.auth {
        AuthScheme::NoAuth => {}
        AuthScheme::Rsa => policy.push_str(
            "'{\n\
               sig[T](self[], P2, V*, S) <- says[T](self[], P2, V*), private_key[] = K, rsa_sign(K, V*, S).\n\
               says[T](P1, self[], V*) -> sig[T](P1, self[], V*, S), public_key(P1, K), rsa_verify(K, V*, S).\n\
             }\n\
             <-- predicate(T), exportable(T).\n\n",
        ),
        AuthScheme::HmacSha1 => policy.push_str(
            "'{\n\
               sig[T](self[], P2, V*, S) <- says[T](self[], P2, V*), secret(P2, K), hmac_sign(K, V*, S).\n\
               says[T](P1, self[], V*) -> sig[T](P1, self[], V*, S), secret(P1, K), hmac_verify(K, V*, S).\n\
             }\n\
             <-- predicate(T), exportable(T).\n\n",
        ),
    }
    policy
}

/// The write-access authorization constraint: "if a principal P1 wishes to
/// say a fact about predicate T, then P1 must have write-access to T".
pub fn authorization_policy() -> String {
    "'{ says[T](P1, P2, V*) -> writeAccess[T](P1). }\n<-- predicate(T), exportable(T).\n"
        .to_string()
}

/// A per-predicate delegation constraint restricting which principals may be
/// trusted for `pred` (paper §6.1's credit-agency example).
pub fn delegation_restriction(pred: &str, allowed: &str) -> String {
    format!("trustworthyPerPred[`{pred}](U) -> U = \"{allowed}\".\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_crypto::EncScheme;
    use secureblox_datalog::parse_program;

    fn parses(policy: &str) {
        parse_program(policy).unwrap_or_else(|e| panic!("policy does not parse: {e}\n{policy}"));
    }

    #[test]
    fn all_scheme_combinations_parse() {
        for auth in [AuthScheme::NoAuth, AuthScheme::HmacSha1, AuthScheme::Rsa] {
            for trust in [
                TrustModel::TrustAll,
                TrustModel::Trustworthy,
                TrustModel::PerPredicate,
            ] {
                for write_access in [false, true] {
                    let config = SecurityConfig {
                        auth,
                        enc: EncScheme::None,
                        trust,
                        write_access,
                        ..SecurityConfig::default()
                    };
                    parses(&says_policy(&config));
                }
            }
        }
    }

    #[test]
    fn rsa_policy_mentions_rsa_udfs_and_hmac_does_not() {
        let rsa = says_policy(&SecurityConfig::new(AuthScheme::Rsa, EncScheme::None));
        assert!(
            rsa.contains("rsa_sign") && rsa.contains("rsa_verify") && rsa.contains("private_key")
        );
        let hmac = says_policy(&SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None));
        assert!(hmac.contains("hmac_sign") && !hmac.contains("rsa_sign"));
        let noauth = says_policy(&SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None));
        assert!(!noauth.contains("sig[T]"));
    }

    #[test]
    fn trust_models_change_the_import_rule() {
        let all = says_policy(&SecurityConfig {
            trust: TrustModel::TrustAll,
            ..Default::default()
        });
        assert!(!all.contains("trustworthy(P)"));
        let some = says_policy(&SecurityConfig {
            trust: TrustModel::Trustworthy,
            ..Default::default()
        });
        assert!(some.contains("trustworthy(P)"));
        let per = says_policy(&SecurityConfig {
            trust: TrustModel::PerPredicate,
            ..Default::default()
        });
        assert!(per.contains("trustworthyPerPred[T](P)"));
    }

    #[test]
    fn delegation_restriction_parses() {
        parses(&delegation_restriction("creditscore", "CA"));
    }
}
