//! The secure parallel hash join use case (paper §7.2, evaluated in §8.2).
//!
//! Two tables are initially partitioned across the nodes by a hash of their
//! first key attribute.  To join on the *second* attribute, every node
//! rehashes its tuples on the join attribute and `says` them to the node
//! responsible for that hash range; the bucket owners join the co-located
//! tuples and `says` the results back to the initiator.

use crate::policy::SecurityConfig;
use crate::runtime::engine::{Deployment, DeploymentConfig, DeploymentReport, NodeSpec};
use crate::runtime::shard::ShardMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use secureblox_datalog::error::Result;
use secureblox_datalog::value::Value;
use secureblox_net::LatencyModel;
use std::time::Duration;

/// The DatalogLB program for the parallel hash join.
pub fn app_source() -> String {
    r#"
    // Schema: two tables joined on their second attribute.
    tableA(E1, E2) -> int[32](E1), int[32](E2).
    tableB(E3, E2) -> int[32](E3), int[32](E2).
    rehashA(E1, E2) -> int[32](E1), int[32](E2).
    rehashB(E3, E2) -> int[32](E3), int[32](E2).
    joinresult(E1, E2, E3) -> int[32](E1), int[32](E2), int[32](E3).
    prin_minhash[U] = Lo -> principal(U), int[32](Lo).
    prin_maxhash[U] = Hi -> principal(U), int[32](Hi).
    initiator[] = U -> principal(U).

    exportable(`rehashA).
    exportable(`rehashB).
    exportable(`joinresult).

    // Rehash both tables on the join attribute and say each tuple to the
    // principal whose hash range contains it (paper §7.2).
    says[`rehashA](self[], U, E1, E2)
      <- tableA(E1, E2), sha1hash(E2, H),
         prin_minhash[U] = Lo, prin_maxhash[U] = Hi,
         H >= Lo, H <= Hi.

    says[`rehashB](self[], U, E3, E2)
      <- tableB(E3, E2), sha1hash(E2, H),
         prin_minhash[U] = Lo, prin_maxhash[U] = Hi,
         H >= Lo, H <= Hi.

    // Join the co-located rehashed tuples and send results to the initiator.
    says[`joinresult](self[], U, E1, E2, E3)
      <- rehashA(E1, E2), rehashB(E3, E2), initiator[] = U.
    "#
    .to_string()
}

/// The same join on the runtime shard layer: the tables are declared sharded
/// in the [`ShardMap`] and the join is written partition-blind — no
/// `rehash` relations, no `prin_minhash`/`prin_maxhash` facts, no routing
/// rules.  The exchange planner classifies the join as both-sides shuffle on
/// the join attribute and generates the §7.2 rehash dataflow itself.
pub fn sharded_app_source() -> String {
    r#"
    tableA(E1, E2) -> int[32](E1), int[32](E2).
    tableB(E3, E2) -> int[32](E3), int[32](E2).
    joinresult(E1, E2, E3) -> int[32](E1), int[32](E2), int[32](E3).
    initiator[] = U -> principal(U).

    exportable(`joinresult).

    // Partition-blind join: the shard planner rewrites both body atoms to
    // their exchanged (rehashed-on-E2) copies.
    joinresult(E1, E2, E3) <- tableA(E1, E2), tableB(E3, E2).

    // Each member ships its partition of the result to the initiator; the
    // initiator's own partition is imported locally.
    says[`joinresult](self[], U, E1, E2, E3)
      <- joinresult(E1, E2, E3), initiator[] = U.
    "#
    .to_string()
}

/// Configuration of one hash-join experiment (defaults match §8.2).
#[derive(Debug, Clone)]
pub struct HashJoinConfig {
    pub num_nodes: usize,
    /// Tuples in table A (the paper uses 900).
    pub table_a_rows: usize,
    /// Tuples in table B (the paper uses 800).
    pub table_b_rows: usize,
    /// Number of distinct join values (the paper uses 72).
    pub distinct_join_values: usize,
    pub security: SecurityConfig,
    pub latency: LatencyModel,
    pub seed: u64,
}

impl Default for HashJoinConfig {
    fn default() -> Self {
        HashJoinConfig {
            num_nodes: 6,
            table_a_rows: 900,
            table_b_rows: 800,
            distinct_join_values: 72,
            security: SecurityConfig::default(),
            latency: LatencyModel::default(),
            seed: 1,
        }
    }
}

/// Outcome of a hash-join run.
#[derive(Debug, Clone)]
pub struct HashJoinOutcome {
    pub report: DeploymentReport,
    /// Join tuples received at the initiator.
    pub results_at_initiator: usize,
    /// The exact expected number of join results (computed from the input).
    pub expected_results: usize,
    /// Virtual completion times of the transactions at the initiator (the
    /// series behind Figures 10 and 11).
    pub initiator_completions: Vec<Duration>,
}

/// The principal name of node `i`.
pub fn principal_name(i: usize) -> String {
    format!("n{i}")
}

/// The partition hash — the same definition the engine's `sha1hash` UDF and
/// the shard ring use (`runtime::shard::shard_hash`).
fn bucket_hash(value: i64) -> i64 {
    crate::runtime::shard::shard_hash(&Value::Int(value))
}

/// A generated input table: `(join attribute, payload)` rows.
pub type Table = Vec<(i64, i64)>;

/// Generate the two input tables: join attributes are drawn uniformly from
/// `distinct_join_values` randomized values (as in §8.2).
pub fn generate_tables(config: &HashJoinConfig) -> (Table, Table) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let join_values: Vec<i64> = (0..config.distinct_join_values as i64)
        .map(|i| 10_000 + i * 7 + rng.gen_range(0..3))
        .collect();
    let table_a: Vec<(i64, i64)> = (0..config.table_a_rows as i64)
        .map(|i| {
            (
                i,
                *join_values.choose(&mut rng).expect("non-empty join values"),
            )
        })
        .collect();
    let table_b: Vec<(i64, i64)> = (0..config.table_b_rows as i64)
        .map(|i| {
            (
                100_000 + i,
                *join_values.choose(&mut rng).expect("non-empty join values"),
            )
        })
        .collect();
    (table_a, table_b)
}

/// The number of (E1, E2, E3) join results the tables should produce.
pub fn expected_join_size(table_a: &[(i64, i64)], table_b: &[(i64, i64)]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for (_, join) in table_b {
        *counts.entry(*join).or_insert(0usize) += 1;
    }
    table_a
        .iter()
        .map(|(_, join)| counts.get(join).copied().unwrap_or(0))
        .sum()
}

/// Build (but do not run) a deployment for the hash-join experiment.
pub fn build_deployment(config: &HashJoinConfig) -> Result<(Deployment, usize)> {
    let (table_a, table_b) = generate_tables(config);
    let expected = expected_join_size(&table_a, &table_b);
    let principals: Vec<String> = (0..config.num_nodes).map(principal_name).collect();

    // Initial partitioning: tuples are placed by a hash of their FIRST key
    // attribute (so a join on the second attribute requires rehashing).
    let mut specs: Vec<NodeSpec> = principals.iter().map(NodeSpec::new).collect();
    let place = |key: i64| (bucket_hash(key) % config.num_nodes as i64) as usize;
    for (e1, e2) in &table_a {
        specs[place(*e1)]
            .base_facts
            .push(("tableA".into(), vec![Value::Int(*e1), Value::Int(*e2)]));
    }
    for (e3, e2) in &table_b {
        specs[place(*e3)]
            .base_facts
            .push(("tableB".into(), vec![Value::Int(*e3), Value::Int(*e2)]));
    }

    // Hash-range assignment: split the positive i64 space evenly (the
    // prin_minhash / prin_maxhash relations of §7.2).
    let mut shared_facts: Vec<(String, Vec<Value>)> = Vec::new();
    let slice = i64::MAX / config.num_nodes as i64;
    for (i, principal) in principals.iter().enumerate() {
        let lo = slice * i as i64;
        let hi = if i + 1 == config.num_nodes {
            i64::MAX
        } else {
            slice * (i as i64 + 1) - 1
        };
        shared_facts.push((
            "prin_minhash".into(),
            vec![Value::str(principal), Value::Int(lo)],
        ));
        shared_facts.push((
            "prin_maxhash".into(),
            vec![Value::str(principal), Value::Int(hi)],
        ));
    }

    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        latency: config.latency.clone(),
        seed: config.seed,
        singletons: vec![("initiator".into(), Value::str(principal_name(0)))],
        shared_facts,
        ..DeploymentConfig::default()
    };
    Deployment::build(&app_source(), &specs, deployment_config).map(|d| (d, expected))
}

/// Build (but do not run) the shard-layer variant of the experiment: the
/// same generated tables handed to the runtime as *unplaced* shared facts —
/// [`Deployment::build`] routes every tuple to its ring owner.
pub fn build_sharded_deployment(config: &HashJoinConfig) -> Result<(Deployment, usize)> {
    let (table_a, table_b) = generate_tables(config);
    let expected = expected_join_size(&table_a, &table_b);
    let principals: Vec<String> = (0..config.num_nodes).map(principal_name).collect();
    let specs: Vec<NodeSpec> = principals.iter().map(NodeSpec::new).collect();

    let mut shared_facts: Vec<(String, Vec<Value>)> = Vec::new();
    for (e1, e2) in &table_a {
        shared_facts.push(("tableA".into(), vec![Value::Int(*e1), Value::Int(*e2)]));
    }
    for (e3, e2) in &table_b {
        shared_facts.push(("tableB".into(), vec![Value::Int(*e3), Value::Int(*e2)]));
    }

    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        latency: config.latency.clone(),
        seed: config.seed,
        singletons: vec![("initiator".into(), Value::str(principal_name(0)))],
        shared_facts,
        sharding: Some(
            ShardMap::new(principals)
                .shard("tableA", 0)
                .shard("tableB", 0),
        ),
        ..DeploymentConfig::default()
    };
    Deployment::build(&sharded_app_source(), &specs, deployment_config).map(|d| (d, expected))
}

/// Run the hash-join experiment.
pub fn run(config: &HashJoinConfig) -> Result<HashJoinOutcome> {
    let (mut deployment, expected_results) = build_deployment(config)?;
    let report = deployment.run()?;
    let initiator = principal_name(0);
    let results_at_initiator = deployment.query(&initiator, "joinresult").len();
    let initiator_completions = deployment.completion_times(&initiator);
    Ok(HashJoinOutcome {
        report,
        results_at_initiator,
        expected_results,
        initiator_completions,
    })
}

/// Run the shard-layer variant of the experiment.
pub fn run_sharded(config: &HashJoinConfig) -> Result<HashJoinOutcome> {
    let (mut deployment, expected_results) = build_sharded_deployment(config)?;
    let report = deployment.run()?;
    let initiator = principal_name(0);
    let results_at_initiator = deployment.query(&initiator, "joinresult").len();
    let initiator_completions = deployment.completion_times(&initiator);
    Ok(HashJoinOutcome {
        report,
        results_at_initiator,
        expected_results,
        initiator_completions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_crypto::{AuthScheme, EncScheme};

    fn small_config(auth: AuthScheme, enc: EncScheme) -> HashJoinConfig {
        HashJoinConfig {
            num_nodes: 3,
            table_a_rows: 60,
            table_b_rows: 50,
            distinct_join_values: 12,
            security: SecurityConfig::new(auth, enc),
            ..HashJoinConfig::default()
        }
    }

    #[test]
    fn table_generation_is_deterministic_and_sized() {
        let config = small_config(AuthScheme::NoAuth, EncScheme::None);
        let (a1, b1) = generate_tables(&config);
        let (a2, b2) = generate_tables(&config);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(a1.len(), 60);
        assert_eq!(b1.len(), 50);
        assert!(expected_join_size(&a1, &b1) > 0);
    }

    #[test]
    fn noauth_join_produces_exactly_the_expected_results() {
        let outcome = run(&small_config(AuthScheme::NoAuth, EncScheme::None)).unwrap();
        assert_eq!(
            outcome.results_at_initiator, outcome.expected_results,
            "{outcome:?}"
        );
        assert_eq!(outcome.report.rejected_batches, 0);
        assert!(!outcome.initiator_completions.is_empty());
    }

    #[test]
    fn rsa_aes_join_matches_noauth_results_with_more_bytes() {
        let plain = run(&small_config(AuthScheme::NoAuth, EncScheme::None)).unwrap();
        let secured = run(&small_config(AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
        assert_eq!(secured.results_at_initiator, plain.results_at_initiator);
        assert_eq!(secured.report.rejected_batches, 0);
        assert!(secured.report.per_node_kb > plain.report.per_node_kb);
        // Cryptography also slows the run down (Figure 10's right shift).
        assert!(secured.report.average_transaction >= plain.report.average_transaction);
    }
}
