//! The paper's use cases (§7), implemented against the public SecureBlox API.

pub mod anonjoin;
pub mod hashjoin;
pub mod pathvector;
