//! The anonymous join use case (paper §7.3).
//!
//! An anonymous user joins a small local table of interests with a large,
//! publicly available remote table without revealing her identity to the
//! table owner: requests travel over an onion-routed anonymity circuit
//! (`anon_says`), carry only a hash of the join key, and replies return along
//! the same circuit identified only by the circuit id.

use crate::policy::{anonymity_policy, SecurityConfig};
use crate::runtime::engine::{
    CircuitSpec, Deployment, DeploymentConfig, DeploymentReport, NodeSpec,
};
use secureblox_datalog::error::Result;
use secureblox_datalog::value::Value;
use secureblox_net::LatencyModel;

/// The DatalogLB program for the anonymous join.
pub fn app_source() -> String {
    r#"
    // Schema.
    interests(X, Y) -> int[32](X), int[32](Y).
    publicdata(X, Y) -> int[32](X), int[32](Y).
    req_publicdata(Hx, One) -> int[32](Hx), int[32](One).
    table_owner[] = U -> principal(U).

    anon_exportable(`req_publicdata).

    // Initiator: anonymously request all public tuples whose join key hashes
    // to the same value as one of my interests (paper §7.3).
    anon_says[`req_publicdata](self[], U, Hx, 1)
      <- interests(X, Y),
         table_owner[] = U,
         sha1hash(X, Hx).

    // Table owner: relay matching tuples back along the circuit they arrived
    // on.  The owner only ever sees the circuit identifier C.
    anon_says_id_out[`publicdata](C, X, Y)
      <- publicdata(X, Y),
         anon_says_id_in[`req_publicdata](C, Hx, One),
         sha1hash(X, Hx).
    "#
    .to_string()
}

/// Configuration of one anonymous-join experiment.
#[derive(Debug, Clone)]
pub struct AnonJoinConfig {
    /// Relays between the initiator and the table owner (the paper's
    /// Tor-style circuits use 3).
    pub num_relays: usize,
    /// Rows in the public table.
    pub public_rows: usize,
    /// Rows in the initiator's private interests table.
    pub interest_rows: usize,
    pub security: SecurityConfig,
    pub latency: LatencyModel,
    pub seed: u64,
}

impl Default for AnonJoinConfig {
    fn default() -> Self {
        AnonJoinConfig {
            num_relays: 3,
            public_rows: 200,
            interest_rows: 10,
            security: SecurityConfig::default(),
            latency: LatencyModel::default(),
            seed: 1,
        }
    }
}

/// Outcome of one anonymous-join run.
#[derive(Debug, Clone)]
pub struct AnonJoinOutcome {
    pub report: DeploymentReport,
    /// Public tuples that reached the initiator anonymously.
    pub replies_at_initiator: usize,
    /// The number of public tuples whose key matches an interest.
    pub expected_matches: usize,
    /// True if the table owner never stored the initiator's principal in any
    /// anonymity-path relation (the anonymity property the circuit provides).
    pub owner_never_saw_initiator: bool,
}

/// The initiator's principal name.
pub const INITIATOR: &str = "alice";
/// The table owner's principal name.
pub const OWNER: &str = "datahost";

/// Build (but do not run) the anonymous-join deployment: alice, the relays,
/// and the table owner, with the circuit pre-established.
pub fn build_deployment(config: &AnonJoinConfig) -> Result<Deployment> {
    let initiator = INITIATOR.to_string();
    let owner = OWNER.to_string();
    let relays: Vec<String> = (0..config.num_relays)
        .map(|i| format!("relay{i}"))
        .collect();

    // Interests are a subset of the public keys, so matches are guaranteed.
    let interests: Vec<(i64, i64)> = (0..config.interest_rows as i64)
        .map(|i| (i * 3, i))
        .collect();
    let publicdata: Vec<(i64, i64)> = (0..config.public_rows as i64)
        .map(|i| (i, 1000 + i))
        .collect();

    let mut specs = vec![NodeSpec::new(&initiator)];
    specs.extend(relays.iter().map(NodeSpec::new));
    specs.push(NodeSpec::new(&owner));
    for (x, y) in &interests {
        specs[0]
            .base_facts
            .push(("interests".into(), vec![Value::Int(*x), Value::Int(*y)]));
    }
    let owner_index = specs.len() - 1;
    for (x, y) in &publicdata {
        specs[owner_index]
            .base_facts
            .push(("publicdata".into(), vec![Value::Int(*x), Value::Int(*y)]));
    }

    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        latency: config.latency.clone(),
        seed: config.seed,
        singletons: vec![("table_owner".into(), Value::str(&owner))],
        circuits: vec![CircuitSpec {
            initiator,
            relays,
            endpoint: owner,
        }],
        extra_policies: vec![anonymity_policy()],
        ..DeploymentConfig::default()
    };
    Deployment::build(&app_source(), &specs, deployment_config)
}

/// Run the anonymous join.
pub fn run(config: &AnonJoinConfig) -> Result<AnonJoinOutcome> {
    // The same interest/public generators `build_deployment` seeds with:
    // interests are a subset of the public keys, so matches are guaranteed.
    let expected_matches = (0..config.interest_rows as i64)
        .map(|i| i * 3)
        .filter(|key| (0..config.public_rows as i64).contains(key))
        .count();

    let mut deployment = build_deployment(config)?;
    let report = deployment.run()?;

    let replies_at_initiator = deployment.query(INITIATOR, "anon_reply$publicdata").len();
    // Anonymity check: no relation at the owner holding anonymity-path state
    // mentions the initiator's principal.
    let owner_never_saw_initiator = [
        "anon_says_id_in$req_publicdata",
        "anon_says_id_out$publicdata",
    ]
    .iter()
    .all(|pred| {
        deployment
            .query(OWNER, pred)
            .iter()
            .all(|tuple| tuple.iter().all(|v| v.as_str() != Some(INITIATOR)))
    });
    Ok(AnonJoinOutcome {
        report,
        replies_at_initiator,
        expected_matches,
        owner_never_saw_initiator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_join_returns_matches_without_identifying_the_initiator() {
        let config = AnonJoinConfig {
            num_relays: 2,
            public_rows: 60,
            interest_rows: 5,
            ..AnonJoinConfig::default()
        };
        let outcome = run(&config).unwrap();
        assert!(outcome.expected_matches > 0);
        assert_eq!(
            outcome.replies_at_initiator, outcome.expected_matches,
            "{outcome:?}"
        );
        assert!(outcome.owner_never_saw_initiator);
        assert_eq!(outcome.report.rejected_batches, 0);
    }

    #[test]
    fn works_with_a_direct_circuit_of_zero_relays() {
        let config = AnonJoinConfig {
            num_relays: 0,
            public_rows: 30,
            interest_rows: 4,
            ..AnonJoinConfig::default()
        };
        let outcome = run(&config).unwrap();
        assert_eq!(outcome.replies_at_initiator, outcome.expected_matches);
    }
}
