//! The path-vector routing protocol use case (paper §7.1).
//!
//! A path-vector protocol is a distributed all-pairs-shortest-path
//! computation: links (paths of length one) are joined with known paths to
//! form longer paths, which are advertised — via `says` — to neighbours
//! together with their full hop composition (`pathlink`), so that nodes can
//! apply policy to the paths they accept.
//!
//! One behaviour of the paper's listing is worth calling out: a path entity
//! `P` can be advertised to the same node along two different branches, and
//! the second arrival then proposes a different `pathlink[P, H1]` composition
//! (or a different cost for `path[P, Src, Dst]`).  Under SecureBlox's
//! transactional semantics that batch violates the functional dependency and
//! rolls back — the route is unaffected because the first composition is
//! already installed.  The paper's footnote 4 acknowledges the same
//! modelling wrinkle.  Such rollbacks are reported separately from security
//! rejections as `DeploymentReport::conflicting_batches`
//! (`rejected_batches` stays zero in a benign run).

use crate::policy::SecurityConfig;
use crate::runtime::engine::{Deployment, DeploymentConfig, DeploymentReport, NodeSpec};
use crate::runtime::reactor::ReactorConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secureblox_datalog::error::Result;
use secureblox_datalog::value::Value;
use secureblox_net::LatencyModel;

/// The DatalogLB program for the path-vector protocol, as in the paper's
/// §7.1 listing (adapted to explicit node identifiers; see DESIGN.md).
pub fn app_source() -> String {
    r#"
    // Schema.
    pathvar(P) -> .
    link(N1, N2) -> node(N1), node(N2).
    path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).
    pathlink[P, H1] = H2 -> pathvar(P), node(H1), node(H2).
    bestcost[Src, Dst] = C -> node(Src), node(Dst), int[32](C).
    principal_node[U] = N -> principal(U), node(N).

    // The predicates exchanged between principals.
    exportable(`path).
    exportable(`pathlink).

    // Base case: a link from me to N is a path of cost one.
    pathvar(P),
    path[P, Me, N] = 1,
    pathlink[P, Me] = N
      <- link(Me, N),
         principal_node[self[]] = Me.

    // Every path key appearing locally names a path entity (imported paths
    // arrive before their pathvar membership is re-established).
    pathvar(P) <- path[P, Src, Dst] = C.
    pathvar(P) <- pathlink[P, H1] = H2.

    // Advertise best paths to each neighbour that is not already on the path,
    // extending the path by the link from the neighbour to me.
    says[`path](self[], U, P, N, N2, C + 1),
    says[`pathlink](self[], U, P, H1, H2),
    says[`pathlink](self[], U, P, N, Me)
      <- pathlink[P, H1] = H2,
         link(Me, N),
         path[P, Me, N2] = C,
         bestcost[Me, N2] = C,
         principal_node[U] = N,
         principal_node[self[]] = Me,
         N != N2,
         !pathlink[P, N] = _.

    // The best cost to each destination.
    bestcost[Src, Dst] = C <- agg<< C = min(Cx) >> path[P, Src, Dst] = Cx.
    "#
    .to_string()
}

/// Configuration of one path-vector experiment.
#[derive(Debug, Clone)]
pub struct PathVectorConfig {
    /// Number of SecureBlox instances (the paper sweeps 6..72).
    pub num_nodes: usize,
    /// Average node degree of the random input graph (the paper uses 3).
    pub avg_degree: usize,
    /// Explicit input topology.  When `None` (the default), a connected
    /// random graph with `avg_degree` is generated from `seed`, matching the
    /// paper's workload; the ablation benches pass regular topologies from
    /// [`secureblox_net::Topology`] here instead.
    pub edges: Option<Vec<(usize, usize)>>,
    pub security: SecurityConfig,
    pub latency: LatencyModel,
    pub seed: u64,
    /// Executor choice.  The default honours `SECUREBLOX_REACTOR`; the
    /// figure-reproduction byte/latency comparisons pin
    /// [`ReactorConfig::disabled`] because wire-byte totals under streaming
    /// coalescing are properties of the deterministic reference schedule.
    pub reactor: ReactorConfig,
}

impl Default for PathVectorConfig {
    fn default() -> Self {
        PathVectorConfig {
            num_nodes: 6,
            avg_degree: 3,
            edges: None,
            security: SecurityConfig::default(),
            latency: LatencyModel::default(),
            seed: 1,
            reactor: ReactorConfig::default(),
        }
    }
}

/// Outcome of one path-vector run.
#[derive(Debug, Clone)]
pub struct PathVectorOutcome {
    pub report: DeploymentReport,
    /// Total number of `bestcost` entries across all nodes (a sanity check of
    /// protocol progress: every node should learn a best cost to every node
    /// it can reach).
    pub best_cost_entries: usize,
    /// Number of nodes that learned a route to node 0.
    pub nodes_with_route_to_zero: usize,
}

/// Generate a connected random graph with roughly the requested average
/// degree: a ring (guaranteeing connectivity, degree 2) plus random extra
/// edges.  Edges are undirected; the link relation stores both directions.
pub fn random_graph(num_nodes: usize, avg_degree: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    if num_nodes < 2 {
        return edges;
    }
    for i in 0..num_nodes {
        edges.push((i, (i + 1) % num_nodes));
    }
    // The ring contributes degree 2; add (avg_degree - 2) * n / 2 extra edges.
    let extra = num_nodes * avg_degree.saturating_sub(2) / 2;
    let mut attempts = 0;
    let mut added = 0;
    while added < extra && attempts < extra * 20 {
        attempts += 1;
        let a = rng.gen_range(0..num_nodes);
        let b = rng.gen_range(0..num_nodes);
        if a == b {
            continue;
        }
        let edge = (a.min(b), a.max(b));
        if edges.contains(&edge) || edges.contains(&(edge.1, edge.0)) {
            continue;
        }
        edges.push(edge);
        added += 1;
    }
    edges
}

/// The principal name of node `i`.
pub fn principal_name(i: usize) -> String {
    format!("n{i}")
}

/// Build the per-node specifications for a graph: each node starts with its
/// outgoing links.
pub fn node_specs(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<NodeSpec> {
    let mut specs: Vec<NodeSpec> = (0..num_nodes)
        .map(|i| NodeSpec::new(principal_name(i)))
        .collect();
    for &(a, b) in edges {
        specs[a].base_facts.push((
            "link".into(),
            vec![Value::str(principal_name(a)), Value::str(principal_name(b))],
        ));
        specs[b].base_facts.push((
            "link".into(),
            vec![Value::str(principal_name(b)), Value::str(principal_name(a))],
        ));
    }
    specs
}

/// Build (but do not run) a deployment for the given configuration.
pub fn build_deployment(config: &PathVectorConfig) -> Result<Deployment> {
    let edges = config
        .edges
        .clone()
        .unwrap_or_else(|| random_graph(config.num_nodes, config.avg_degree, config.seed));
    let specs = node_specs(config.num_nodes, &edges);
    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        latency: config.latency.clone(),
        seed: config.seed,
        // The advertisement rule's "not already on the path" guard negates a
        // recursively maintained predicate — a locally stratified program.
        allow_recursive_negation: true,
        reactor: config.reactor.clone(),
        ..DeploymentConfig::default()
    };
    Deployment::build(&app_source(), &specs, deployment_config)
}

/// Withdraw the link between nodes `a` and `b` (both directions, as a real
/// link failure would): each endpoint retracts its `link` base fact, DRed
/// removes every path that used the link, and the withdrawals propagate to
/// the rest of the network as signed `Retract` deltas through the same
/// `says` channels the advertisements used.  Run the deployment afterwards
/// (`Deployment::run`) to re-converge on the surviving topology.
pub fn withdraw_link(deployment: &mut Deployment, a: usize, b: usize) -> Result<()> {
    let (pa, pb) = (principal_name(a), principal_name(b));
    deployment.retract(
        &pa,
        vec![("link".into(), vec![Value::str(&pa), Value::str(&pb)])],
    )?;
    deployment.retract(
        &pb,
        vec![("link".into(), vec![Value::str(&pb), Value::str(&pa)])],
    )?;
    Ok(())
}

/// Run the path-vector protocol to its distributed fixpoint.
pub fn run(config: &PathVectorConfig) -> Result<PathVectorOutcome> {
    let mut deployment = build_deployment(config)?;
    let report = deployment.run()?;
    let mut best_cost_entries = 0usize;
    let mut nodes_with_route_to_zero = 0usize;
    for i in 0..config.num_nodes {
        let principal = principal_name(i);
        let best = deployment.query(&principal, "bestcost");
        best_cost_entries += best.len();
        if i != 0
            && best
                .iter()
                .any(|t| t.get(1).and_then(|v| v.as_str()) == Some(principal_name(0).as_str()))
        {
            nodes_with_route_to_zero += 1;
        }
    }
    Ok(PathVectorOutcome {
        report,
        best_cost_entries,
        nodes_with_route_to_zero,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SecurityConfig;
    use secureblox_crypto::{AuthScheme, EncScheme};

    #[test]
    fn random_graph_is_connected_and_roughly_degree_three() {
        let n = 24;
        let edges = random_graph(n, 3, 7);
        // Ring guarantees connectivity.
        assert!(edges.len() >= n);
        let degree_sum: usize = 2 * edges.len();
        let avg = degree_sum as f64 / n as f64;
        assert!(avg >= 2.0 && avg <= 4.0, "average degree {avg}");
        // Deterministic for a seed.
        assert_eq!(edges, random_graph(n, 3, 7));
        assert_ne!(edges, random_graph(n, 3, 8));
    }

    #[test]
    fn explicit_star_topology_routes_through_the_hub() {
        // A star around n0: every other node's only neighbour is the hub, so
        // every best cost to a non-adjacent node is exactly 2.
        let num_nodes = 5;
        let edges: Vec<(usize, usize)> = (1..num_nodes).map(|i| (0, i)).collect();
        let config = PathVectorConfig {
            num_nodes,
            edges: Some(edges),
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            ..PathVectorConfig::default()
        };
        let outcome = run(&config).unwrap();
        assert_eq!(outcome.nodes_with_route_to_zero, num_nodes - 1);
        let deployment = {
            let mut d = build_deployment(&config).unwrap();
            d.run().unwrap();
            d
        };
        // Leaf n1's best costs: 1 to the hub, 2 to every other leaf.
        let best = deployment.query(&principal_name(1), "bestcost");
        let mut costs: Vec<(String, i64)> = best
            .iter()
            .map(|t| (t[1].as_str().unwrap().to_string(), t[2].as_int().unwrap()))
            .collect();
        costs.sort();
        assert!(costs.contains(&("n0".to_string(), 1)));
        for leaf in 2..num_nodes {
            assert!(costs.contains(&(principal_name(leaf), 2)), "{costs:?}");
        }
    }

    #[test]
    fn six_node_protocol_converges_with_noauth() {
        let config = PathVectorConfig {
            num_nodes: 6,
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            ..PathVectorConfig::default()
        };
        let outcome = run(&config).unwrap();
        // Every node should know a best cost to several destinations and a
        // route to node 0 (the graph is connected).
        assert_eq!(outcome.nodes_with_route_to_zero, 5, "{outcome:?}");
        assert!(outcome.best_cost_entries >= 6 * 5, "{outcome:?}");
        // No security rejections in a benign run; duplicate advertisements of
        // the same path entity may be dropped as FD conflicts (module docs).
        assert_eq!(outcome.report.rejected_batches, 0, "{outcome:?}");
        assert!(outcome.report.fixpoint_latency.as_nanos() > 0);
    }

    #[test]
    fn route_withdrawal_reconverges_the_star() {
        // Star around hub n0.  Cutting the n0–n1 spoke disconnects n1: after
        // the withdrawals propagate, no node may still hold a route to n1,
        // and n1 must have lost its routes — while every other leaf keeps its
        // hub route.  This is distributed retraction end to end: the hub's
        // DRed un-derives its advertisements, the leaves receive signed
        // Retract deltas, and their own cascaded withdrawals fan back out.
        let num_nodes = 5;
        let edges: Vec<(usize, usize)> = (1..num_nodes).map(|i| (0, i)).collect();
        let config = PathVectorConfig {
            num_nodes,
            edges: Some(edges),
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            ..PathVectorConfig::default()
        };
        let mut deployment = build_deployment(&config).unwrap();
        deployment.run().unwrap();
        assert!(deployment
            .query(&principal_name(2), "bestcost")
            .iter()
            .any(|t| t[1].as_str() == Some("n1")));

        withdraw_link(&mut deployment, 0, 1).unwrap();
        let report = deployment.run().unwrap();
        assert!(report.retractions_applied > 0, "{report:?}");

        for i in 0..num_nodes {
            let best = deployment.query(&principal_name(i), "bestcost");
            let routes_to_n1 = best.iter().any(|t| t[1].as_str() == Some("n1"));
            if i == 1 {
                assert!(best.is_empty(), "n1 is disconnected: {best:?}");
                continue;
            }
            assert!(!routes_to_n1, "n{i} still routes to n1: {best:?}");
            if i == 0 {
                // The hub keeps a direct route to every surviving leaf.
                for leaf in 2..num_nodes {
                    assert!(
                        best.iter()
                            .any(|t| t[1].as_str() == Some(principal_name(leaf).as_str())),
                        "hub lost its route to n{leaf}: {best:?}"
                    );
                }
            } else {
                assert!(
                    best.iter().any(|t| t[1].as_str() == Some("n0")),
                    "n{i} lost its hub route: {best:?}"
                );
            }
        }
    }

    #[test]
    fn hmac_protocol_converges_and_costs_more_than_noauth() {
        let base = PathVectorConfig {
            num_nodes: 6,
            ..PathVectorConfig::default()
        };
        let noauth = run(&PathVectorConfig {
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            ..base.clone()
        })
        .unwrap();
        let hmac = run(&PathVectorConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            ..base
        })
        .unwrap();
        assert_eq!(hmac.nodes_with_route_to_zero, 5);
        assert_eq!(hmac.report.rejected_batches, 0);
        // The HMAC tag adds per-message bytes (Figure 6's ordering).
        assert!(hmac.report.per_node_kb > noauth.report.per_node_kb);
    }
}
