//! Ablation D: sensitivity of the path-vector results to the input topology.
//!
//! The paper evaluates only random graphs of average degree three; this
//! ablation runs the same protocol over regular topologies to separate what
//! the security schemes cost from what the graph shape costs (a star
//! converges in two rounds, a ring needs O(n) rounds, a full mesh floods).

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox::apps::pathvector::{self, PathVectorConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};
use secureblox_net::Topology;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_topology");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let security = SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None);
    for topology in [
        Topology::Ring,
        Topology::Star,
        Topology::Grid,
        Topology::paper_default(),
    ] {
        let config = PathVectorConfig {
            num_nodes: 8,
            edges: Some(topology.edges(8, 1)),
            security: security.clone(),
            ..PathVectorConfig::default()
        };
        group.bench_function(topology.label(), |b| {
            b.iter(|| pathvector::run(&config).expect("path-vector run failed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
