//! Figure 12: per-node communication overhead for the secure hash join as
//! the experiment grows.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_bench::{hashjoin_overhead_series, hashjoin_schemes, Scale};

fn bench(c: &mut Criterion) {
    let points = hashjoin_overhead_series(Scale::Quick, &hashjoin_schemes());
    for point in &points {
        println!(
            "fig12 {:<8} nodes={} per-node-KB={:.2}",
            point.label, point.nodes, point.per_node_kb
        );
    }
    let mut group = c.benchmark_group("fig12_hashjoin_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in hashjoin_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| hashjoin_overhead_series(Scale::Bench, std::slice::from_ref(&scheme)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
