//! Figure 4: path-vector fixpoint latency vs. network size, no encryption.
//! Benchmarks one full distributed run per authentication scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_bench::{pathvector_point, plain_schemes};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_fixpoint_latency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in plain_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| pathvector_point(6, &scheme, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
