//! Horizontal-sharding scaling: aggregate sustained updates/sec and join
//! throughput as the partition count grows at **fixed per-node data size**
//! (weak scaling), at 6 / 18 / 36 nodes.
//!
//! The workload is the shard-layer hash join (`BENCH_APP` below, the §8.2
//! table shape): both tables are declared sharded on their first key
//! column, the join is written partition-blind, and the exchange planner
//! generates the both-sides shuffle on the join attribute.  Every
//! exchanged tuple rides the signed update stream, and each partition
//! keeps its own shard of the result (no collection sink — see
//! `BENCH_APP`).  Tables grow linearly with the partition count, so
//! per-partition work stays constant and the *aggregate* rate — tuples
//! exchanged (and join results produced) per second of virtual fixpoint
//! latency — measures how capacity grows with the group.
//!
//! Before reporting any number, the bench asserts:
//!
//! * the sharded join result (union across partitions) is **tuple-identical**
//!   to an unsharded single-node reference over the same tables, and matches
//!   the combinatorially expected join size;
//! * two independent durable sharded runs land on **bit-identical per-node
//!   EDB Merkle roots** — the sharded outcome is deterministic down to each
//!   partition's store commitment.
//!
//! Writes `BENCH_shard_scaling.json` (to `SECUREBLOX_BENCH_DIR` or the
//! working directory).  CI's regression gate compares the aggregate
//! updates/sec at 6 nodes against the committed artifact.
//! `CRITERION_QUICK=1` runs the 6-node point only and tags the report so
//! the gate skips monotonicity; `SECUREBLOX_SHARD_BENCH_NODES` overrides
//! the sweep.

use secureblox::apps::hashjoin::{
    expected_join_size, generate_tables, principal_name, HashJoinConfig,
};
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, ShardMap, StreamingConfig};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::path::PathBuf;
use std::time::Duration;

/// Per-partition table sizes (the §8.2 shape scaled down per node).
const ROWS_A_PER_NODE: usize = 60;
const ROWS_B_PER_NODE: usize = 50;
const DISTINCT_PER_NODE: usize = 18;

/// The bench workload: the partition-blind join with **no collection sink**.
/// The hashjoin app's `sharded_app_source` additionally ships every result
/// to a single initiator, which is the right outcome shape for the §7.2
/// figure but the wrong thing to weak-scale: virtual time charges each
/// node's transactions serially, so a global sink serializes O(total
/// results) at one node and the sweep measures the funnel, not the shard
/// plane.  Here each partition keeps its shard of `joinresult` (the shuffle
/// lands both sides of every match at the join-value's ring owner) and the
/// bench verifies the *union* across partitions against the unsharded
/// reference.
const BENCH_APP: &str = r#"
    tableA(E1, E2) -> int[32](E1), int[32](E2).
    tableB(E3, E2) -> int[32](E3), int[32](E2).
    joinresult(E1, E2, E3) -> int[32](E1), int[32](E2), int[32](E3).

    // Partition-blind join: the shard planner rewrites both body atoms to
    // their exchanged (rehashed-on-E2) copies.
    joinresult(E1, E2, E3) <- tableA(E1, E2), tableB(E3, E2).
"#;

fn tables_for(n: usize) -> HashJoinConfig {
    HashJoinConfig {
        num_nodes: n,
        table_a_rows: ROWS_A_PER_NODE * n,
        table_b_rows: ROWS_B_PER_NODE * n,
        distinct_join_values: DISTINCT_PER_NODE * n,
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        seed: 7,
        ..HashJoinConfig::default()
    }
}

fn table_facts(config: &HashJoinConfig) -> Vec<(String, Tuple)> {
    let (table_a, table_b) = generate_tables(config);
    let mut facts = Vec::with_capacity(table_a.len() + table_b.len());
    for (e1, e2) in table_a {
        facts.push(("tableA".to_string(), vec![Value::Int(e1), Value::Int(e2)]));
    }
    for (e3, e2) in table_b {
        facts.push(("tableB".to_string(), vec![Value::Int(e3), Value::Int(e2)]));
    }
    facts
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-shard-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ShardedResult {
    /// Virtual time to fixpoint — N nodes computing in parallel.
    virtual_latency: Duration,
    /// Tuples that crossed the exchange plane (extension of the generated
    /// `shard_xchg_*` relations, each tuple landing at exactly one owner).
    exchanged: usize,
    exchange_bytes: usize,
    join_results: Vec<Tuple>,
    roots: Vec<(String, String)>,
    skew: f64,
}

fn run_sharded(n: usize, trial: usize) -> ShardedResult {
    let config = tables_for(n);
    let dir = fresh_dir(&format!("n{n}-t{trial}"));
    let principals: Vec<String> = (0..n).map(principal_name).collect();
    let specs: Vec<NodeSpec> = principals.iter().map(NodeSpec::new).collect();
    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        seed: config.seed,
        shared_facts: table_facts(&config),
        sharding: Some(
            ShardMap::new(principals.clone())
                .shard("tableA", 0)
                .shard("tableB", 0),
        ),
        // The streaming scheduler is the shard plane's production delivery
        // path: exchange deltas coalesce into multi-delta envelopes and every
        // delta applies through the seeded snapshot-free transaction.  The
        // per-envelope path re-runs a full O(database) fixpoint per delivered
        // tuple, which measures the seed executor, not the shard plane.
        streaming: StreamingConfig::with_knobs(64, 256),
        durability: Some(DurabilityConfig::new(&dir)),
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(BENCH_APP, &specs, deployment_config)
        .expect("build sharded join deployment");
    let report = deployment.run().expect("sharded join converges");

    let mut exchanged = 0usize;
    for principal in &principals {
        exchanged += deployment.query(principal, "shard_xchg_c1_tableA").len();
        exchanged += deployment.query(principal, "shard_xchg_c1_tableB").len();
    }
    let shard_view = report.shard.expect("sharded run reports the shard plane");
    if std::env::var_os("SECUREBLOX_SHARD_BENCH_DEBUG").is_some() {
        eprintln!(
            "  n={n} txns {} p50 {:?} p99 {:?}",
            report.total_transactions, report.apply_latency_p50, report.apply_latency_p99
        );
        let mut conv = report.convergence_times.clone();
        conv.sort();
        eprintln!(
            "  conv min {:?} p50 {:?} max {:?}",
            conv.first(),
            conv.get(conv.len() / 2),
            conv.last()
        );
        let mut spans: Vec<_> = report.telemetry.clone();
        spans.sort_by_key(|s| std::cmp::Reverse(s.sum));
        for s in spans.iter().take(12) {
            eprintln!(
                "    {:<44} count {:>7} sum {:>8.1}ms p50 {:>9}ns",
                s.name,
                s.count,
                s.sum as f64 / 1e6,
                s.p50
            );
        }
    }
    let result = ShardedResult {
        virtual_latency: report.fixpoint_latency,
        exchanged,
        exchange_bytes: shard_view.exchange_bytes,
        join_results: sorted(deployment.query_union("joinresult")),
        roots: deployment.edb_roots().expect("durable roots"),
        skew: shard_view.skew,
    };
    drop(deployment);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The unsharded reference: every table row on one node, the same
/// partition-blind program, no shard map.
fn run_unsharded_reference(n: usize) -> Vec<Tuple> {
    let config = tables_for(n);
    let mut spec = NodeSpec::new(principal_name(0));
    spec.base_facts = table_facts(&config);
    let deployment_config = DeploymentConfig {
        security: config.security.clone(),
        seed: config.seed,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(BENCH_APP, &[spec], deployment_config)
        .expect("build unsharded reference");
    deployment.run().expect("unsharded reference converges");
    sorted(deployment.query("n0", "joinresult"))
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| serialize_tuple(t));
    tuples
}

fn main() {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let node_counts: Vec<usize> = match std::env::var("SECUREBLOX_SHARD_BENCH_NODES") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) if quick => vec![6],
        Err(_) => vec![6, 18, 36],
    };

    let mut entries = Vec::new();
    let mut update_rates = Vec::new();
    let mut join_rates = Vec::new();
    for &n in &node_counts {
        eprintln!("shard_scaling: n={n} ...");
        let config = tables_for(n);
        let (table_a, table_b) = generate_tables(&config);
        let expected = expected_join_size(&table_a, &table_b);

        let mut sharded = run_sharded(n, 0);
        let repeat = run_sharded(n, 1);
        assert_eq!(
            sharded.roots, repeat.roots,
            "two sharded runs diverged in per-node EDB Merkle roots at {n} nodes"
        );
        // Virtual latency folds in measured per-transaction wall time, so it
        // carries host noise; the minimum of the trials is the steadier
        // estimate (contents and roots are bit-identical across them).
        sharded.virtual_latency = sharded.virtual_latency.min(repeat.virtual_latency);
        let reference = run_unsharded_reference(n);
        assert_eq!(
            sharded.join_results.len(),
            expected,
            "sharded join size mismatch at {n} nodes"
        );
        assert_eq!(
            sharded.join_results, reference,
            "sharded join diverged from the unsharded reference at {n} nodes"
        );

        let seconds = sharded.virtual_latency.as_secs_f64().max(1e-9);
        let updates_per_sec = sharded.exchanged as f64 / seconds;
        let join_per_sec = expected as f64 / seconds;
        update_rates.push(updates_per_sec);
        join_rates.push(join_per_sec);
        println!(
            "bench shard_scaling/n{n:<3} exchanged {:>6} updates {updates_per_sec:>10.0}/s  \
             join {expected:>6} results {join_per_sec:>10.0}/s  virtual {:?}  skew {:.2}  \
             (results+roots verified)",
            sharded.exchanged, sharded.virtual_latency, sharded.skew
        );
        entries.push(format!(
            r#"    {{"n": {n}, "rows_per_node": {}, "exchanged_updates": {}, "exchange_bytes": {}, "virtual_fixpoint_ns": {}, "updates_per_sec": {updates_per_sec:.1}, "join_results": {expected}, "join_per_sec": {join_per_sec:.1}, "partition_skew": {:.3}, "results_match_unsharded": true, "merkle_roots_deterministic": true}}"#,
            ROWS_A_PER_NODE + ROWS_B_PER_NODE,
            sharded.exchanged,
            sharded.exchange_bytes,
            sharded.virtual_latency.as_nanos(),
            sharded.skew,
        ));
    }

    // Weak scaling: on the full sweep, aggregate throughput must grow with
    // the partition count.
    if node_counts.len() >= 2 && node_counts.windows(2).all(|w| w[0] < w[1]) {
        for rates in [&update_rates, &join_rates] {
            for window in rates.windows(2) {
                assert!(
                    window[1] > window[0],
                    "aggregate throughput must grow with partition count: {rates:?}"
                );
            }
        }
    }

    let dir = std::env::var_os("SECUREBLOX_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).expect("create bench report dir");
    let path = dir.join("BENCH_shard_scaling.json");
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"quick\": {quick},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write bench report");
    println!("bench report written to {}", path.display());
}
