//! Figure 11: CDF of join-result transaction completion at the initiator of
//! an 18-node secure hash join (6 nodes at bench scale).

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_bench::{hashjoin_completion_cdf, hashjoin_schemes, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_hashjoin_cdf_18");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in hashjoin_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| hashjoin_completion_cdf(6, &scheme, Scale::Bench, 20));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
