//! Reactor-executor scaling: sustained update-stream deltas applied per
//! second, single-threaded virtual-time reference loop vs the event-driven
//! reactor executor, at 6 / 18 / 36 nodes.
//!
//! The workload is the `stream_throughput` gossip flood on a ring: every
//! node exports its own `link` facts *and everything it has heard* to every
//! other principal — `O(n²)` signed deltas riding many small cascading
//! transactions.  The streaming scheduler (coalescing + credit backpressure)
//! is ON in both modes, so the comparison isolates the *executor*: one
//! global virtual-time loop on one core vs per-node worker tasks woken by
//! message arrival.
//!
//! Every node runs durably, and the bench asserts the final EDB **Merkle
//! roots are bit-identical** between the two executors before reporting any
//! number — outcome equivalence is the precondition for the comparison to
//! mean anything.
//!
//! Writes `BENCH_reactor_scaling.json` (to `SECUREBLOX_BENCH_DIR` or the
//! working directory) with updates/sec per node count for both executors —
//! CI's regression gate compares the reactor updates/sec against the
//! committed artifact.  `CRITERION_QUICK=1` runs the 6-node point only and
//! tags the report so the gate skips it.  `SECUREBLOX_REACTOR_BENCH_NODES`
//! overrides the node-count sweep.

use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, ReactorConfig, StreamingConfig};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const GOSSIP_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    says[`remote_link](self[], U, X, Y) <- remote_link(X, Y), principal(U), U != self[].
"#;

fn principal(i: usize) -> String {
    format!("n{i}")
}

/// Ring specs: node i owns directed links to both neighbours.
fn ring_specs(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| {
            let mut spec = NodeSpec::new(principal(i));
            for j in [(i + 1) % n, (i + n - 1) % n] {
                spec.base_facts.push((
                    "link".into(),
                    vec![Value::str(principal(i)), Value::str(principal(j))],
                ));
            }
            spec
        })
        .collect()
}

struct ModeResult {
    wall: Duration,
    updates: usize,
    /// Per-principal EDB Merkle roots at the fixpoint.
    roots: Vec<(String, String)>,
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sbx-reactor-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_mode(n: usize, label: &str, reactor: ReactorConfig) -> ModeResult {
    eprintln!("reactor_scaling: n={n} {label} ...");
    let dir = fresh_dir(&format!("{label}-n{n}"));
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        streaming: StreamingConfig::with_knobs(
            secureblox::runtime::stream::DEFAULT_BATCH_MAX,
            secureblox::runtime::stream::DEFAULT_QUEUE_HIGH_WATER,
        ),
        durability: Some(DurabilityConfig::new(&dir)),
        reactor,
        ..DeploymentConfig::default()
    };
    let mut deployment =
        Deployment::build(GOSSIP_APP, &ring_specs(n), config).expect("build gossip deployment");
    let start = Instant::now();
    deployment.run().expect("gossip flood converges");
    let wall = start.elapsed();

    let mut updates = 0usize;
    for i in 0..n {
        updates += deployment.query(&principal(i), "says$remote_link").len();
    }
    let roots = deployment.edb_roots().expect("durable roots");
    drop(deployment);
    let _ = std::fs::remove_dir_all(&dir);
    let result = ModeResult {
        wall,
        updates,
        roots,
    };
    eprintln!(
        "reactor_scaling: n={n} {label} done in {:?} ({} updates)",
        result.wall, result.updates
    );
    result
}

fn rate(result: &ModeResult) -> f64 {
    result.updates as f64 / result.wall.as_secs_f64().max(1e-9)
}

fn mode_json(result: &ModeResult) -> String {
    format!(
        r#"{{"updates": {}, "wall_ns": {}, "updates_per_sec": {:.1}}}"#,
        result.updates,
        result.wall.as_nanos(),
        rate(result),
    )
}

fn main() {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let node_counts: Vec<usize> = match std::env::var("SECUREBLOX_REACTOR_BENCH_NODES") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) if quick => vec![6],
        Err(_) => vec![6, 18, 36],
    };
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut entries = Vec::new();
    for &n in &node_counts {
        let reference = run_mode(n, "reference", ReactorConfig::disabled());
        let reactor = run_mode(n, "reactor", ReactorConfig::with_threads(threads));
        assert_eq!(
            reference.roots, reactor.roots,
            "final EDB Merkle roots diverged between executors at {n} nodes"
        );
        assert_eq!(
            reference.updates, reactor.updates,
            "update count diverged between executors at {n} nodes"
        );
        let speedup = rate(&reactor) / rate(&reference).max(1e-9);
        println!(
            "bench reactor_scaling/n{n:<3} reference {:>10.0}/s  reactor({threads}t) {:>10.0}/s  \
             speedup {speedup:>5.2}x  (roots identical)",
            rate(&reference),
            rate(&reactor),
        );
        entries.push(format!(
            r#"    {{"n": {n}, "reference": {}, "reactor": {}, "threads": {threads}, "speedup": {speedup:.2}, "merkle_roots_identical": true}}"#,
            mode_json(&reference),
            mode_json(&reactor),
        ));
    }
    let dir = std::env::var_os("SECUREBLOX_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join("BENCH_reactor_scaling.json");
    let json = format!(
        "{{\n  \"bench\": \"reactor_scaling\",\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write bench report");
    println!("bench report written to {}", path.display());
}
