//! Micro-benchmarks for the durable fact store: WAL append throughput, and
//! checkpoint / recovery latency as the EDB grows.
//!
//! `wal_append_1k` appends 1000 records per iteration to a fresh chain
//! position (the HMAC chain makes each append one HMAC-SHA1 over ~64 bytes).
//! `checkpoint` re-encodes and re-hashes every relation into the (warm)
//! content-addressed store; `recover` opens the directory from scratch —
//! verifying the snapshot's content addresses, the Merkle root, and the full
//! WAL HMAC chain — which is exactly the crash-recovery path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use secureblox_datalog::Value;
use secureblox_store::{derive_node_key, FactStore};
use std::path::PathBuf;

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tuple(i: usize) -> Vec<Value> {
    vec![
        Value::str(format!("n{}", i % 97)),
        Value::str(format!("n{}", i % 89)),
        Value::Int(i as i64),
    ]
}

/// Build a store holding `n` link facts, checkpointed.
fn seeded_store(label: &str, n: usize) -> (PathBuf, Vec<u8>) {
    let dir = fresh_dir(label);
    let key = derive_node_key(1, "bench");
    let mut store = FactStore::open(&dir, &key).unwrap();
    let facts: Vec<(String, Vec<Value>)> = (0..n).map(|i| ("link".to_string(), tuple(i))).collect();
    store.set_flush_each_batch(false);
    store
        .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1)
        .unwrap();
    store.checkpoint(1).unwrap();
    (dir, key)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro");

    // WAL append throughput: 1000 records per iteration.
    let append_dir = fresh_dir("append");
    let key = derive_node_key(1, "bench");
    let mut wal_store = FactStore::open(&append_dir, &key).unwrap();
    wal_store.set_flush_each_batch(false);
    let batch: Vec<(String, Vec<Value>)> =
        (0..1000).map(|i| ("link".to_string(), tuple(i))).collect();
    group.throughput(Throughput::Elements(1000));
    group.bench_function("wal_append_1k", |b| {
        b.iter(|| {
            wal_store
                .log_inserts(batch.iter().map(|(p, t)| (p.as_str(), t)), 1)
                .unwrap()
        })
    });

    // Checkpoint latency and full recovery latency vs EDB size.
    for n in [100usize, 1_000, 10_000] {
        let (dir, key) = seeded_store(&format!("size{n}"), n);
        let mut open_store = FactStore::open(&dir, &key).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("checkpoint", n), &n, |b, _| {
            b.iter(|| open_store.checkpoint(2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("recover", n), &n, |b, _| {
            b.iter(|| {
                let store = FactStore::open(&dir, &key).unwrap();
                assert_eq!(store.base_fact_count(), n);
                store
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
