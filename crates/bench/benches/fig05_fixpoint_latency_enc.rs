//! Figure 5: path-vector fixpoint latency vs. network size, with encryption.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_bench::{encrypted_schemes, pathvector_point};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_fixpoint_latency_enc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in encrypted_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| pathvector_point(6, &scheme, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
