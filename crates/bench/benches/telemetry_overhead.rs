//! Telemetry-overhead series: the same planned triple join (the
//! `pool_triple_join_10k` workload from `engine_micro`) measured with the
//! metric registry enabled — the default — and disabled, proving the
//! instrumentation stays inside its ≤5% budget on the hottest evaluation
//! path.  The disabled run exercises the cheap path the telemetry crate
//! promises: histogram records early-return on one relaxed atomic load and
//! timers never read the clock.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_datalog::{EvalConfig, EvalOptions, Value, Workspace};
use std::time::{Duration, Instant};

const TRIPLE_JOIN_TUPLES: usize = 10_000;
const POOL_WORKERS: usize = 4;

/// `out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).` over three 10k-tuple chain
/// relations, evaluated on a persistent 4-worker pool — the same shape and
/// width as `engine_micro/pool_triple_join_10k_w4`.
fn triple_join_workspace() -> Workspace {
    let mut ws = Workspace::with_config(EvalConfig {
        use_planner: true,
        exec: EvalOptions::with_workers(POOL_WORKERS),
        ..EvalConfig::default()
    });
    ws.install_source("out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).")
        .unwrap();
    for i in 0..TRIPLE_JOIN_TUPLES as i64 {
        ws.assert_fact("r", vec![Value::Int(i), Value::Int(i + 1)])
            .unwrap();
        ws.assert_fact("s", vec![Value::Int(i + 1), Value::Int(i + 2)])
            .unwrap();
        ws.assert_fact("t", vec![Value::Int(i + 2), Value::Int(i + 3)])
            .unwrap();
    }
    ws
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    // Registry enabled (the default shipped configuration).
    secureblox_telemetry::set_metrics_enabled(true);
    group.bench_function("pool_triple_join_10k_enabled", |b| {
        let mut ws = triple_join_workspace();
        ws.fixpoint().unwrap();
        b.iter(|| ws.fixpoint().unwrap().iterations)
    });

    // Registry disabled: histograms early-return, timers skip the clock.
    // Counters/gauges stay live by design (their cost matches the plan-stats
    // counters the engine always paid), so this isolates the *gated* cost.
    secureblox_telemetry::set_metrics_enabled(false);
    group.bench_function("pool_triple_join_10k_disabled", |b| {
        let mut ws = triple_join_workspace();
        ws.fixpoint().unwrap();
        b.iter(|| ws.fixpoint().unwrap().iterations)
    });
    secureblox_telemetry::set_metrics_enabled(true);
    group.finish();

    // Paired interleaved measurement for the overhead figure itself: the two
    // Criterion series above run minutes apart under different cache/thermal
    // conditions, so the committed percentage comes from alternating
    // enabled/disabled evaluations on the same pre-built workspace.
    if std::env::var_os("CRITERION_QUICK").is_some() {
        return;
    }
    let mut ws = triple_join_workspace();
    ws.fixpoint().unwrap();
    let rounds = 15usize;
    let mut enabled_total = Duration::ZERO;
    let mut disabled_total = Duration::ZERO;
    for _ in 0..rounds {
        secureblox_telemetry::set_metrics_enabled(true);
        let t0 = Instant::now();
        std::hint::black_box(ws.fixpoint().unwrap().iterations);
        enabled_total += t0.elapsed();
        secureblox_telemetry::set_metrics_enabled(false);
        let t0 = Instant::now();
        std::hint::black_box(ws.fixpoint().unwrap().iterations);
        disabled_total += t0.elapsed();
    }
    secureblox_telemetry::set_metrics_enabled(true);
    let enabled_mean = enabled_total / rounds as u32;
    let disabled_mean = disabled_total / rounds as u32;
    let overhead_pct =
        (enabled_mean.as_secs_f64() / disabled_mean.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!(
        "bench telemetry_overhead/paired_overhead                 enabled {enabled_mean:>12?}  \
         disabled {disabled_mean:>12?}  overhead {overhead_pct:>+6.2}%  (budget +5.00%)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
