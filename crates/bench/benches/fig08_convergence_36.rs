//! Figure 8: cumulative fraction of converged nodes for one random graph
//! (36 nodes in the paper; 12 at bench scale).

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};
use secureblox_bench::convergence_cdf;

fn bench(c: &mut Criterion) {
    let schemes = [
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128),
    ];
    let mut group = c.benchmark_group("fig08_convergence_36");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in &schemes {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| convergence_cdf(9, scheme, 20))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
