//! Ablation C: BloxGenerics compilation cost as the number of exportable
//! predicates (and hence generated policy instantiations) grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secureblox::policy::{compile_secured_program, SecurityConfig};
use secureblox::{AuthScheme, EncScheme};

fn app_with_predicates(count: usize) -> String {
    let mut source = String::new();
    for i in 0..count {
        source.push_str(&format!("table{i}(X, Y) -> int[32](X), int[32](Y).\n"));
        source.push_str(&format!("exportable(`table{i}).\n"));
    }
    source
}

fn bench(c: &mut Criterion) {
    let config = SecurityConfig::new(AuthScheme::Rsa, EncScheme::None);
    let mut group = c.benchmark_group("generics_compile");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for count in [1usize, 4, 16] {
        let source = app_with_predicates(count);
        group.bench_with_input(BenchmarkId::from_parameter(count), &source, |b, source| {
            b.iter(|| compile_secured_program(source, &config, &[]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
