//! Ablation B: DatalogLB engine micro-benchmarks — fixpoint evaluation,
//! transactional batches with constraint checking, incremental deletion, and
//! the planner-vs-naive join comparison (a 3-literal rule over 10k-tuple
//! relations, nested-loop scans vs selectivity-ordered index probes).

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_datalog::{EvalConfig, EvalOptions, Value, Workspace};
use std::time::Instant;

/// Join-heavy workload: `out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).` over three
/// chain relations of `n` tuples each.  The naive evaluator executes this as
/// |r|·|s| (+ matches·|t|) scan work; the planner probes `s` and `t` on their
/// bound first column.
const TRIPLE_JOIN_TUPLES: usize = 10_000;

fn triple_join_workspace(n: usize, use_planner: bool) -> Workspace {
    triple_join_workspace_with(n, use_planner, EvalOptions::serial())
}

fn triple_join_workspace_with(n: usize, use_planner: bool, exec: EvalOptions) -> Workspace {
    let mut ws = Workspace::with_config(EvalConfig {
        use_planner,
        exec,
        ..EvalConfig::default()
    });
    ws.install_source("out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).")
        .unwrap();
    for i in 0..n as i64 {
        ws.assert_fact("r", vec![Value::Int(i), Value::Int(i + 1)])
            .unwrap();
        ws.assert_fact("s", vec![Value::Int(i + 1), Value::Int(i + 2)])
            .unwrap();
        ws.assert_fact("t", vec![Value::Int(i + 2), Value::Int(i + 3)])
            .unwrap();
    }
    ws
}

fn chain_workspace(n: usize) -> Workspace {
    let mut ws = Workspace::new();
    ws.install_source(
        "reachable(X, Y) <- link(X, Y).\n\
         reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
    )
    .unwrap();
    for i in 0..n {
        ws.assert_fact(
            "link",
            vec![
                Value::str(format!("n{i}")),
                Value::str(format!("n{}", i + 1)),
            ],
        )
        .unwrap();
    }
    ws
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_micro");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("transitive_closure_40", |b| {
        b.iter(|| {
            let mut ws = chain_workspace(40);
            ws.fixpoint().unwrap();
            ws.count("reachable")
        })
    });
    group.bench_function("transaction_with_constraints", |b| {
        let mut ws = Workspace::new();
        ws.install_source(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             link(X, Y) <- says_link(X, Y).\n\
             principal(alice). principal(bob).",
        )
        .unwrap();
        b.iter(|| {
            ws.transaction(vec![(
                "says_link".into(),
                vec![Value::str("alice"), Value::str("bob")],
            )])
            .unwrap()
        })
    });
    group.bench_function("dred_retract_one_link", |b| {
        b.iter(|| {
            let mut ws = chain_workspace(20);
            ws.fixpoint().unwrap();
            ws.retract(vec![(
                "link".into(),
                vec![Value::str("n10"), Value::str("n11")],
            )])
            .unwrap()
        })
    });
    group.bench_function("planner_triple_join_10k", |b| {
        // Build once; every iteration re-evaluates the rule to fixpoint over
        // the full relations (derivations are deduplicated, so the measured
        // work is one complete planned evaluation per iteration).
        let mut ws = triple_join_workspace(TRIPLE_JOIN_TUPLES, true);
        ws.fixpoint().unwrap();
        b.iter(|| ws.fixpoint().unwrap().iterations)
    });
    group.bench_function("intern_insert_10k", |b| {
        // Dictionary-encoding cost: 10k mixed-type base facts (fresh strings
        // intern, repeated ints hit the dictionary) into columnar relations.
        b.iter(|| {
            let mut ws = Workspace::new();
            ws.install_source("seen(K) <- kv(K, V).").unwrap();
            for i in 0..TRIPLE_JOIN_TUPLES as i64 {
                ws.assert_fact(
                    "kv",
                    vec![Value::str(format!("key-{i}")), Value::Int(i % 64)],
                )
                .unwrap();
            }
            ws.count("kv")
        })
    });
    group.bench_function("batch_join_10k", |b| {
        // The batch plane's hot loop in isolation: one planned two-literal
        // join over 10k-tuple relations, re-evaluated to fixpoint per
        // iteration on interned id frames.
        let mut ws = Workspace::with_config(EvalConfig {
            use_planner: true,
            ..EvalConfig::default()
        });
        ws.install_source("out(X, Z) <- r(X, Y), s(Y, Z).").unwrap();
        for i in 0..TRIPLE_JOIN_TUPLES as i64 {
            ws.assert_fact("r", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
            ws.assert_fact("s", vec![Value::Int(i + 1), Value::Int(i + 2)])
                .unwrap();
        }
        ws.fixpoint().unwrap();
        b.iter(|| ws.fixpoint().unwrap().iterations)
    });
    // Persistent-pool scaling: the same triple join re-converged on a
    // long-lived worker pool at each width (the pool outlives every
    // fixpoint, so these measure steady-state dispatch, not thread spawns).
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("pool_triple_join_10k_w{workers}"), |b| {
            let mut ws = triple_join_workspace_with(
                TRIPLE_JOIN_TUPLES,
                true,
                EvalOptions::with_workers(workers),
            );
            ws.fixpoint().unwrap();
            b.iter(|| ws.fixpoint().unwrap().iterations)
        });
    }
    group.finish();

    // Direct comparisons below run outside Criterion: one measured full
    // evaluation each.  A CLI filter that names neither series skips both
    // (so filtered bench runs do not pay for the multi-second naive
    // evaluation); `planner_vs_naive_10k` and `worker_scaling_10k` select
    // them individually.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| !arg.starts_with('-'))
        .collect();
    let selected =
        |name: &str| filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()));
    let run_naive = selected("planner_vs_naive_10k");
    let run_scaling = selected("worker_scaling_10k");
    if !run_naive && !run_scaling {
        return;
    }
    let mut planned = triple_join_workspace(TRIPLE_JOIN_TUPLES, true);
    let started = Instant::now();
    planned.fixpoint().unwrap();
    let planned_time = started.elapsed();
    let derived = planned.count("out");
    if run_naive {
        let mut naive = triple_join_workspace(TRIPLE_JOIN_TUPLES, false);
        let started = Instant::now();
        naive.fixpoint().unwrap();
        let naive_time = started.elapsed();
        assert_eq!(
            derived,
            naive.count("out"),
            "planned and naive evaluation disagree"
        );
        let speedup = naive_time.as_secs_f64() / planned_time.as_secs_f64().max(1e-9);
        println!(
            "bench engine_micro/planner_vs_naive_10k                  planned {planned_time:>12?}  \
             naive {naive_time:>12?}  speedup {speedup:>8.1}x"
        );
        let stats = planned.plan_stats();
        println!(
            "bench engine_micro/planner_counters                      plans {} hits {} probes {} \
             scans {} index_builds {}",
            stats.plans_compiled,
            stats.plan_cache_hits,
            stats.index_probes,
            stats.full_scans,
            stats.index_builds,
        );
    }
    if !run_scaling {
        return;
    }

    // Worker-scaling series over the same 10k-tuple 3-literal join: one
    // measured full planned evaluation per worker count, all relative to the
    // single-worker run (DESIGN.md §8 records the numbers).
    let mut baseline = std::time::Duration::ZERO;
    for workers in [1usize, 2, 4, 8] {
        let mut ws = triple_join_workspace_with(
            TRIPLE_JOIN_TUPLES,
            true,
            EvalOptions::with_workers(workers),
        );
        let started = Instant::now();
        ws.fixpoint().unwrap();
        let elapsed = started.elapsed();
        if workers == 1 {
            baseline = elapsed;
        }
        assert_eq!(ws.count("out"), derived, "worker pool changed the fixpoint");
        let stats = ws.plan_stats();
        println!(
            "bench engine_micro/worker_scaling_10k/w{workers}                 {elapsed:>12?}  \
             speedup {:>6.2}x  parallel_batches {} shards {} utilization {:.2}",
            baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            stats.parallel_batches,
            stats.shards_executed,
            stats.worker_utilization(workers),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
