//! Ablation B: DatalogLB engine micro-benchmarks — fixpoint evaluation,
//! transactional batches with constraint checking, and incremental deletion.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_datalog::{Value, Workspace};

fn chain_workspace(n: usize) -> Workspace {
    let mut ws = Workspace::new();
    ws.install_source(
        "reachable(X, Y) <- link(X, Y).\n\
         reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
    )
    .unwrap();
    for i in 0..n {
        ws.assert_fact(
            "link",
            vec![
                Value::str(format!("n{i}")),
                Value::str(format!("n{}", i + 1)),
            ],
        )
        .unwrap();
    }
    ws
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_micro");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("transitive_closure_40", |b| {
        b.iter(|| {
            let mut ws = chain_workspace(40);
            ws.fixpoint().unwrap();
            ws.count("reachable")
        })
    });
    group.bench_function("transaction_with_constraints", |b| {
        let mut ws = Workspace::new();
        ws.install_source(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             link(X, Y) <- says_link(X, Y).\n\
             principal(alice). principal(bob).",
        )
        .unwrap();
        b.iter(|| {
            ws.transaction(vec![(
                "says_link".into(),
                vec![Value::str("alice"), Value::str("bob")],
            )])
            .unwrap()
        })
    });
    group.bench_function("dred_retract_one_link", |b| {
        b.iter(|| {
            let mut ws = chain_workspace(20);
            ws.fixpoint().unwrap();
            ws.retract(vec![(
                "link".into(),
                vec![Value::str("n10"), Value::str("n11")],
            )])
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
