//! Figure 7: average transaction duration per authentication scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};
use secureblox_bench::pathvector_point;

fn bench(c: &mut Criterion) {
    let schemes = [
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128),
    ];
    for scheme in &schemes {
        let point = pathvector_point(6, scheme, 1);
        println!(
            "fig07 {:<8} avg-txn={:?}",
            point.label, point.avg_transaction
        );
    }
    let mut group = c.benchmark_group("fig07_txn_duration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in &schemes {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| pathvector_point(6, scheme, 1).avg_transaction)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
