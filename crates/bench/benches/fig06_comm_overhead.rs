//! Figure 6: per-node communication overhead (KB), no encryption.
//! The measured quantity is the deployment run; the reported KB values are
//! printed once so the bench log shows the figure data.

use criterion::{criterion_group, criterion_main, Criterion};
use secureblox_bench::{pathvector_point, plain_schemes};

fn bench(c: &mut Criterion) {
    for scheme in plain_schemes() {
        let point = pathvector_point(6, &scheme, 1);
        println!(
            "fig06 {:<8} nodes={} per-node-KB={:.2}",
            point.label, point.nodes, point.per_node_kb
        );
    }
    let mut group = c.benchmark_group("fig06_comm_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scheme in plain_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| pathvector_point(6, &scheme, 1).per_node_kb)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
