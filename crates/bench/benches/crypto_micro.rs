//! Ablation A: micro-costs of the cryptographic primitives underlying the
//! authentication schemes (explains the orderings of Figures 4–7).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use secureblox_crypto::{aes128_ctr_encrypt, hmac_sha1, sha1, RsaKeyPair};

fn bench(c: &mut Criterion) {
    let payload = vec![0xabu8; 1024];
    let mut rng = StdRng::seed_from_u64(1);
    let keypair = RsaKeyPair::generate(&mut rng, 512).unwrap();
    let signature = keypair.sign(&payload);

    let mut group = c.benchmark_group("crypto_micro");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("sha1_1k", |b| b.iter(|| sha1(&payload)));
    group.bench_function("hmac_sha1_1k", |b| {
        b.iter(|| hmac_sha1(b"secret", &payload))
    });
    group.bench_function("aes128_ctr_1k", |b| {
        b.iter(|| aes128_ctr_encrypt(b"secret", &payload))
    });
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("rsa_sign_512", |b| b.iter(|| keypair.sign(&payload)));
    group.bench_function("rsa_verify_512", |b| {
        b.iter(|| assert!(keypair.public_key().verify(&payload, &signature)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
