//! Streaming-scheduler throughput: sustained update-stream deltas applied
//! per second, per-envelope baseline vs the batching/backpressure scheduler,
//! at 6 / 18 / 36 nodes.
//!
//! The workload is a gossip flood on a ring: every node exports its own
//! `link` facts *and everything it has heard* to every other principal, so
//! each of the `2n` directed link facts eventually crosses every one of the
//! `n·(n-1)` directed pairs exactly once — `O(n²)` signed deltas riding many
//! small cascading transactions, the exact shape the per-link outbox was
//! built to coalesce.  The app is deterministic (no existentials, no
//! functional dependencies), so both modes must converge to bit-identical
//! relations; the bench asserts that before reporting throughput.
//!
//! Writes `BENCH_stream_throughput.json` (to `SECUREBLOX_BENCH_DIR` or the
//! working directory) with updates/sec and p50/p99 update-apply latency per
//! node count for both modes — CI's regression gate compares the streaming
//! updates/sec against the committed artifact.  `CRITERION_QUICK=1` runs the
//! 6-node point only and tags the report so the gate skips it.

use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, StreamingConfig};
use secureblox::{AuthScheme, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use std::time::{Duration, Instant};

const GOSSIP_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    says[`remote_link](self[], U, X, Y) <- remote_link(X, Y), principal(U), U != self[].
"#;

fn principal(i: usize) -> String {
    format!("n{i}")
}

/// Ring specs: node i owns directed links to both neighbours.
fn ring_specs(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| {
            let mut spec = NodeSpec::new(principal(i));
            for j in [(i + 1) % n, (i + n - 1) % n] {
                spec.base_facts.push((
                    "link".into(),
                    vec![Value::str(principal(i)), Value::str(principal(j))],
                ));
            }
            spec
        })
        .collect()
}

struct ModeResult {
    wall: Duration,
    updates: usize,
    apply_p50: Duration,
    apply_p99: Duration,
    /// Sorted serialization of every node's final relations.
    state: Vec<Vec<u8>>,
}

fn run_mode(n: usize, label: &str, streaming: StreamingConfig) -> ModeResult {
    eprintln!("stream_throughput: n={n} {label} ...");
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        streaming,
        ..DeploymentConfig::default()
    };
    let mut deployment =
        Deployment::build(GOSSIP_APP, &ring_specs(n), config).expect("build gossip deployment");
    let start = Instant::now();
    let report = deployment.run().expect("gossip flood converges");
    let wall = start.elapsed();

    let mut updates = 0usize;
    let mut state = Vec::new();
    for i in 0..n {
        let p = principal(i);
        updates += deployment.query(&p, "says$remote_link").len();
        for pred in ["link", "remote_link", "says$remote_link"] {
            let mut tuples: Vec<Vec<u8>> = deployment
                .query(&p, pred)
                .iter()
                .map(|t| serialize_tuple(t))
                .collect();
            tuples.sort();
            state.push(tuples.concat());
        }
    }
    let result = ModeResult {
        wall,
        updates,
        apply_p50: report.apply_latency_p50,
        apply_p99: report.apply_latency_p99,
        state,
    };
    eprintln!(
        "stream_throughput: n={n} {label} done in {:?} ({} updates)",
        result.wall, result.updates
    );
    result
}

fn rate(result: &ModeResult) -> f64 {
    result.updates as f64 / result.wall.as_secs_f64().max(1e-9)
}

fn mode_json(result: &ModeResult) -> String {
    format!(
        r#"{{"updates": {}, "wall_ns": {}, "updates_per_sec": {:.1}, "apply_p50_ns": {}, "apply_p99_ns": {}}}"#,
        result.updates,
        result.wall.as_nanos(),
        rate(result),
        result.apply_p50.as_nanos(),
        result.apply_p99.as_nanos(),
    )
}

fn main() {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let node_counts: Vec<usize> = match std::env::var("SECUREBLOX_STREAM_BENCH_NODES") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) if quick => vec![6],
        Err(_) => vec![6, 18, 36],
    };
    let mut entries = Vec::new();
    for &n in &node_counts {
        let per_envelope = run_mode(n, "per_envelope", StreamingConfig::disabled());
        let streamed = run_mode(
            n,
            "streaming",
            StreamingConfig::with_knobs(
                secureblox::runtime::stream::DEFAULT_BATCH_MAX,
                secureblox::runtime::stream::DEFAULT_QUEUE_HIGH_WATER,
            ),
        );
        assert_eq!(
            per_envelope.state, streamed.state,
            "final state diverged between modes at {n} nodes"
        );
        assert_eq!(
            per_envelope.updates, streamed.updates,
            "update count diverged between modes at {n} nodes"
        );
        let speedup = rate(&streamed) / rate(&per_envelope).max(1e-9);
        println!(
            "bench stream_throughput/n{n:<3} per_envelope {:>10.0}/s  streaming {:>10.0}/s  \
             speedup {speedup:>5.2}x  (p99 apply {:?} -> {:?})",
            rate(&per_envelope),
            rate(&streamed),
            per_envelope.apply_p99,
            streamed.apply_p99,
        );
        entries.push(format!(
            r#"    {{"n": {n}, "per_envelope": {}, "streaming": {}, "speedup": {speedup:.2}, "final_state_identical": true}}"#,
            mode_json(&per_envelope),
            mode_json(&streamed),
        ));
    }
    let dir = std::env::var_os("SECUREBLOX_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = dir.join("BENCH_stream_throughput.json");
    let json = format!(
        "{{\n  \"bench\": \"stream_throughput\",\n  \"quick\": {quick},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write bench report");
    println!("bench report written to {}", path.display());
}
