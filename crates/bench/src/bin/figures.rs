//! Regenerate the SecureBlox paper's evaluation figures as text tables.
//!
//! Usage:
//! ```text
//! figures [fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablation|all] [--full]
//! ```
//!
//! Without `--full`, reduced network sizes are used so the whole set finishes
//! in a few minutes; `--full` reproduces the paper's 6–72 node sweep.

use secureblox_bench::*;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let which: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let wanted = |name: &str| which.is_empty() || which.iter().any(|w| w == name || w == "all");

    if wanted("fig4") || wanted("fig6") || wanted("fig7") {
        let points = pathvector_series(scale, &plain_schemes());
        if wanted("fig4") {
            println!(
                "{}",
                render_series(
                    "Figure 4: path-vector fixpoint latency, no encryption",
                    "nodes",
                    &points
                )
            );
        }
        if wanted("fig6") {
            println!(
                "{}",
                render_series(
                    "Figure 6: per-node communication overhead (KB), no encryption",
                    "nodes",
                    &points
                )
            );
        }
        if wanted("fig7") {
            println!(
                "{}",
                render_series("Figure 7: average transaction duration", "nodes", &points)
            );
        }
    }
    if wanted("fig5") {
        let points = pathvector_series(scale, &encrypted_schemes());
        println!(
            "{}",
            render_series(
                "Figure 5: path-vector fixpoint latency, with encryption",
                "nodes",
                &points
            )
        );
    }
    if wanted("fig8") || wanted("fig9") {
        let sizes = if full { (36usize, 72usize) } else { (12, 18) };
        for (fig, nodes) in [("fig8", sizes.0), ("fig9", sizes.1)] {
            if !wanted(fig) {
                continue;
            }
            let series: Vec<(String, Vec<(Duration, f64)>)> = plain_schemes()
                .iter()
                .chain(std::iter::once(&secureblox::policy::SecurityConfig::new(
                    secureblox::AuthScheme::Rsa,
                    secureblox::EncScheme::Aes128,
                )))
                .filter(|s| ["NoAuth", "HMAC", "RSA-AES"].contains(&s.label().as_str()))
                .map(|scheme| (scheme.label(), convergence_cdf(nodes, scheme, 20)))
                .collect();
            println!(
                "{}",
                render_cdf(
                    &format!(
                        "Figure {}: cumulative fraction of converged nodes, {nodes}-node graph",
                        &fig[3..]
                    ),
                    &series
                )
            );
        }
    }
    if wanted("fig10") || wanted("fig11") {
        let sizes = if full { (6usize, 18usize) } else { (3, 6) };
        for (fig, nodes) in [("fig10", sizes.0), ("fig11", sizes.1)] {
            if !wanted(fig) {
                continue;
            }
            let series: Vec<(String, Vec<(Duration, f64)>)> = hashjoin_schemes()
                .iter()
                .map(|scheme| {
                    (
                        scheme.label(),
                        hashjoin_completion_cdf(nodes, scheme, scale, 20),
                    )
                })
                .collect();
            println!(
                "{}",
                render_cdf(
                    &format!(
                        "Figure {}: hash-join completion CDF at the initiator, {nodes} nodes",
                        &fig[3..]
                    ),
                    &series
                )
            );
        }
    }
    if wanted("fig12") {
        let points = hashjoin_overhead_series(scale, &hashjoin_schemes());
        println!(
            "{}",
            render_series(
                "Figure 12: per-node overhead (KB) for the secure hash join",
                "nodes",
                &points
            )
        );
    }
    if wanted("ablation") {
        let nodes = if full { 18 } else { 8 };
        let security = secureblox::policy::SecurityConfig::new(
            secureblox::AuthScheme::HmacSha1,
            secureblox::EncScheme::None,
        );
        let points = topology_series(nodes, &security, 1);
        println!(
            "# Ablation D: path-vector sensitivity to the input topology ({nodes} nodes, HMAC)"
        );
        println!(
            "{:<14} {:>16} {:>16} {:>16}",
            "topology", "latency (ms)", "per-node KB", "avg txn (ms)"
        );
        for (label, point) in points {
            println!(
                "{:<14} {:>16.2} {:>16.2} {:>16.3}",
                label,
                point.fixpoint_latency.as_secs_f64() * 1e3,
                point.per_node_kb,
                point.avg_transaction.as_secs_f64() * 1e3,
            );
        }
    }
}
