//! Experiment harness reproducing the SecureBlox paper's evaluation (§8).
//!
//! Each public function regenerates the data series behind one of the
//! paper's figures.  The `figures` binary prints them as tables;
//! the Criterion benches in `benches/` wrap the same drivers so
//! `cargo bench` exercises every figure end to end.
//!
//! Absolute numbers differ from the paper (the substrate is a from-scratch
//! engine on a simulated cluster — see DESIGN.md), but the comparisons the
//! paper makes (NoAuth < HMAC < RSA, AES adds a little, step-shaped
//! convergence CDFs, per-node overhead falling with parallelism) are
//! reproduced; EXPERIMENTS.md records a paper-vs-measured comparison.

use secureblox::apps::{hashjoin, pathvector};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};
use std::time::Duration;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for Criterion iterations (each sample is a full distributed
    /// run, so the per-iteration workload has to stay small).
    Bench,
    /// Reduced network sizes, suitable for CI and the `figures` binary.
    Quick,
    /// The paper's full sweep (6..72 nodes for the path-vector protocol).
    Full,
}

impl Scale {
    /// Network sizes for the path-vector sweep (Figures 4–7).
    pub fn pathvector_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Bench => vec![6],
            Scale::Quick => vec![6, 12, 18],
            Scale::Full => (1..=12).map(|i| i * 6).collect(),
        }
    }

    /// Network sizes for the hash-join overhead sweep (Figure 12).
    pub fn hashjoin_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Bench => vec![3, 6],
            Scale::Quick => vec![3, 6, 12],
            Scale::Full => (1..=8).map(|i| i * 6).collect(),
        }
    }

    /// Rows for the hash-join tables (paper: 900 × 800 with 72 join values).
    pub fn hashjoin_rows(&self) -> (usize, usize, usize) {
        match self {
            Scale::Bench => (90, 80, 18),
            Scale::Quick => (180, 160, 24),
            Scale::Full => (900, 800, 72),
        }
    }

    /// Number of random-graph trials per data point (paper: 10).
    pub fn trials(&self) -> usize {
        match self {
            Scale::Bench | Scale::Quick => 1,
            Scale::Full => 3,
        }
    }
}

/// One data point of a figure series.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Security-configuration label (`NoAuth`, `HMAC`, `RSA-AES`, …).
    pub label: String,
    /// Network size (x-axis of most figures).
    pub nodes: usize,
    /// Distributed fixpoint latency (Figures 4/5).
    pub fixpoint_latency: Duration,
    /// Average per-node communication overhead in KB (Figures 6/12).
    pub per_node_kb: f64,
    /// Average transaction duration (Figure 7).
    pub avg_transaction: Duration,
    /// Committed transactions across the run.
    pub transactions: usize,
}

/// The security configurations of Figures 4/6/7 (no encryption).
pub fn plain_schemes() -> Vec<SecurityConfig> {
    vec![
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::None),
    ]
}

/// The security configurations of Figure 5 (with encryption).
pub fn encrypted_schemes() -> Vec<SecurityConfig> {
    vec![
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::Aes128),
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::Aes128),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128),
    ]
}

/// The configurations used in the hash-join figures (Figures 10–12).
pub fn hashjoin_schemes() -> Vec<SecurityConfig> {
    vec![
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128),
    ]
}

/// Run the path-vector protocol once and summarize it as a series point.
pub fn pathvector_point(nodes: usize, security: &SecurityConfig, seed: u64) -> SeriesPoint {
    let config = pathvector::PathVectorConfig {
        num_nodes: nodes,
        security: security.clone(),
        seed,
        ..pathvector::PathVectorConfig::default()
    };
    let outcome = pathvector::run(&config).expect("path-vector run failed");
    SeriesPoint {
        label: security.label(),
        nodes,
        fixpoint_latency: outcome.report.fixpoint_latency,
        per_node_kb: outcome.report.per_node_kb,
        avg_transaction: outcome.report.average_transaction,
        transactions: outcome.report.total_transactions,
    }
}

/// Figures 4–7: the path-vector sweep over network sizes and schemes,
/// averaging `trials` random graphs per point (the paper averages ten).
pub fn pathvector_series(scale: Scale, schemes: &[SecurityConfig]) -> Vec<SeriesPoint> {
    let mut points = Vec::new();
    for &nodes in &scale.pathvector_sizes() {
        for scheme in schemes {
            let trials = scale.trials();
            let mut latency = Duration::ZERO;
            let mut kb = 0.0;
            let mut txn = Duration::ZERO;
            let mut transactions = 0usize;
            for trial in 0..trials {
                let point = pathvector_point(nodes, scheme, 100 + trial as u64);
                latency += point.fixpoint_latency;
                kb += point.per_node_kb;
                txn += point.avg_transaction;
                transactions += point.transactions;
            }
            points.push(SeriesPoint {
                label: scheme.label(),
                nodes,
                fixpoint_latency: latency / trials as u32,
                per_node_kb: kb / trials as f64,
                avg_transaction: txn / trials as u32,
                transactions: transactions / trials,
            });
        }
    }
    points
}

/// Figures 8/9: the cumulative fraction of converged nodes over time for one
/// random graph of `nodes` nodes.
pub fn convergence_cdf(
    nodes: usize,
    security: &SecurityConfig,
    samples: usize,
) -> Vec<(Duration, f64)> {
    let config = pathvector::PathVectorConfig {
        num_nodes: nodes,
        security: security.clone(),
        seed: 42,
        ..pathvector::PathVectorConfig::default()
    };
    let outcome = pathvector::run(&config).expect("path-vector run failed");
    outcome.report.convergence_cdf(samples)
}

/// Figures 10/11: the CDF of join-result transaction completion times at the
/// initiator of a secure hash join.
pub fn hashjoin_completion_cdf(
    nodes: usize,
    security: &SecurityConfig,
    scale: Scale,
    samples: usize,
) -> Vec<(Duration, f64)> {
    let (rows_a, rows_b, joins) = scale.hashjoin_rows();
    let config = hashjoin::HashJoinConfig {
        num_nodes: nodes,
        table_a_rows: rows_a,
        table_b_rows: rows_b,
        distinct_join_values: joins,
        security: security.clone(),
        seed: 7,
        ..hashjoin::HashJoinConfig::default()
    };
    let outcome = hashjoin::run(&config).expect("hash-join run failed");
    let completions = outcome.initiator_completions;
    if completions.is_empty() {
        return Vec::new();
    }
    let end = completions
        .iter()
        .copied()
        .max()
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));
    (0..=samples)
        .map(|i| {
            let t = end.mul_f64(i as f64 / samples.max(1) as f64);
            let fraction =
                completions.iter().filter(|&&c| c <= t).count() as f64 / completions.len() as f64;
            (t, fraction)
        })
        .collect()
}

/// Figure 12: per-node communication overhead of the secure hash join as the
/// experiment size grows.
pub fn hashjoin_overhead_series(scale: Scale, schemes: &[SecurityConfig]) -> Vec<SeriesPoint> {
    let (rows_a, rows_b, joins) = scale.hashjoin_rows();
    let mut points = Vec::new();
    for &nodes in &scale.hashjoin_sizes() {
        for scheme in schemes {
            let config = hashjoin::HashJoinConfig {
                num_nodes: nodes,
                table_a_rows: rows_a,
                table_b_rows: rows_b,
                distinct_join_values: joins,
                security: scheme.clone(),
                seed: 7,
                ..hashjoin::HashJoinConfig::default()
            };
            let outcome = hashjoin::run(&config).expect("hash-join run failed");
            points.push(SeriesPoint {
                label: scheme.label(),
                nodes,
                fixpoint_latency: outcome.report.fixpoint_latency,
                per_node_kb: outcome.report.per_node_kb,
                avg_transaction: outcome.report.average_transaction,
                transactions: outcome.report.total_transactions,
            });
        }
    }
    points
}

/// Ablation: run the path-vector protocol over regular topologies (ring,
/// star, grid, full mesh) in addition to the paper's random graphs, to show
/// how much of the latency / overhead shape comes from the input graph.
pub fn topology_series(
    nodes: usize,
    security: &SecurityConfig,
    seed: u64,
) -> Vec<(String, SeriesPoint)> {
    use secureblox_net::Topology;
    let topologies = [
        Topology::Ring,
        Topology::Star,
        Topology::Grid,
        Topology::FullMesh,
        Topology::paper_default(),
    ];
    topologies
        .iter()
        .map(|topology| {
            let config = pathvector::PathVectorConfig {
                num_nodes: nodes,
                edges: Some(topology.edges(nodes, seed)),
                security: security.clone(),
                seed,
                ..pathvector::PathVectorConfig::default()
            };
            let outcome = pathvector::run(&config).expect("path-vector run failed");
            (
                topology.label(),
                SeriesPoint {
                    label: security.label(),
                    nodes,
                    fixpoint_latency: outcome.report.fixpoint_latency,
                    per_node_kb: outcome.report.per_node_kb,
                    avg_transaction: outcome.report.average_transaction,
                    transactions: outcome.report.total_transactions,
                },
            )
        })
        .collect()
}

/// Render a series as an aligned text table, grouped by scheme like the
/// paper's plots.
pub fn render_series(title: &str, x_label: &str, points: &[SeriesPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:<10} {:<10} {:>16} {:>16} {:>16}\n",
        "scheme", x_label, "latency (ms)", "per-node KB", "avg txn (ms)"
    ));
    let mut seen: Vec<String> = Vec::new();
    for point in points {
        if !seen.contains(&point.label) {
            seen.push(point.label.clone());
        }
    }
    for label in seen {
        for point in points.iter().filter(|p| p.label == label) {
            out.push_str(&format!(
                "{:<10} {:<10} {:>16.2} {:>16.2} {:>16.3}\n",
                point.label,
                point.nodes,
                point.fixpoint_latency.as_secs_f64() * 1e3,
                point.per_node_kb,
                point.avg_transaction.as_secs_f64() * 1e3,
            ));
        }
    }
    out
}

/// Render one or more CDFs as two-column tables.
pub fn render_cdf(title: &str, series: &[(String, Vec<(Duration, f64)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    for (label, cdf) in series {
        out.push_str(&format!("## {label}\n"));
        out.push_str(&format!("{:>14} {:>12}\n", "time (ms)", "fraction"));
        for (t, fraction) in cdf {
            out.push_str(&format!(
                "{:>14.3} {:>12.3}\n",
                t.as_secs_f64() * 1e3,
                fraction
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_sizes_are_small() {
        assert_eq!(Scale::Quick.pathvector_sizes(), vec![6, 12, 18]);
        assert_eq!(Scale::Full.pathvector_sizes().last(), Some(&72));
        assert!(Scale::Quick.hashjoin_rows().0 < Scale::Full.hashjoin_rows().0);
    }

    #[test]
    fn scheme_lists_match_figures() {
        let labels: Vec<String> = plain_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["NoAuth", "HMAC", "RSA"]);
        let labels: Vec<String> = encrypted_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["NoAuth", "NoAuth-AES", "HMAC-AES", "RSA-AES"]);
        let labels: Vec<String> = hashjoin_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["NoAuth", "RSA-AES"]);
    }

    #[test]
    fn pathvector_point_produces_sane_numbers() {
        let point = pathvector_point(
            6,
            &SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            1,
        );
        assert_eq!(point.nodes, 6);
        assert!(point.fixpoint_latency > Duration::ZERO);
        assert!(point.per_node_kb > 0.0);
        assert!(point.transactions >= 6);
    }

    #[test]
    fn topology_ablation_covers_all_topologies() {
        let points = topology_series(
            4,
            &SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            1,
        );
        let labels: Vec<&str> = points.iter().map(|(label, _)| label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["ring", "star", "grid", "full-mesh", "random-deg3"]
        );
        assert!(points
            .iter()
            .all(|(_, p)| p.fixpoint_latency > Duration::ZERO));
        // A full mesh moves more bytes per node than a star of the same size.
        let kb = |name: &str| {
            points
                .iter()
                .find(|(l, _)| l == name)
                .unwrap()
                .1
                .per_node_kb
        };
        assert!(kb("full-mesh") > kb("star"));
    }

    #[test]
    fn render_helpers_produce_tables() {
        let point = SeriesPoint {
            label: "NoAuth".into(),
            nodes: 6,
            fixpoint_latency: Duration::from_millis(15),
            per_node_kb: 197.0,
            avg_transaction: Duration::from_millis(12),
            transactions: 42,
        };
        let table = render_series("Figure 4", "nodes", &[point]);
        assert!(table.contains("Figure 4"));
        assert!(table.contains("NoAuth"));
        let cdf = render_cdf(
            "Figure 8",
            &[("NoAuth".into(), vec![(Duration::from_millis(1), 0.5)])],
        );
        assert!(cdf.contains("0.500"));
    }
}
