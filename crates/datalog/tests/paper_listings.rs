//! Integration tests that run the DatalogLB listings from the SecureBlox
//! paper, end to end, on a single workspace: the §2 background examples
//! (rules, integrity constraints, type declarations, functional
//! dependencies, singletons) and a single-node version of the §7.1
//! path-vector program (entities, aggregation, negation).

use secureblox_datalog::{DatalogError, Value, Workspace};

fn ws(source: &str) -> Workspace {
    let mut ws = Workspace::new();
    ws.install_source(source)
        .unwrap_or_else(|e| panic!("program failed to install: {e}"));
    ws
}

// ---------------------------------------------------------------------------
// §2 — rules, constraints, types
// ---------------------------------------------------------------------------

#[test]
fn section2_transitive_closure_of_link() {
    let mut ws = ws("reachable(X, Y) <- link(X, Y).\n\
                     reachable(X, Y) <- link(X, Z), reachable(Z, Y).");
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        ws.assert_fact("link", vec![Value::str(a), Value::str(b)])
            .unwrap();
    }
    ws.fixpoint().unwrap();
    assert_eq!(
        ws.count("reachable"),
        6,
        "3 direct + 2 two-hop + 1 three-hop"
    );
    assert!(ws.contains_fact("reachable", &[Value::str("a"), Value::str("d")]));
    assert!(!ws.contains_fact("reachable", &[Value::str("d"), Value::str("a")]));
}

#[test]
fn section2_type_declaration_is_enforced_at_runtime() {
    // p(x1, x2) -> q1(x1), q2(x2).
    let mut ws = ws("p(X1, X2) -> q1(X1), q2(X2).");
    ws.assert_fact("q1", vec![Value::str("alpha")]).unwrap();
    ws.assert_fact("q2", vec![Value::str("beta")]).unwrap();
    ws.transaction(vec![(
        "p".into(),
        vec![Value::str("alpha"), Value::str("beta")],
    )])
    .unwrap();
    // A value outside q2 violates the constraint and rolls back.
    let err = ws
        .transaction(vec![(
            "p".into(),
            vec![Value::str("alpha"), Value::str("gamma")],
        )])
        .unwrap_err();
    assert!(matches!(err, DatalogError::ConstraintViolation(_)));
    assert_eq!(ws.count("p"), 1);
}

#[test]
fn section2_non_type_safe_rule_is_rejected_statically() {
    // "the following rule will be rejected as not being type-safe, because
    // the set of values in s is not guaranteed to be contained by the set qn"
    let mut strict = Workspace::new();
    let bad = "p(X1, X2) -> q1(X1), q2(X2).\n\
               p(X1, X2) <- q1(X1), s(X2).";
    assert!(strict.install_source(bad).is_err());

    // "One way to make the above rule type-safe is to declare that all
    // elements of s are guaranteed to be in qn: s(x) -> qn(x)."
    let mut fixed = Workspace::new();
    fixed
        .install_source(
            "p(X1, X2) -> q1(X1), q2(X2).\n\
             s(X) -> q2(X).\n\
             p(X1, X2) <- q1(X1), s(X2).",
        )
        .unwrap();
}

#[test]
fn section2_functional_dependency_and_singleton() {
    // p[x] = y declares a function; p[] = v declares a singleton.
    let mut ws = ws("cost[X] = C -> item(X), int[32](C).\n\
                     origin[] = V -> item(V).");
    ws.assert_fact("item", vec![Value::str("widget")]).unwrap();
    ws.assert_fact("item", vec![Value::str("gadget")]).unwrap();
    ws.assert_fact("cost", vec![Value::str("widget"), Value::Int(10)])
        .unwrap();
    ws.set_singleton("origin", Value::str("widget")).unwrap();
    ws.fixpoint().unwrap();
    assert_eq!(ws.singleton("origin"), Some(Value::str("widget")));

    // A conflicting assignment for the same key is a functional-dependency
    // violation and rolls back.
    let err = ws
        .transaction(vec![(
            "cost".into(),
            vec![Value::str("widget"), Value::Int(99)],
        )])
        .unwrap_err();
    assert!(
        matches!(
            err,
            DatalogError::FunctionalDependency { .. } | DatalogError::ConstraintViolation(_)
        ),
        "unexpected error {err}"
    );
    // The same assignment again is a no-op, not an error.
    ws.transaction(vec![(
        "cost".into(),
        vec![Value::str("widget"), Value::Int(10)],
    )])
    .unwrap();
    assert_eq!(ws.count("cost"), 1);
}

// ---------------------------------------------------------------------------
// §7.1 — the path-vector program on a single workspace
// ---------------------------------------------------------------------------

/// The §7.1 listing, restricted to one node (no says): paths are entities
/// related to their pathlink composition, bestcost is a min aggregate.
const LOCAL_PATH_VECTOR: &str = r#"
    pathvar(P) -> .
    link(N1, N2) -> node(N1), node(N2).
    path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).
    pathlink[P, H1] = H2 -> pathvar(P), node(H1), node(H2).
    bestcost[Src, Dst] = C -> node(Src), node(Dst), int[32](C).

    pathvar(P), path[P, Src, Dst] = 1, pathlink[P, Src] = Dst <- link(Src, Dst).
    bestcost[Src, Dst] = C <- agg<< C = min(Cx) >> path[P, Src, Dst] = Cx.
"#;

#[test]
fn section7_path_entities_and_min_aggregate() {
    let mut ws = ws(LOCAL_PATH_VECTOR);
    for n in ["a", "b", "c"] {
        ws.assert_fact("node", vec![Value::str(n)]).unwrap();
    }
    for (a, b) in [("a", "b"), ("b", "c"), ("a", "b")] {
        ws.assert_fact("link", vec![Value::str(a), Value::str(b)])
            .unwrap();
    }
    ws.fixpoint().unwrap();

    // One path entity per link; the duplicate link derives the same fact.
    assert_eq!(ws.count("path"), 2);
    assert_eq!(ws.count("pathvar"), 2);
    assert_eq!(ws.count("bestcost"), 2);
    let best: Vec<i64> = ws
        .query("bestcost")
        .iter()
        .filter_map(|t| t[2].as_int())
        .collect();
    assert_eq!(best, vec![1, 1]);
}

#[test]
fn section7_negation_guard_is_stratified() {
    // The advertisement rule's "!pathlink[P, N] = _" guard, in a simplified
    // form: advertise a destination only if it is not already a neighbour.
    let mut ws = Workspace::new();
    ws.install_source(
        "link(N1, N2) -> node(N1), node(N2).\n\
         twohop(X, Z) <- link(X, Y), link(Y, Z), X != Z, !link(X, Z).",
    )
    .unwrap();
    for n in ["a", "b", "c", "d"] {
        ws.assert_fact("node", vec![Value::str(n)]).unwrap();
    }
    for (a, b) in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")] {
        ws.assert_fact("link", vec![Value::str(a), Value::str(b)])
            .unwrap();
    }
    ws.fixpoint().unwrap();
    // a→c exists directly, so only b→d and a→d are new two-hop routes.
    assert!(!ws.contains_fact("twohop", &[Value::str("a"), Value::str("c")]));
    assert!(ws.contains_fact("twohop", &[Value::str("b"), Value::str("d")]));
    assert!(ws.contains_fact("twohop", &[Value::str("a"), Value::str("d")]));
    assert_eq!(ws.count("twohop"), 2);
}

// ---------------------------------------------------------------------------
// Incremental maintenance across transactions (the DRed behaviour §2 relies
// on: "installed rules are incrementally maintained")
// ---------------------------------------------------------------------------

#[test]
fn installed_rules_are_maintained_across_insertions_and_deletions() {
    let mut ws = ws("reachable(X, Y) <- link(X, Y).\n\
                     reachable(X, Y) <- link(X, Z), reachable(Z, Y).");
    ws.transaction(vec![
        ("link".into(), vec![Value::str("a"), Value::str("b")]),
        ("link".into(), vec![Value::str("b"), Value::str("c")]),
    ])
    .unwrap();
    assert_eq!(ws.count("reachable"), 3);

    // A later transaction extends the chain.
    ws.transaction(vec![(
        "link".into(),
        vec![Value::str("c"), Value::str("d")],
    )])
    .unwrap();
    assert_eq!(ws.count("reachable"), 6);

    // Deleting the middle link removes exactly the routes that depended on it.
    ws.retract(vec![(
        "link".into(),
        vec![Value::str("b"), Value::str("c")],
    )])
    .unwrap();
    assert_eq!(ws.count("reachable"), 2);
    assert!(ws.contains_fact("reachable", &[Value::str("a"), Value::str("b")]));
    assert!(ws.contains_fact("reachable", &[Value::str("c"), Value::str("d")]));

    // Re-adding it restores the full closure.
    ws.transaction(vec![(
        "link".into(),
        vec![Value::str("b"), Value::str("c")],
    )])
    .unwrap();
    assert_eq!(ws.count("reachable"), 6);
}

// ---------------------------------------------------------------------------
// User-defined functions in rule bodies (§2: "user-defined functions that can
// be integrated into query execution")
// ---------------------------------------------------------------------------

#[test]
fn user_defined_functions_join_into_rule_bodies() {
    let mut ws = Workspace::new();
    // A UDF that doubles its bound input: returns one full (input, output) row.
    ws.register_udf("double", |args: &[Option<secureblox_datalog::Value>]| {
        let x = args
            .first()
            .and_then(|v| v.as_ref())
            .and_then(|v| v.as_int())
            .ok_or_else(|| "double: first argument must be a bound integer".to_string())?;
        Ok(vec![vec![Value::Int(x), Value::Int(2 * x)]])
    });
    ws.install_source("twice(X, Y) <- base(X), double(X, Y).")
        .unwrap();
    for i in 1..=3 {
        ws.assert_fact("base", vec![Value::Int(i)]).unwrap();
    }
    ws.fixpoint().unwrap();
    assert_eq!(ws.count("twice"), 3);
    assert!(ws.contains_fact("twice", &[Value::Int(3), Value::Int(6)]));
}
