//! Property-based tests for the DatalogLB engine substrate.
//!
//! The invariants exercised here are the ones the SecureBlox policies lean
//! on: the value model has a total order, relations behave like sets with
//! functional-dependency enforcement, the semi-naïve evaluator computes the
//! same closure as an independent reference implementation, incremental
//! deletion (DRed) is equivalent to recomputation from scratch, and the
//! parser/pretty-printer pair reaches a fixpoint.

use proptest::prelude::*;
use secureblox_datalog::{parse_program, Relation, Value, Workspace};
use std::cmp::Ordering;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Value: total order
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z][a-z0-9_]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::bytes),
        any::<u64>().prop_map(Value::Entity),
        "[a-z][a-z0-9_]{0,8}".prop_map(Value::pred),
    ]
}

proptest! {
    /// `total_cmp` is reflexive and consistent with `Eq`.
    #[test]
    fn value_cmp_reflexive_and_consistent(v in arb_value(), w in arb_value()) {
        prop_assert_eq!(v.total_cmp(&v), Ordering::Equal);
        if v == w {
            prop_assert_eq!(v.total_cmp(&w), Ordering::Equal);
        }
        if v.total_cmp(&w) == Ordering::Equal && w.total_cmp(&v) == Ordering::Equal {
            // Equal under the order in both directions ⇒ structurally equal,
            // so sorted deduplication never conflates distinct values.
            prop_assert_eq!(v, w);
        }
    }

    /// Antisymmetry: cmp(a, b) is the reverse of cmp(b, a).
    #[test]
    fn value_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    /// Transitivity over arbitrary triples.
    #[test]
    fn value_cmp_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.total_cmp(y));
        prop_assert_ne!(vals[0].total_cmp(&vals[1]), Ordering::Greater);
        prop_assert_ne!(vals[1].total_cmp(&vals[2]), Ordering::Greater);
        prop_assert_ne!(vals[0].total_cmp(&vals[2]), Ordering::Greater);
    }
}

// ---------------------------------------------------------------------------
// Relation: set + functional-dependency semantics
// ---------------------------------------------------------------------------

proptest! {
    /// Plain relations behave like a set of tuples: membership, idempotent
    /// insertion, and length all agree with a reference BTreeSet.
    #[test]
    fn relation_matches_reference_set(tuples in proptest::collection::vec(
        (0i64..20, 0i64..20), 0..40)) {
        let mut relation = Relation::new("edge", None);
        let mut reference: BTreeSet<(i64, i64)> = BTreeSet::new();
        for &(a, b) in &tuples {
            let fresh = relation.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
            prop_assert_eq!(fresh, reference.insert((a, b)));
        }
        prop_assert_eq!(relation.len(), reference.len());
        for &(a, b) in &tuples {
            prop_assert!(relation.contains(&[Value::Int(a), Value::Int(b)]));
        }
        // Sorted iteration yields exactly the reference contents, in order.
        let sorted: Vec<(i64, i64)> = relation
            .sorted()
            .into_iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        let expected: Vec<(i64, i64)> = reference.iter().copied().collect();
        prop_assert_eq!(sorted, expected);
    }

    /// Removal brings the relation back in sync with the reference set.
    #[test]
    fn relation_remove_tracks_reference(tuples in proptest::collection::vec((0i64..10, 0i64..10), 1..30),
                                        removals in proptest::collection::vec((0i64..10, 0i64..10), 0..30)) {
        let mut relation = Relation::new("edge", None);
        let mut reference: BTreeSet<(i64, i64)> = BTreeSet::new();
        for &(a, b) in &tuples {
            relation.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
            reference.insert((a, b));
        }
        for &(a, b) in &removals {
            let removed = relation.remove(&[Value::Int(a), Value::Int(b)]);
            prop_assert_eq!(removed, reference.remove(&(a, b)));
        }
        prop_assert_eq!(relation.len(), reference.len());
    }

    /// A functional relation (`p[k] = v`) keeps exactly one value per key
    /// under insert_or_replace, and functional_lookup returns the latest one.
    #[test]
    fn functional_relation_keeps_single_value_per_key(
        entries in proptest::collection::vec((0i64..8, 0i64..100), 1..40)
    ) {
        let mut relation = Relation::new("cost", Some(1));
        let mut reference: std::collections::BTreeMap<i64, i64> = Default::default();
        for &(k, v) in &entries {
            relation.insert_or_replace(vec![Value::Int(k), Value::Int(v)]).unwrap();
            reference.insert(k, v);
        }
        prop_assert_eq!(relation.len(), reference.len());
        for (&k, &v) in &reference {
            prop_assert_eq!(
                relation.functional_lookup(&[Value::Int(k)]),
                Some(&Value::Int(v))
            );
        }
    }

    /// Inserting a conflicting value for an existing key with plain `insert`
    /// is a functional-dependency violation, and the stored value is
    /// unchanged by the failed insertion.
    #[test]
    fn functional_relation_rejects_conflicts(k in 0i64..10, v1 in 0i64..50, delta in 1i64..50) {
        let v2 = v1 + delta;
        let mut relation = Relation::new("cost", Some(1));
        relation.insert(vec![Value::Int(k), Value::Int(v1)]).unwrap();
        let err = relation.insert(vec![Value::Int(k), Value::Int(v2)]);
        prop_assert!(err.is_err());
        prop_assert_eq!(relation.functional_lookup(&[Value::Int(k)]), Some(&Value::Int(v1)));
        prop_assert_eq!(relation.len(), 1);
    }

    /// `select` with a partially-bound pattern returns exactly the tuples a
    /// linear scan would.
    #[test]
    fn relation_select_matches_linear_scan(tuples in proptest::collection::vec((0i64..6, 0i64..6), 0..40),
                                           probe in 0i64..6) {
        let mut relation = Relation::new("edge", None);
        for &(a, b) in &tuples {
            let _ = relation.insert(vec![Value::Int(a), Value::Int(b)]);
        }
        let selected: BTreeSet<(i64, i64)> = relation
            .select(&[Some(Value::Int(probe)), None])
            .into_iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        let expected: BTreeSet<(i64, i64)> =
            tuples.iter().copied().filter(|&(a, _)| a == probe).collect();
        prop_assert_eq!(&selected, &expected);
        prop_assert_eq!(relation.matches_any(&[Some(Value::Int(probe)), None]), !expected.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Semi-naïve evaluation vs. an independent reference closure
// ---------------------------------------------------------------------------

/// Warshall-style reference transitive closure.
fn reference_closure(n: usize, edges: &BTreeSet<(usize, usize)>) -> BTreeSet<(usize, usize)> {
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.insert((i, j));
            }
        }
    }
    out
}

fn node_value(i: usize) -> Value {
    Value::str(format!("n{i}"))
}

fn install_tc_workspace(edges: &BTreeSet<(usize, usize)>) -> Workspace {
    let mut ws = Workspace::new();
    ws.install_source(
        "reachable(X, Y) <- link(X, Y).\n\
         reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
    )
    .unwrap();
    for &(a, b) in edges {
        ws.assert_fact("link", vec![node_value(a), node_value(b)])
            .unwrap();
    }
    ws.fixpoint().unwrap();
    ws
}

fn reachable_pairs(ws: &Workspace, n: usize) -> BTreeSet<(usize, usize)> {
    let mut out = BTreeSet::new();
    for tuple in ws.query("reachable") {
        let a = tuple[0].as_str().unwrap()[1..].parse::<usize>().unwrap();
        let b = tuple[1].as_str().unwrap()[1..].parse::<usize>().unwrap();
        assert!(a < n && b < n);
        out.insert((a, b));
    }
    out
}

fn arb_edges(nodes: usize, max_edges: usize) -> impl Strategy<Value = BTreeSet<(usize, usize)>> {
    proptest::collection::btree_set((0..nodes, 0..nodes), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's recursive transitive closure equals the Warshall
    /// reference on random graphs.
    #[test]
    fn seminaive_transitive_closure_matches_reference(edges in arb_edges(7, 24)) {
        let ws = install_tc_workspace(&edges);
        prop_assert_eq!(reachable_pairs(&ws, 7), reference_closure(7, &edges));
    }

    /// Feeding the same links in several separate transactions produces the
    /// same closure as one big fixpoint (incremental insertion is exact).
    #[test]
    fn incremental_insertion_matches_batch(edges in arb_edges(6, 18), split in 1usize..5) {
        // Batch workspace.
        let batch_ws = install_tc_workspace(&edges);

        // Incremental workspace: same rules, links arrive in `split` chunks.
        let mut inc_ws = Workspace::new();
        inc_ws
            .install_source(
                "reachable(X, Y) <- link(X, Y).\n\
                 reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            )
            .unwrap();
        let edge_list: Vec<_> = edges.iter().copied().collect();
        for chunk in edge_list.chunks(split.max(1)) {
            let batch = chunk
                .iter()
                .map(|&(a, b)| ("link".to_string(), vec![node_value(a), node_value(b)]))
                .collect();
            inc_ws.transaction(batch).unwrap();
        }
        prop_assert_eq!(reachable_pairs(&inc_ws, 6), reference_closure(6, &edges));
        prop_assert_eq!(reachable_pairs(&inc_ws, 6), reachable_pairs(&batch_ws, 6));
    }

    /// DRed incremental deletion leaves exactly the closure of the remaining
    /// edges — equivalent to recomputing from scratch.
    #[test]
    fn dred_deletion_matches_recomputation(edges in arb_edges(6, 18),
                                           delete_mask in proptest::collection::vec(any::<bool>(), 18)) {
        let mut ws = install_tc_workspace(&edges);
        let edge_list: Vec<_> = edges.iter().copied().collect();
        let deleted: BTreeSet<(usize, usize)> = edge_list
            .iter()
            .enumerate()
            .filter(|(i, _)| delete_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, &e)| e)
            .collect();
        if !deleted.is_empty() {
            let batch = deleted
                .iter()
                .map(|&(a, b)| ("link".to_string(), vec![node_value(a), node_value(b)]))
                .collect();
            ws.retract(batch).unwrap();
        }
        let remaining: BTreeSet<(usize, usize)> =
            edges.difference(&deleted).copied().collect();
        prop_assert_eq!(reachable_pairs(&ws, 6), reference_closure(6, &remaining));
    }

    /// Aggregation: the `min` aggregate over per-pair path costs equals the
    /// reference minimum.
    #[test]
    fn min_aggregate_matches_reference(costs in proptest::collection::vec((0i64..5, 0i64..5, 1i64..100), 1..30)) {
        let mut ws = Workspace::new();
        ws.install_source("best(X, Y, C) <- agg<< C = min(Cx) >> cost(X, Y, Cx).").unwrap();
        let mut reference: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
        for &(x, y, c) in &costs {
            ws.assert_fact("cost", vec![Value::Int(x), Value::Int(y), Value::Int(c)]).unwrap();
            reference
                .entry((x, y))
                .and_modify(|cur| *cur = (*cur).min(c))
                .or_insert(c);
        }
        ws.fixpoint().unwrap();
        let got: std::collections::BTreeMap<(i64, i64), i64> = ws
            .query("best")
            .into_iter()
            .map(|t| {
                ((t[0].as_int().unwrap(), t[1].as_int().unwrap()), t[2].as_int().unwrap())
            })
            .collect();
        prop_assert_eq!(got, reference);
    }
}

// ---------------------------------------------------------------------------
// Transactional constraint semantics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A batch that violates a type constraint rolls back in full; a batch
    /// that satisfies it commits in full.  This is the §5.2 ACID property the
    /// security policies are built on.
    #[test]
    fn constraint_violation_rolls_back_whole_batch(
        links in proptest::collection::vec((0usize..5, 0usize..5), 1..10),
        include_bad in any::<bool>()
    ) {
        let mut ws = Workspace::new();
        ws.install_source(
            "link(X, Y) -> node(X), node(Y).\n\
             reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        for i in 0..5 {
            ws.assert_fact("node", vec![node_value(i)]).unwrap();
        }
        let mut batch: Vec<(String, Vec<Value>)> = links
            .iter()
            .map(|&(a, b)| ("link".to_string(), vec![node_value(a), node_value(b)]))
            .collect();
        if include_bad {
            // "n99" is not a declared node, so the constraint must fail.
            batch.push(("link".to_string(), vec![node_value(0), Value::str("n99")]));
        }
        let before = ws.total_facts();
        let result = ws.transaction(batch);
        if include_bad {
            prop_assert!(result.is_err());
            prop_assert_eq!(ws.total_facts(), before);
            prop_assert_eq!(ws.count("reachable"), 0);
        } else {
            result.unwrap();
            let expected_links: BTreeSet<(usize, usize)> = links.iter().copied().collect();
            prop_assert_eq!(ws.count("link"), expected_links.len());
            prop_assert!(ws.count("reachable") >= expected_links.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Parser / pretty-printer fixpoint
// ---------------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

/// A small random—but always well-formed—program: type declarations, facts,
/// and range-restricted rules over binary predicates.  Generic-rule syntax is
/// excluded here (its `Display` form summarises templates); the structural
/// guarantees of generated code are covered by the `secureblox-generics`
/// property tests instead.
fn arb_program_text() -> impl Strategy<Value = String> {
    let decl = (arb_ident(), arb_ident(), arb_ident())
        .prop_map(|(p, t1, t2)| format!("{p}(X, Y) -> {t1}(X), {t2}(Y)."));
    let fact =
        (arb_ident(), arb_ident(), 0i64..10_000).prop_map(|(p, a, i)| format!("{p}({a}, {i})."));
    let rule = (arb_ident(), arb_ident(), arb_ident())
        .prop_map(|(h, b1, b2)| format!("{h}(X, Y) <- {b1}(X, Z), {b2}(Z, Y)."));
    let constraint =
        (arb_ident(), arb_ident()).prop_map(|(p, q)| format!("{p}(X, Y) -> {q}(X), {q}(Y)."));
    proptest::collection::vec(prop_oneof![decl, fact, rule, constraint], 1..12)
        .prop_map(|stmts| stmts.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pretty-printing a parsed program and re-parsing it reaches a fixpoint:
    /// the second print equals the first.  This is what makes the
    /// BloxGenerics "reify program from relational representation" step
    /// trustworthy.
    #[test]
    fn parse_display_parse_is_a_fixpoint(source in arb_program_text()) {
        let first = parse_program(&source).unwrap();
        let printed = first.to_string();
        let second = parse_program(&printed)
            .unwrap_or_else(|e| panic!("pretty-printed program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(printed, second.to_string());
    }

    /// Statement count is preserved by the roundtrip.
    #[test]
    fn roundtrip_preserves_statement_count(source in arb_program_text()) {
        let first = parse_program(&source).unwrap();
        let second = parse_program(&first.to_string()).unwrap();
        prop_assert_eq!(first.statements.len(), second.statements.len());
    }
}
