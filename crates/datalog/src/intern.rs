//! Workspace-level value interning: the dictionary behind columnar storage.
//!
//! Every [`Value`] that enters a relation is encoded once into a dense `u32`
//! id.  Relations then store column-major id vectors, membership and index
//! maps key on 64-bit FNV hashes of id projections, and the equality checks
//! on the join hot path become integer compares.  `Value`s are rehydrated
//! only at the boundaries — UDF calls, non-interned comparisons, head
//! construction for new tuples, and the codec/signing layer, which must keep
//! seeing real `Value`s so wire bytes and Merkle roots are unchanged.
//!
//! The dictionary is append-only: ids are never reused or remapped, so a
//! transaction snapshot (a `Relation::clone`) can share the same `Arc`'d
//! interner as the live workspace — a rollback merely leaves a few unused
//! ids behind.  Because the mapping `Value -> id` is injective, id equality
//! is value equality for any two rows encoded against the *same* interner
//! (the batch executor checks `Arc::ptr_eq` before joining in id space).
//!
//! Threading contract: reads (`try_id`, `try_row`, `value`, `resolve_row`)
//! are taken freely from worker threads; **only the evaluator thread
//! interns** (`intern`, `intern_row`).  This keeps id assignment order a
//! pure function of the operation sequence, independent of worker count and
//! scheduling, which the determinism contract (`props_parallel.rs`,
//! `props_columnar.rs`) relies on.

use crate::value::{Tuple, Value};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over raw bytes, used for every integer-keyed map in the storage
/// layer (fast on short keys, no per-map random state to re-seed on clone).
pub struct Fnv64Hasher(u64);

impl Default for Fnv64Hasher {
    fn default() -> Self {
        Fnv64Hasher(FNV_OFFSET)
    }
}

impl Hasher for Fnv64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hasher for maps whose keys are *already* 64-bit hashes (the id-projection
/// keys of membership and index maps): passes the key through unchanged.
#[derive(Default)]
pub struct PassHasher(u64);

impl Hasher for PassHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached via non-u64 key types; fold bytes FNV-style.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

/// Build-hasher aliases for the storage layer's integer-keyed maps.
pub type FnvBuild = BuildHasherDefault<Fnv64Hasher>;
pub type PassBuild = BuildHasherDefault<PassHasher>;

/// FNV-1a over a seed and a sequence of interned ids.  All row, key, and
/// projection hashes in [`crate::relation`] go through this one function so
/// a probe hashes exactly like the insert that built the bucket.
pub fn fnv_ids(seed: u64, ids: impl IntoIterator<Item = u32>) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in seed.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for id in ids {
        for byte in id.to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

#[derive(Debug, Default)]
struct InternerState {
    /// id -> value (dense, append-only).
    values: Vec<Value>,
    /// value -> id.
    ids: HashMap<Value, u32, FnvBuild>,
}

/// The append-only value dictionary shared by every relation of a workspace.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<InternerState>,
}

impl Interner {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Interner::default()
    }

    // The interner stays usable even if a worker panicked while holding a
    // read guard: readers never leave the state inconsistent, so poisoning
    // carries no information here.
    fn read(&self) -> RwLockReadGuard<'_, InternerState> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, InternerState> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.read().values.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode `value`, assigning the next dense id on first sight.
    /// Evaluator-thread only (see the module docs).
    pub fn intern(&self, value: &Value) -> u32 {
        if let Some(id) = self.try_id(value) {
            return id;
        }
        let mut state = self.write();
        if let Some(&id) = state.ids.get(value) {
            return id;
        }
        let id = u32::try_from(state.values.len()).expect("interner id space exhausted");
        state.values.push(value.clone());
        state.ids.insert(value.clone(), id);
        id
    }

    /// The id of `value` if it has been interned; never inserts.  A `None`
    /// means the value occurs in *no* relation sharing this dictionary, so
    /// probes can treat it as a definitive miss.
    pub fn try_id(&self, value: &Value) -> Option<u32> {
        self.read().ids.get(value).copied()
    }

    /// Encode a whole row into `out` (cleared first) under one lock.
    /// Evaluator-thread only.
    pub fn intern_row(&self, values: &[Value], out: &mut Vec<u32>) {
        out.clear();
        // Fast path: all values already known under a single read lock.
        {
            let state = self.read();
            let mut hit = true;
            for value in values {
                match state.ids.get(value) {
                    Some(&id) => out.push(id),
                    None => {
                        hit = false;
                        break;
                    }
                }
            }
            if hit {
                return;
            }
        }
        out.clear();
        let mut state = self.write();
        for value in values {
            let id = match state.ids.get(value) {
                Some(&id) => id,
                None => {
                    let id =
                        u32::try_from(state.values.len()).expect("interner id space exhausted");
                    state.values.push(value.clone());
                    state.ids.insert(value.clone(), id);
                    id
                }
            };
            out.push(id);
        }
    }

    /// Encode a row without inserting; `false` (with `out` cleared) when any
    /// value is unknown — i.e. the row cannot exist in any sharing relation.
    pub fn try_row(&self, values: &[Value], out: &mut Vec<u32>) -> bool {
        out.clear();
        let state = self.read();
        for value in values {
            match state.ids.get(value) {
                Some(&id) => out.push(id),
                None => {
                    out.clear();
                    return false;
                }
            }
        }
        true
    }

    /// Rehydrate one id.
    pub fn value(&self, id: u32) -> Value {
        self.read().values[id as usize].clone()
    }

    /// Rehydrate a row of ids into a fresh tuple under one lock.
    pub fn resolve_row(&self, ids: &[u32]) -> Tuple {
        let state = self.read();
        ids.iter()
            .map(|&id| state.values[id as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_injective() {
        let interner = Interner::new();
        let a = interner.intern(&Value::Int(7));
        let b = interner.intern(&Value::str("seven"));
        assert_ne!(a, b);
        assert_eq!(interner.intern(&Value::Int(7)), a);
        assert_eq!(interner.try_id(&Value::str("seven")), Some(b));
        assert_eq!(interner.try_id(&Value::Int(8)), None);
        assert_eq!(interner.value(a), Value::Int(7));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn row_round_trip() {
        let interner = Interner::new();
        let row = vec![Value::Int(1), Value::str("x"), Value::Bool(true)];
        let mut ids = Vec::new();
        interner.intern_row(&row, &mut ids);
        assert_eq!(ids.len(), 3);
        assert_eq!(interner.resolve_row(&ids), row);
        let mut probe = Vec::new();
        assert!(interner.try_row(&row, &mut probe));
        assert_eq!(probe, ids);
        assert!(!interner.try_row(&[Value::Int(99)], &mut probe));
        assert!(probe.is_empty());
    }

    #[test]
    fn fnv_ids_depends_on_seed_order_and_content() {
        assert_eq!(fnv_ids(2, [1, 2, 3]), fnv_ids(2, [1, 2, 3]));
        assert_ne!(fnv_ids(2, [1, 2, 3]), fnv_ids(2, [3, 2, 1]));
        assert_ne!(fnv_ids(2, [1, 2, 3]), fnv_ids(3, [1, 2, 3]));
        assert_ne!(fnv_ids(0, []), fnv_ids(1, []));
    }

    #[test]
    fn concurrent_readers_while_interning() {
        let interner = std::sync::Arc::new(Interner::new());
        for i in 0..64 {
            interner.intern(&Value::Int(i));
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let interner = std::sync::Arc::clone(&interner);
                scope.spawn(move || {
                    for i in 0..64 {
                        assert!(interner.try_id(&Value::Int(i)).is_some());
                    }
                });
            }
        });
    }
}
