//! Runtime values stored in relations.
//!
//! DatalogLB values are dynamically typed at the storage layer; the static
//! type system (unary "type" predicates plus built-in primitive types) is
//! enforced by [`crate::typecheck`] at compile time and by runtime integrity
//! constraints.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer (`int[32]` and `int[64]` in DatalogLB syntax both
    /// map here).
    Int(i64),
    /// Interned string / symbol.  Node names, principal names and string
    /// literals all use this representation.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Opaque byte string — serialized tuples, signatures, ciphertexts, keys.
    Bytes(Arc<Vec<u8>>),
    /// An entity minted by a head-existential variable (e.g. `pathvar`).
    Entity(u64),
    /// A reference to a predicate, used by meta-level (BloxGenerics) facts
    /// such as `predicate(T)` or `exportable('path)`.
    Pred(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a byte-string value.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(Arc::new(b.into()))
    }

    /// Construct a predicate-reference value.
    pub fn pred(name: impl AsRef<str>) -> Value {
        Value::Pred(Arc::from(name.as_ref()))
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The byte payload, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The referenced predicate name, if this is a [`Value::Pred`].
    pub fn as_pred(&self) -> Option<&str> {
        match self {
            Value::Pred(p) => Some(p),
            _ => None,
        }
    }

    /// The built-in primitive type name of this value, used in type checking
    /// and error messages.
    pub fn primitive_type(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Bytes(_) => "bytes",
            Value::Entity(_) => "entity",
            Value::Pred(_) => "pred",
        }
    }

    /// A deterministic total order across all values (used by aggregation and
    /// for stable output ordering).  Values of different variants order by
    /// variant first.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Str(_) => 1,
                Value::Bool(_) => 2,
                Value::Bytes(_) => 3,
                Value::Entity(_) => 4,
                Value::Pred(_) => 5,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::Entity(a), Value::Entity(b)) => a.cmp(b),
            (Value::Pred(a), Value::Pred(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// `Display` writes values the way they appear in DatalogLB source text.
/// Lexicographic total order on tuples under [`Value::total_cmp`]: the
/// single definition shared by [`crate::relation::Relation::sorted`] and the
/// parallel executor's deterministic merge, so stored order and merged order
/// can never drift apart.
pub fn tuple_total_cmp(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => {
                if s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
                    && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s:?}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter().take(16) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 16 {
                    write!(f, "..[{}B]", b.len())?;
                }
                Ok(())
            }
            Value::Entity(id) => write!(f, "@e{id}"),
            Value::Pred(p) => write!(f, "`{p}"),
        }
    }
}

/// A tuple of values, i.e. one row of a relation.
pub type Tuple = Vec<Value>;

/// Render a tuple for diagnostics.
pub fn format_tuple(tuple: &[Value]) -> String {
    let parts: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("n1").as_str(), Some("n1"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::pred("link").as_pred(), Some("link"));
        assert_eq!(Value::Int(3).as_str(), None);
    }

    #[test]
    fn primitive_types() {
        assert_eq!(Value::Int(1).primitive_type(), "int");
        assert_eq!(Value::str("x").primitive_type(), "string");
        assert_eq!(Value::Entity(1).primitive_type(), "entity");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("n1").to_string(), "n1");
        assert_eq!(Value::str("Hello world").to_string(), "\"Hello world\"");
        assert_eq!(Value::pred("reachable").to_string(), "`reachable");
        assert_eq!(Value::Entity(9).to_string(), "@e9");
        assert!(Value::bytes(vec![0xde, 0xad])
            .to_string()
            .starts_with("0xdead"));
    }

    #[test]
    fn total_ordering_is_total_and_consistent() {
        let values = vec![
            Value::Int(1),
            Value::Int(5),
            Value::str("a"),
            Value::str("b"),
            Value::Bool(false),
            Value::bytes(vec![0]),
            Value::Entity(3),
            Value::pred("p"),
        ];
        for a in &values {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &values {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(5)), Ordering::Less);
        assert_eq!(
            Value::str("b").total_cmp(&Value::str("a")),
            Ordering::Greater
        );
    }

    #[test]
    fn format_tuple_readable() {
        assert_eq!(format_tuple(&[Value::str("n1"), Value::Int(2)]), "(n1, 2)");
    }
}
