//! Error types for the DatalogLB engine.

use crate::value::{format_tuple, Tuple};
use std::fmt;

/// Errors raised while parsing, checking, installing, or evaluating a
/// DatalogLB program.
#[derive(Debug, Clone, PartialEq)]
pub enum DatalogError {
    /// Lexical or syntactic error with position information.
    Parse {
        message: String,
        line: usize,
        column: usize,
    },
    /// A static type error detected at compile time.
    Type(String),
    /// A schema inconsistency (arity mismatch, redeclaration, unknown predicate).
    Schema(String),
    /// A program is not stratifiable (negation or aggregation through recursion).
    Stratification(String),
    /// A runtime integrity-constraint violation; the enclosing transaction is
    /// rolled back.
    ConstraintViolation(ConstraintViolation),
    /// A functional-dependency violation: the same key mapped to two values.
    FunctionalDependency {
        predicate: String,
        key: Tuple,
        existing: Tuple,
        attempted: Tuple,
    },
    /// A user-defined function failed or was called with unbound inputs.
    Udf { function: String, message: String },
    /// Fixpoint evaluation exceeded its iteration budget.
    FixpointBudget { iterations: usize },
    /// A generic (meta-level) error from the BloxGenerics compiler.
    Generics(String),
    /// Any other evaluation error.
    Eval(String),
}

/// Details of a violated integrity constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintViolation {
    /// Text of the violated constraint.
    pub constraint: String,
    /// The left-hand-side binding that could not be extended to satisfy the
    /// right-hand side, rendered for diagnostics.
    pub witness: String,
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse {
                message,
                line,
                column,
            } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            DatalogError::Type(msg) => write!(f, "type error: {msg}"),
            DatalogError::Schema(msg) => write!(f, "schema error: {msg}"),
            DatalogError::Stratification(msg) => write!(f, "stratification error: {msg}"),
            DatalogError::ConstraintViolation(v) => {
                write!(
                    f,
                    "constraint violation: {} (witness {})",
                    v.constraint, v.witness
                )
            }
            DatalogError::FunctionalDependency {
                predicate,
                key,
                existing,
                attempted,
            } => write!(
                f,
                "functional dependency violation on {predicate}: key {} maps to both {} and {}",
                format_tuple(key),
                format_tuple(existing),
                format_tuple(attempted)
            ),
            DatalogError::Udf { function, message } => {
                write!(f, "user-defined function {function} failed: {message}")
            }
            DatalogError::FixpointBudget { iterations } => {
                write!(
                    f,
                    "fixpoint evaluation did not terminate within {iterations} iterations"
                )
            }
            DatalogError::Generics(msg) => write!(f, "BloxGenerics error: {msg}"),
            DatalogError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, DatalogError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn display_variants() {
        let err = DatalogError::Parse {
            message: "unexpected token".into(),
            line: 3,
            column: 7,
        };
        assert!(err.to_string().contains("3:7"));

        let err = DatalogError::FunctionalDependency {
            predicate: "bestcost".into(),
            key: vec![Value::str("n1"), Value::str("n2")],
            existing: vec![Value::Int(2)],
            attempted: vec![Value::Int(3)],
        };
        let text = err.to_string();
        assert!(text.contains("bestcost"));
        assert!(text.contains("(n1, n2)"));

        let err = DatalogError::ConstraintViolation(ConstraintViolation {
            constraint: "says_link(P, Q) -> principal(P).".into(),
            witness: "P = mallory".into(),
        });
        assert!(err.to_string().contains("mallory"));
    }
}
