//! Abstract syntax for DatalogLB programs, including the BloxGenerics
//! meta-programming extensions (generic rules `<--`, generic constraints
//! `-->`, code templates `` '{ … } ``, and variable-length argument
//! sequences `V*`).
//!
//! The same term / atom / literal structures are reused at the meta level, so
//! that a code template is simply a list of [`Statement`]s whose predicate
//! positions may be variables.

use crate::value::Value;
use std::fmt;

/// A reference to a predicate appearing in an atom position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredRef {
    /// An ordinary concrete predicate name, e.g. `link`.
    Named(String),
    /// A generic predicate parameterized by a *quoted* concrete predicate,
    /// e.g. ``says[`reachable]``.  The BloxGenerics compiler resolves this to
    /// the mangled concrete name `says$reachable`.
    Parameterized { generic: String, param: String },
    /// A generic predicate parameterized by a predicate *variable*, e.g.
    /// `says[T]` inside a generic rule or template.
    ParameterizedVar { generic: String, var: String },
    /// A predicate variable itself, e.g. `ST` or `T` used directly as a
    /// predicate inside a template: `ST(P1, P2, V*)`.
    Var(String),
}

impl PredRef {
    /// Shorthand for a named predicate reference.
    pub fn named(name: impl Into<String>) -> Self {
        PredRef::Named(name.into())
    }

    /// The concrete name, if this reference is already resolved.
    pub fn as_named(&self) -> Option<&str> {
        match self {
            PredRef::Named(n) => Some(n),
            _ => None,
        }
    }

    /// True if this reference contains no meta-level variables.
    pub fn is_concrete(&self) -> bool {
        matches!(self, PredRef::Named(_) | PredRef::Parameterized { .. })
    }
}

impl fmt::Display for PredRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredRef::Named(n) => write!(f, "{n}"),
            PredRef::Parameterized { generic, param } => write!(f, "{generic}[`{param}]"),
            PredRef::ParameterizedVar { generic, var } => write!(f, "{generic}[{var}]"),
            PredRef::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Arithmetic operators usable in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators usable in body literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A term: an argument position of an atom, or an operand of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable (`X`, `Src`, …).
    Var(String),
    /// The anonymous variable `_`.
    Wildcard,
    /// A literal constant.
    Const(Value),
    /// Access to a zero-key functional predicate used inline as a term,
    /// e.g. `self[]` or `initiator[]`.
    SingletonRef(String),
    /// A variable-length variable sequence `V*` (BloxGenerics templates only).
    VarSeq(String),
    /// Arithmetic over terms, e.g. `C + 1`.
    BinOp(Box<Term>, ArithOp, Box<Term>),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Collect the variables mentioned in this term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) if !out.contains(v) => out.push(v.clone()),
            Term::BinOp(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Term::VarSeq(v) if !out.contains(v) => out.push(v.clone()),
            _ => {}
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Wildcard => write!(f, "_"),
            Term::Const(v) => write!(f, "{v}"),
            Term::SingletonRef(p) => write!(f, "{p}[]"),
            Term::VarSeq(v) => write!(f, "{v}*"),
            Term::BinOp(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// An atom: a predicate applied to terms.
///
/// Functional-syntax atoms `p[k1,…,kn] = v` are represented positionally
/// (terms `k1,…,kn,v`) with `functional = true` and the predicate's key arity
/// recorded in the schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub pred: PredRef,
    pub terms: Vec<Term>,
    /// True if the atom was written with functional (`p[..]=v`) syntax.
    pub functional: bool,
}

impl Atom {
    /// Construct a plain (non-functional) atom over a named predicate.
    pub fn new(pred: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            pred: PredRef::Named(pred.into()),
            terms,
            functional: false,
        }
    }

    /// Construct a functional-syntax atom (`p[keys…] = value`).
    pub fn functional(pred: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            pred: PredRef::Named(pred.into()),
            terms,
            functional: true,
        }
    }

    /// Collect all variables mentioned in the atom.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        for term in &self.terms {
            term.collect_vars(out);
        }
        if let PredRef::Var(v) | PredRef::ParameterizedVar { var: v, .. } = &self.pred {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        if self.functional && !args.is_empty() {
            let (keys, value) = args.split_at(args.len() - 1);
            write!(f, "{}[{}] = {}", self.pred, keys.join(", "), value[0])
        } else {
            write!(f, "{}({})", self.pred, args.join(", "))
        }
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (`!p(..)`).
    Neg(Atom),
    /// A comparison between two terms.  `X = <ground term>` doubles as an
    /// assignment when `X` is unbound.
    Cmp(Term, CmpOp, Term),
}

impl Literal {
    /// Collect all variables mentioned in the literal.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.collect_vars(out),
            Literal::Cmp(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The atom, if this is a positive literal.
    pub fn as_pos(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "!{a}"),
            Literal::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// Aggregation functions supported in rule heads (LogicBlox `agg<<…>>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Min,
    Max,
    Count,
    Sum,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
        };
        write!(f, "{s}")
    }
}

/// An aggregation specification: `agg<< Result = func(Input) >>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub result_var: String,
    pub func: AggFunc,
    pub input_var: String,
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agg<< {} = {}({}) >>",
            self.result_var, self.func, self.input_var
        )
    }
}

/// A derivation rule: `head1, …, headM <- body1, …, bodyN.`
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    pub head: Vec<Atom>,
    pub body: Vec<Literal>,
    pub agg: Option<AggSpec>,
}

impl Rule {
    /// Construct a rule without aggregation.
    pub fn new(head: Vec<Atom>, body: Vec<Literal>) -> Self {
        Rule {
            head,
            body,
            agg: None,
        }
    }

    /// Variables that appear in the head but are never bound in the body —
    /// head-existential variables, for which a fresh entity is minted per
    /// distinct body binding.
    pub fn head_existentials(&self) -> Vec<String> {
        let mut body_vars = Vec::new();
        for lit in &self.body {
            lit.collect_vars(&mut body_vars);
        }
        if let Some(agg) = &self.agg {
            body_vars.push(agg.result_var.clone());
        }
        let mut head_vars = Vec::new();
        for atom in &self.head {
            atom.collect_vars(&mut head_vars);
        }
        head_vars
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        let body: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        match &self.agg {
            Some(agg) => write!(f, "{} <- {} {}.", head.join(", "), agg, body.join(", ")),
            None => write!(f, "{} <- {}.", head.join(", "), body.join(", ")),
        }
    }
}

/// An integrity constraint: `lhs1, …, lhsM -> rhs1, …, rhsN.`
///
/// Semantics: for every binding satisfying the left-hand side, the right-hand
/// side must be satisfiable.  An empty right-hand side (written `-> .`) is a
/// pure declaration and never fails.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    pub lhs: Vec<Literal>,
    pub rhs: Vec<Literal>,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<String> = self.lhs.iter().map(|l| l.to_string()).collect();
        let rhs: Vec<String> = self.rhs.iter().map(|l| l.to_string()).collect();
        write!(f, "{} -> {}.", lhs.join(", "), rhs.join(", "))
    }
}

/// A ground fact written directly in a program: `link(n1, n2).`
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FactDecl {
    pub atom: Atom,
}

/// A generic (meta-programming) rule: `heads, templates <-- body.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericRule {
    /// Meta-level head atoms, e.g. `says[T] = ST`, `predicate(ST)`.
    pub head: Vec<Atom>,
    /// Code templates to instantiate for each satisfying binding.
    pub templates: Vec<Template>,
    /// Meta-level body literals, e.g. `predicate(T)`, `exportable(T)`.
    pub body: Vec<Literal>,
}

impl fmt::Display for GenericRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        let body: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        let mut lhs = head;
        for t in &self.templates {
            lhs.push(format!("'{{ {} statements }}", t.statements.len()));
        }
        write!(f, "{} <-- {}.", lhs.join(", "), body.join(", "))
    }
}

/// A generic constraint: `lhs --> rhs.` checked over meta-level facts at
/// BloxGenerics compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericConstraint {
    pub lhs: Vec<Literal>,
    pub rhs: Vec<Literal>,
}

/// A quoted code template `` '{ … } `` containing DatalogLB statements whose
/// predicate positions and argument sequences may be meta-variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    pub statements: Vec<Statement>,
}

/// A top-level statement of a (possibly generic) DatalogLB program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    Rule(Rule),
    Constraint(Constraint),
    Fact(FactDecl),
    GenericRule(GenericRule),
    GenericConstraint(GenericConstraint),
}

impl Statement {
    /// True if the statement is a meta-level (BloxGenerics) statement.
    pub fn is_generic(&self) -> bool {
        matches!(
            self,
            Statement::GenericRule(_) | Statement::GenericConstraint(_)
        )
    }
}

/// A parsed program: an ordered list of statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub statements: Vec<Statement>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program {
            statements: Vec::new(),
        }
    }

    /// Append all statements of `other`.
    pub fn extend(&mut self, other: Program) {
        self.statements.extend(other.statements);
    }

    /// Iterate over the concrete (non-generic) rules.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Rule(r) => Some(r),
            _ => None,
        })
    }

    /// Iterate over the concrete constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Constraint(c) => Some(c),
            _ => None,
        })
    }

    /// Iterate over ground facts.
    pub fn facts(&self) -> impl Iterator<Item = &FactDecl> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Fact(fd) => Some(fd),
            _ => None,
        })
    }

    /// Iterate over generic rules.
    pub fn generic_rules(&self) -> impl Iterator<Item = &GenericRule> {
        self.statements.iter().filter_map(|s| match s {
            Statement::GenericRule(g) => Some(g),
            _ => None,
        })
    }

    /// Iterate over generic constraints.
    pub fn generic_constraints(&self) -> impl Iterator<Item = &GenericConstraint> {
        self.statements.iter().filter_map(|s| match s {
            Statement::GenericConstraint(g) => Some(g),
            _ => None,
        })
    }

    /// True if the program contains any BloxGenerics statements (and thus
    /// needs the meta-compiler before it can be installed in a workspace).
    pub fn has_generics(&self) -> bool {
        self.statements.iter().any(|s| s.is_generic())
            || self.statements.iter().any(|s| match s {
                Statement::Rule(r) => {
                    r.head.iter().any(|a| !a.pred.is_concrete())
                        || r.body.iter().any(|l| match l {
                            Literal::Pos(a) | Literal::Neg(a) => !a.pred.is_concrete(),
                            Literal::Cmp(..) => false,
                        })
                }
                Statement::Constraint(c) => c.lhs.iter().chain(c.rhs.iter()).any(|l| match l {
                    Literal::Pos(a) | Literal::Neg(a) => !a.pred.is_concrete(),
                    Literal::Cmp(..) => false,
                }),
                _ => false,
            })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for statement in &self.statements {
            match statement {
                Statement::Rule(r) => writeln!(f, "{r}")?,
                Statement::Constraint(c) => writeln!(f, "{c}")?,
                Statement::Fact(fd) => writeln!(f, "{}.", fd.atom)?,
                Statement::GenericRule(g) => writeln!(f, "{g}")?,
                Statement::GenericConstraint(g) => {
                    let lhs: Vec<String> = g.lhs.iter().map(|l| l.to_string()).collect();
                    let rhs: Vec<String> = g.rhs.iter().map(|l| l.to_string()).collect();
                    writeln!(f, "{} --> {}.", lhs.join(", "), rhs.join(", "))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn head_existentials_detected() {
        // pathvar(P), path[P, X, Y] = 1 <- link(X, Y).
        let rule = Rule::new(
            vec![
                atom("pathvar", &["P"]),
                Atom::functional(
                    "path",
                    vec![
                        Term::var("P"),
                        Term::var("X"),
                        Term::var("Y"),
                        Term::Const(Value::Int(1)),
                    ],
                ),
            ],
            vec![Literal::Pos(atom("link", &["X", "Y"]))],
        );
        assert_eq!(rule.head_existentials(), vec!["P".to_string()]);
    }

    #[test]
    fn no_existentials_when_bound() {
        let rule = Rule::new(
            vec![atom("reachable", &["X", "Y"])],
            vec![Literal::Pos(atom("link", &["X", "Y"]))],
        );
        assert!(rule.head_existentials().is_empty());
    }

    #[test]
    fn agg_result_not_existential() {
        let mut rule = Rule::new(
            vec![Atom::functional(
                "bestcost",
                vec![Term::var("X"), Term::var("Y"), Term::var("C")],
            )],
            vec![Literal::Pos(Atom::functional(
                "path",
                vec![
                    Term::var("X"),
                    Term::var("Y"),
                    Term::Wildcard,
                    Term::var("Cx"),
                ],
            ))],
        );
        rule.agg = Some(AggSpec {
            result_var: "C".into(),
            func: AggFunc::Min,
            input_var: "Cx".into(),
        });
        assert!(rule.head_existentials().is_empty());
    }

    #[test]
    fn display_roundtrips_shapes() {
        let rule = Rule::new(
            vec![atom("reachable", &["X", "Y"])],
            vec![
                Literal::Pos(atom("link", &["X", "Z"])),
                Literal::Pos(atom("reachable", &["Z", "Y"])),
            ],
        );
        assert_eq!(
            rule.to_string(),
            "reachable(X, Y) <- link(X, Z), reachable(Z, Y)."
        );

        let c = Constraint {
            lhs: vec![Literal::Pos(atom("says_link", &["P", "Q"]))],
            rhs: vec![Literal::Pos(atom("principal", &["P"]))],
        };
        assert_eq!(c.to_string(), "says_link(P, Q) -> principal(P).");

        let f = Atom::functional(
            "bestcost",
            vec![Term::var("X"), Term::var("Y"), Term::Const(Value::Int(3))],
        );
        assert_eq!(f.to_string(), "bestcost[X, Y] = 3");
    }

    #[test]
    fn predref_display_and_kind() {
        assert_eq!(PredRef::named("link").to_string(), "link");
        assert_eq!(
            PredRef::Parameterized {
                generic: "says".into(),
                param: "reachable".into()
            }
            .to_string(),
            "says[`reachable]"
        );
        assert_eq!(
            PredRef::ParameterizedVar {
                generic: "says".into(),
                var: "T".into()
            }
            .to_string(),
            "says[T]"
        );
        assert!(PredRef::named("x").is_concrete());
        assert!(!PredRef::Var("T".into()).is_concrete());
    }

    #[test]
    fn program_queries() {
        let mut program = Program::new();
        program.statements.push(Statement::Rule(Rule::new(
            vec![atom("a", &["X"])],
            vec![Literal::Pos(atom("b", &["X"]))],
        )));
        program.statements.push(Statement::Constraint(Constraint {
            lhs: vec![Literal::Pos(atom("a", &["X"]))],
            rhs: vec![Literal::Pos(atom("t", &["X"]))],
        }));
        program.statements.push(Statement::Fact(FactDecl {
            atom: Atom::new("b", vec![Term::Const(Value::Int(1))]),
        }));
        assert_eq!(program.rules().count(), 1);
        assert_eq!(program.constraints().count(), 1);
        assert_eq!(program.facts().count(), 1);
        assert!(!program.has_generics());
    }

    #[test]
    fn has_generics_detects_meta_predicates() {
        let mut program = Program::new();
        program.statements.push(Statement::Rule(Rule::new(
            vec![Atom {
                pred: PredRef::ParameterizedVar {
                    generic: "says".into(),
                    var: "T".into(),
                },
                terms: vec![Term::var("P")],
                functional: false,
            }],
            vec![],
        )));
        assert!(program.has_generics());
    }

    #[test]
    fn term_var_collection_dedups() {
        let term = Term::BinOp(
            Box::new(Term::var("C")),
            ArithOp::Add,
            Box::new(Term::BinOp(
                Box::new(Term::var("C")),
                ArithOp::Mul,
                Box::new(Term::Const(Value::Int(2))),
            )),
        );
        let mut vars = Vec::new();
        term.collect_vars(&mut vars);
        assert_eq!(vars, vec!["C".to_string()]);
    }
}
