//! # secureblox-datalog
//!
//! A DatalogLB-style engine: the substrate underneath the SecureBlox
//! reproduction (SIGMOD 2010).  It provides the LogicBlox features the paper
//! relies on:
//!
//! * **Rules** (`<-`) evaluated bottom-up with the semi-naïve algorithm,
//!   stratified negation, aggregation (`agg<< C = min(Cx) >>`), arithmetic,
//!   and head-existential variables that mint fresh entities.
//! * **Integrity constraints** (`->`) checked at runtime inside ACID
//!   transactions, plus compile-time *type declarations* (constraints of the
//!   recognised shape) enforced by a static type checker.
//! * **Functional dependencies** (`p[k…] = v`) and **singletons** (`p[] = v`).
//! * **User-defined functions** callable from rule and constraint bodies —
//!   the hook SecureBlox uses for cryptographic operators.
//! * **Incremental maintenance**: installed rules are maintained under fact
//!   retraction with a DRed-style over-delete / re-derive pass.
//! * A **transactional workspace** ([`Workspace`]) with commit/rollback
//!   semantics matching the paper's §5.2 description.
//!
//! The surface syntax (parser in [`parser`]) also covers the BloxGenerics
//! meta-programming extensions (`<--`, `-->`, `` '{ … } `` templates, `V*`
//! sequences); evaluating those is the job of the `secureblox-generics`
//! crate, which compiles them down to the plain programs this crate executes.
//!
//! ## Quick example
//!
//! ```
//! use secureblox_datalog::Workspace;
//! use secureblox_datalog::value::Value;
//!
//! let mut ws = Workspace::new();
//! ws.install_source(
//!     "reachable(X, Y) <- link(X, Y).\n\
//!      reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
//!      link(n1, n2). link(n2, n3).",
//! ).unwrap();
//! ws.fixpoint().unwrap();
//! assert!(ws.contains_fact("reachable", &[Value::str("n1"), Value::str("n3")]));
//! ```

pub mod ast;
pub mod codec;
pub mod constraint;
pub mod error;
pub mod eval;
pub mod intern;
pub mod parser;
pub mod relation;
pub mod schema;
pub mod strata;
pub mod typecheck;
pub mod udf;
pub mod value;
pub mod workspace;

pub use ast::{Atom, Constraint, Literal, PredRef, Program, Rule, Statement, Term};
pub use codec::{deserialize_tuple, serialize_tuple};
pub use error::{DatalogError, Result};
pub use eval::{EvalConfig, EvalOptions, PlanStatsSnapshot};
pub use intern::Interner;
pub use parser::{parse_program, parse_rule};
pub use relation::{column_set, ColumnSet, Relation};
pub use schema::{PredicateDecl, PredicateKind, Schema};
pub use udf::{UdfRegistry, UdfRows};
pub use value::{Tuple, Value};
pub use workspace::{TransactionReport, Workspace};
