//! Stratification of rule sets.
//!
//! Rules are grouped into strata so that negation is never evaluated over a
//! predicate that is still being derived.  The predicate dependency graph has
//! an edge `body-pred → head-pred` for every rule; the edge is *negative*
//! when the body occurrence is negated.  A program is stratifiable when no
//! negative edge lies inside a strongly connected component.
//!
//! Aggregation edges are treated as positive: recursive aggregates are
//! evaluated by recomputation inside their stratum (see
//! [`crate::eval::seminaive`]), which is what the path-vector use case needs.

use crate::ast::{Literal, Rule};
use crate::error::{DatalogError, Result};
use crate::eval::runtime_pred_name;
use crate::udf::UdfRegistry;
use std::collections::{HashMap, HashSet};

/// Compute evaluation strata for `rules`.
///
/// The result is a list of strata in evaluation order; each stratum is a list
/// of indices into `rules`.  Predicates never appearing in a rule head (pure
/// EDB predicates) impose no ordering.  UDF "predicates" are ignored — they
/// are functions, not relations.
pub fn stratify(rules: &[Rule], udfs: &UdfRegistry) -> Result<Vec<Vec<usize>>> {
    stratify_with(rules, udfs, false)
}

/// Like [`stratify`], but optionally permitting negative edges inside a
/// strongly connected component.
///
/// Some distributed protocols — notably the paper's path-vector use case,
/// whose advertisement rule negates `pathlink` while `pathlink` is itself fed
/// by the `says`-mediated import rule — are only *locally* stratified: the
/// negated tuples always concern a different node's data, so evaluating the
/// negation against the current state within the stratum fixpoint yields the
/// intended protocol behaviour.  With `allow_recursive_negation` such
/// programs are accepted; the default remains strict.
pub fn stratify_with(
    rules: &[Rule],
    udfs: &UdfRegistry,
    allow_recursive_negation: bool,
) -> Result<Vec<Vec<usize>>> {
    // 1. Collect the dependency graph over predicates derived by some rule.
    let mut head_preds: HashSet<String> = HashSet::new();
    for rule in rules {
        for atom in &rule.head {
            head_preds.insert(runtime_pred_name(&atom.pred)?);
        }
    }

    // edges: (from, to, negative)
    let mut edges: Vec<(String, String, bool)> = Vec::new();
    for rule in rules {
        // Predicates derived together by a multi-head rule must share a
        // stratum (the rule fires once and populates all of them), so link
        // them with mutual positive edges.
        for first in &rule.head {
            for second in &rule.head {
                let a = runtime_pred_name(&first.pred)?;
                let b = runtime_pred_name(&second.pred)?;
                if a != b {
                    edges.push((a, b, false));
                }
            }
        }
        for head in &rule.head {
            let head_pred = runtime_pred_name(&head.pred)?;
            for literal in &rule.body {
                let (atom, negative) = match literal {
                    Literal::Pos(a) => (a, false),
                    Literal::Neg(a) => (a, true),
                    Literal::Cmp(..) => continue,
                };
                let body_pred = runtime_pred_name(&atom.pred)?;
                if udfs.is_udf(&body_pred) {
                    continue;
                }
                if !head_preds.contains(&body_pred) {
                    // EDB-only predicate: no ordering needed, but a negated
                    // EDB predicate is always safe.
                    continue;
                }
                edges.push((body_pred, head_pred.clone(), negative));
            }
        }
    }

    // 2. Strongly connected components via iterative Tarjan.
    let mut nodes: Vec<String> = head_preds.iter().cloned().collect();
    nodes.sort();
    let index_of: HashMap<String, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to, _) in &edges {
        adjacency[index_of[from]].push(index_of[to]);
    }
    let scc_of = tarjan_scc(&adjacency);
    let scc_count = scc_of.iter().copied().max().map_or(0, |m| m + 1);

    // 3. Negative edges inside an SCC make the program non-stratifiable
    //    (unless the caller opted into locally-stratified evaluation).
    if !allow_recursive_negation {
        for (from, to, negative) in &edges {
            if *negative && scc_of[index_of[from]] == scc_of[index_of[to]] {
                return Err(DatalogError::Stratification(format!(
                    "negation of {from} is recursive with {to}; the program is not stratifiable"
                )));
            }
        }
    }

    // 4. Assign each SCC a stratum level: longest path over the condensation,
    //    where negative edges force a strict increase.
    let mut level: Vec<usize> = vec![0; scc_count];
    // Iterate to fixpoint; the condensation is a DAG so |SCC| rounds suffice.
    for _ in 0..=scc_count {
        let mut changed = false;
        for (from, to, negative) in &edges {
            let from_scc = scc_of[index_of[from]];
            let to_scc = scc_of[index_of[to]];
            if from_scc == to_scc {
                continue;
            }
            let required = level[from_scc] + usize::from(*negative);
            if level[to_scc] < required {
                level[to_scc] = required;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 5. Order SCCs: primarily by stratum level, secondarily by topological
    //    order (approximated by longest-path level over *all* edges).
    let mut topo_level: Vec<usize> = vec![0; scc_count];
    for _ in 0..=scc_count {
        let mut changed = false;
        for (from, to, _) in &edges {
            let from_scc = scc_of[index_of[from]];
            let to_scc = scc_of[index_of[to]];
            if from_scc == to_scc {
                continue;
            }
            if topo_level[to_scc] < topo_level[from_scc] + 1 {
                topo_level[to_scc] = topo_level[from_scc] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 6. A rule belongs to the stratum of its head predicates (max, if it has
    //    several heads).
    let mut rule_keys: Vec<(usize, usize, usize)> = Vec::with_capacity(rules.len());
    for (rule_index, rule) in rules.iter().enumerate() {
        let mut key = (0usize, 0usize);
        for head in &rule.head {
            let pred = runtime_pred_name(&head.pred)?;
            let scc = scc_of[index_of[&pred]];
            key = key.max((level[scc], topo_level[scc]));
        }
        rule_keys.push((key.0, key.1, rule_index));
    }

    // Group rules by (level, topo_level) in ascending order.
    let mut distinct_keys: Vec<(usize, usize)> =
        rule_keys.iter().map(|(a, b, _)| (*a, *b)).collect();
    distinct_keys.sort();
    distinct_keys.dedup();
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(distinct_keys.len());
    for key in distinct_keys {
        let mut group: Vec<usize> = rule_keys
            .iter()
            .filter(|(a, b, _)| (*a, *b) == key)
            .map(|(_, _, i)| *i)
            .collect();
        group.sort();
        strata.push(group);
    }
    Ok(strata)
}

/// Iterative Tarjan strongly-connected-components algorithm.
/// Returns the SCC id of each node; ids are assigned in reverse topological
/// completion order (which is irrelevant for callers — only equality matters).
fn tarjan_scc(adjacency: &[Vec<usize>]) -> Vec<usize> {
    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let n = adjacency.len();
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack of (node, next child position).
    for start in 0..n {
        if state[start].index.is_some() {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = dfs.last_mut() {
            if *child == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if *child < adjacency[v].len() {
                let w = adjacency[v][*child];
                *child += 1;
                if state[w].index.is_none() {
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.expect("indexed"));
                }
            } else {
                // Finished v.
                if state[v].lowlink == state[v].index.expect("indexed") {
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        state[w].on_stack = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn strata_of(source: &str) -> Result<Vec<Vec<usize>>> {
        let program = parse_program(source).unwrap();
        let rules: Vec<Rule> = program.rules().cloned().collect();
        stratify(&rules, &UdfRegistry::new())
    }

    #[test]
    fn single_stratum_for_recursive_rules() {
        let strata = strata_of(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        assert_eq!(strata, vec![vec![0, 1]]);
    }

    #[test]
    fn negation_forces_later_stratum() {
        let strata = strata_of(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             unreachable(X, Y) <- node(X), node(Y), !reachable(X, Y).",
        )
        .unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0], vec![0, 1]);
        assert_eq!(strata[1], vec![2]);
    }

    #[test]
    fn cyclic_negation_rejected() {
        let err = strata_of(
            "p(X) <- base(X), !q(X).\n\
             q(X) <- base(X), !p(X).",
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::Stratification(_)));
    }

    #[test]
    fn cyclic_negation_allowed_when_opted_in() {
        let program = parse_program(
            "p(X) <- base(X), !q(X).\n\
             q(X) <- imported(X), p(X).",
        )
        .unwrap();
        let rules: Vec<Rule> = program.rules().cloned().collect();
        assert!(stratify(&rules, &UdfRegistry::new()).is_err());
        let strata = stratify_with(&rules, &UdfRegistry::new(), true).unwrap();
        assert_eq!(strata.iter().map(|s| s.len()).sum::<usize>(), 2);
    }

    #[test]
    fn negation_over_edb_is_fine_in_same_stratum() {
        let strata = strata_of("p(X) <- base(X), !blocked(X).").unwrap();
        assert_eq!(strata, vec![vec![0]]);
    }

    #[test]
    fn derived_chain_orders_strata() {
        let strata = strata_of(
            "a(X) <- e(X).\n\
             b(X) <- a(X).\n\
             c(X) <- b(X), !a(X).",
        )
        .unwrap();
        // a before b before c; the negative edge only forces c after a, but
        // the positive chain orders all three.
        assert_eq!(strata.len(), 3);
        assert_eq!(strata[0], vec![0]);
        assert_eq!(strata[1], vec![1]);
        assert_eq!(strata[2], vec![2]);
    }

    #[test]
    fn aggregation_cycle_allowed() {
        // path depends on advert (import), advert depends on bestcost,
        // bestcost aggregates path: a cycle through an aggregate, which is
        // accepted and evaluated by recomputation.
        let strata = strata_of(
            "path(P, X, Y, C) <- advert(P, X, Y, C).\n\
             advert(P, X, Y, C) <- path(P, X, Y, C), bestcost(X, Y, C).\n\
             bestcost(X, Y, C) <- agg<< C = min(Cx) >> path(P, X, Y, Cx).",
        )
        .unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0], vec![0, 1, 2]);
    }

    #[test]
    fn udf_predicates_ignored() {
        let mut udfs = UdfRegistry::new();
        udfs.register("sha1", |_| Ok(vec![]));
        let program = parse_program("h(X, D) <- item(X), sha1(X, D).").unwrap();
        let rules: Vec<Rule> = program.rules().cloned().collect();
        let strata = stratify(&rules, &udfs).unwrap();
        assert_eq!(strata, vec![vec![0]]);
    }

    #[test]
    fn tarjan_handles_self_loops_and_chains() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle between 1 and 2), 3 isolated
        let adjacency = vec![vec![1], vec![2], vec![1], vec![]];
        let scc = tarjan_scc(&adjacency);
        assert_eq!(scc[1], scc[2]);
        assert_ne!(scc[0], scc[1]);
        assert_ne!(scc[3], scc[1]);
    }
}
