//! The workspace: a database instance holding predicate definitions,
//! installed rules, constraints, and data, evaluated transactionally.
//!
//! This mirrors the LogicBlox workspace of the paper's Figure 1: programs are
//! compiled (parsed, type-checked) and installed; applications then add or
//! remove facts, and the installed rules are maintained to fixpoint while
//! runtime constraints are checked.  SecureBlox processes each batch of
//! incoming network facts "in a local ACID transaction that encapsulates a
//! fixpoint computation; if a derivation in the transaction violates a runtime
//! constraint, then the transaction (including the input tuples) is rolled
//! back" (§5.2) — [`Workspace::transaction`] implements exactly that.

use crate::ast::{Constraint, Literal, Program, Rule, Statement, Term};
use crate::constraint::{check_constraints_incremental_planned, check_constraints_planned};
use crate::error::{DatalogError, Result};
use crate::eval::dred::DeletionStats;
use crate::eval::{
    Bindings, EvalConfig, EvalJournal, EvalOptions, Evaluator, FixpointStats, PlanCache, PlanStats,
    PlanStatsSnapshot, WorkerPool,
};
use crate::intern::Interner;
use crate::parser::parse_program;
use crate::relation::Relation;
use crate::schema::{PredicateKind, Schema};
use crate::strata::stratify_with;
use crate::typecheck::typecheck_program;
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a successfully committed transaction.
#[derive(Debug, Clone, Default)]
pub struct TransactionReport {
    /// Base facts newly inserted by this transaction.
    pub inserted: usize,
    /// Tuples derived by the fixpoint computation.
    pub derived: usize,
    /// Semi-naïve iterations executed.
    pub iterations: usize,
    /// Wall-clock duration of the transaction (insert + fixpoint + constraint
    /// check), which the evaluation harness reports as "transaction duration".
    pub duration: Duration,
}

/// A LogicBlox-style workspace.
#[derive(Clone)]
pub struct Workspace {
    schema: Schema,
    relations: HashMap<String, Relation>,
    rules: Vec<Rule>,
    constraints: Vec<Constraint>,
    udfs: UdfRegistry,
    strata: Vec<Vec<usize>>,
    config: EvalConfig,
    entity_counter: u64,
    existential_memo: HashMap<(usize, Vec<Value>), u64>,
    /// Explicitly asserted (extensional) facts, tracked so incremental
    /// deletion never removes a fact that has a non-rule justification.
    edb_facts: HashMap<String, HashSet<Tuple>>,
    /// When true, static type checking failures abort installation.
    strict_typing: bool,
    /// When true, negation is permitted inside recursive components
    /// (locally-stratified programs such as the path-vector protocol).
    allow_recursive_negation: bool,
    /// Compiled rule plans, kept across transactions (and deployment ticks)
    /// so steady-state evaluation pays no planning cost.
    plan_cache: PlanCache,
    /// Planner / index counters for the bench harness.
    plan_stats: PlanStats,
    /// The workspace-wide value dictionary.  Every relation of this workspace
    /// shares it, which is what makes the columnar batch executor eligible
    /// (see [`crate::intern`]).
    interner: Arc<Interner>,
    /// Persistent worker pool, created lazily on the first parallel fixpoint
    /// and kept for the workspace's lifetime.  Clones share the pool.
    pool: Option<Arc<WorkerPool>>,
    /// Whether the installed program is eligible for seeded (incremental)
    /// transactions: no negated body literal reads an aggregate-rule head.
    /// Aggregate heads are the one predicate class that can *shrink* during a
    /// fixpoint (value displacement), so negation over them could enable
    /// derivations a delta-seeded first round never drives.  Recomputed on
    /// every program install.
    seedable: bool,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("predicates", &self.relations.len())
            .field("rules", &self.rules.len())
            .field("constraints", &self.constraints.len())
            .field(
                "facts",
                &self.relations.values().map(|r| r.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// Create an empty workspace with default evaluation limits.
    pub fn new() -> Self {
        Workspace {
            schema: Schema::new(),
            relations: HashMap::new(),
            rules: Vec::new(),
            constraints: Vec::new(),
            udfs: UdfRegistry::new(),
            strata: Vec::new(),
            config: EvalConfig::default(),
            entity_counter: 0,
            existential_memo: HashMap::new(),
            edb_facts: HashMap::new(),
            strict_typing: true,
            allow_recursive_negation: false,
            plan_cache: PlanCache::new(),
            plan_stats: PlanStats::default(),
            interner: Arc::new(Interner::new()),
            pool: None,
            seedable: true,
        }
    }

    /// Create a workspace with a custom evaluation configuration.
    pub fn with_config(config: EvalConfig) -> Self {
        Workspace {
            config,
            ..Self::new()
        }
    }

    /// Disable static type checking (useful for exploratory programs whose
    /// schema is intentionally partial).
    pub fn set_strict_typing(&mut self, strict: bool) {
        self.strict_typing = strict;
    }

    /// Reconfigure the evaluation worker pool (see
    /// [`EvalOptions`](crate::eval::EvalOptions)): `workers > 1` shards each
    /// stratum's driving tuple sets across scoped worker threads; `workers
    /// <= 1` keeps the serial path.  Takes effect from the next transaction.
    pub fn set_eval_options(&mut self, options: EvalOptions) {
        self.config.exec = options;
    }

    /// The current worker-pool configuration.
    pub fn eval_options(&self) -> EvalOptions {
        self.config.exec
    }

    /// Permit negation inside recursive components (locally-stratified
    /// programs).  Must be called before programs are installed.
    pub fn set_allow_recursive_negation(&mut self, allow: bool) {
        self.allow_recursive_negation = allow;
    }

    /// Reserve a distinct entity-id namespace for this workspace so entities
    /// minted on different simulated nodes never collide when tuples travel
    /// between them.
    pub fn set_entity_namespace(&mut self, namespace: u64) {
        self.entity_counter = self.entity_counter.max(namespace << 32);
    }

    /// Access the declared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Installed rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Installed constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The UDF registry (mutable, for registering application functions).
    pub fn udfs_mut(&mut self) -> &mut UdfRegistry {
        &mut self.udfs
    }

    /// Register a user-defined function.
    pub fn register_udf<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Option<Value>]) -> std::result::Result<Vec<Vec<Value>>, String>
            + Send
            + Sync
            + 'static,
    {
        self.udfs.register(name, f);
    }

    /// Register a family of user-defined functions (`family$param`).
    pub fn register_udf_family<F>(&mut self, family: impl Into<String>, f: F)
    where
        F: Fn(&str, &[Option<Value>]) -> std::result::Result<Vec<Vec<Value>>, String>
            + Send
            + Sync
            + 'static,
    {
        self.udfs.register_family(family, f);
    }

    /// Parse and install a program from source text.
    pub fn install_source(&mut self, source: &str) -> Result<()> {
        let program = parse_program(source)?;
        self.install_program(&program)
    }

    /// Install a parsed program: absorb its schema, type-check it, add its
    /// rules, constraints and facts, and recompute evaluation strata.
    ///
    /// Programs containing BloxGenerics statements must be compiled with the
    /// meta-compiler first; installing them directly is an error.
    pub fn install_program(&mut self, program: &Program) -> Result<()> {
        if program.has_generics() {
            return Err(DatalogError::Generics(
                "program contains BloxGenerics statements; compile it with secureblox-generics \
                 before installing"
                    .into(),
            ));
        }
        self.schema.absorb_program(program)?;
        if self.strict_typing {
            typecheck_program(program, &self.schema, &self.udfs)?;
        }
        for statement in &program.statements {
            match statement {
                Statement::Rule(rule) => self.rules.push(rule.clone()),
                Statement::Constraint(constraint) => self.constraints.push(constraint.clone()),
                Statement::Fact(fact) => {
                    let pred = crate::eval::runtime_pred_name(&fact.atom.pred)?;
                    let tuple = self.ground_terms(&fact.atom.terms)?;
                    self.insert_edb(&pred, tuple)?;
                }
                Statement::GenericRule(_) | Statement::GenericConstraint(_) => unreachable!(),
            }
        }
        self.strata = stratify_with(&self.rules, &self.udfs, self.allow_recursive_negation)?;
        self.seedable = Self::compute_seedable(&self.rules);
        // The rule set changed: previously compiled plans are stale.
        self.plan_cache.clear();
        Ok(())
    }

    /// A program is seedable iff no negated body literal reads a predicate
    /// that an aggregate rule writes (see the `seedable` field).
    fn compute_seedable(rules: &[Rule]) -> bool {
        let mut agg_heads: HashSet<String> = HashSet::new();
        for rule in rules {
            if rule.agg.is_some() {
                for atom in &rule.head {
                    if let Ok(name) = crate::eval::runtime_pred_name(&atom.pred) {
                        agg_heads.insert(name);
                    }
                }
            }
        }
        if agg_heads.is_empty() {
            return true;
        }
        for rule in rules {
            for literal in &rule.body {
                if let Literal::Neg(atom) = literal {
                    if let Ok(name) = crate::eval::runtime_pred_name(&atom.pred) {
                        if agg_heads.contains(&name) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn ground_terms(&self, terms: &[Term]) -> Result<Tuple> {
        let bindings = Bindings::new();
        let mut tuple = Vec::with_capacity(terms.len());
        for term in terms {
            match crate::eval::bindings::eval_term(term, &bindings, &self.relations)? {
                Some(v) => tuple.push(v),
                None => {
                    return Err(DatalogError::Eval(format!(
                        "fact argument {term} is not a ground value"
                    )))
                }
            }
        }
        Ok(tuple)
    }

    /// Assert a single extensional fact (no fixpoint is run).
    pub fn assert_fact(&mut self, pred: &str, tuple: Tuple) -> Result<()> {
        self.insert_edb(pred, tuple)
    }

    /// Set the value of a zero-key functional (singleton) predicate, e.g.
    /// `self[] = "n3"`.
    pub fn set_singleton(&mut self, pred: &str, value: Value) -> Result<()> {
        let relation = self
            .relations
            .entry(pred.to_string())
            .or_insert_with(|| Relation::with_interner(pred, Some(0), Arc::clone(&self.interner)));
        relation.insert_or_replace(vec![value.clone()])?;
        self.edb_facts
            .entry(pred.to_string())
            .or_default()
            .insert(vec![value]);
        Ok(())
    }

    fn insert_edb(&mut self, pred: &str, tuple: Tuple) -> Result<()> {
        let key_arity = self.schema.get(pred).and_then(|decl| match decl.kind {
            PredicateKind::Functional { key_arity } => Some(key_arity),
            PredicateKind::Relation => None,
        });
        let relation = self.relations.entry(pred.to_string()).or_insert_with(|| {
            Relation::with_interner(pred, key_arity, Arc::clone(&self.interner))
        });
        relation.insert(tuple.clone())?;
        self.edb_facts
            .entry(pred.to_string())
            .or_default()
            .insert(tuple);
        Ok(())
    }

    /// All tuples of a predicate, in deterministic order.
    pub fn query(&self, pred: &str) -> Vec<Tuple> {
        self.relations
            .get(pred)
            .map(|r| r.sorted())
            .unwrap_or_default()
    }

    /// Number of tuples stored for a predicate.
    pub fn count(&self, pred: &str) -> usize {
        self.relations.get(pred).map_or(0, |r| r.len())
    }

    /// Membership test for a fully ground tuple.
    pub fn contains_fact(&self, pred: &str, tuple: &[Value]) -> bool {
        self.relations.get(pred).is_some_and(|r| r.contains(tuple))
    }

    /// The value of a singleton predicate, if set.
    pub fn singleton(&self, pred: &str) -> Option<Value> {
        self.relations
            .get(pred)
            .and_then(|r| r.singleton_value())
            .cloned()
    }

    /// Direct read access to a relation (used by the distributed runtime to
    /// drain export buffers).
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Probe `pred` on a secondary index over the columns of `cols`, building
    /// the index on first use (it is maintained incrementally afterwards).
    /// Returns every stored tuple whose projection onto `cols` equals `key`
    /// — the distributed runtime uses this to find the detached signature of
    /// an exported tuple without scanning the whole signature relation.
    pub fn probe_indexed(
        &mut self,
        pred: &str,
        cols: crate::relation::ColumnSet,
        key: &[Value],
    ) -> Vec<Tuple> {
        let Some(relation) = self.relations.get_mut(pred) else {
            return Vec::new();
        };
        relation.ensure_index(cols);
        match relation.probe(cols, key) {
            Some(ids) => ids
                .iter()
                .map(|&id| relation.tuple_by_id(id).clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Remove every tuple of a predicate without touching derived data (used
    /// for transient outbox predicates such as `export`).
    pub fn clear_relation(&mut self, pred: &str) {
        if let Some(relation) = self.relations.get_mut(pred) {
            relation.clear();
        }
        self.edb_facts.remove(pred);
    }

    /// Run installed rules to fixpoint and check all constraints, without
    /// inserting new facts.  Rolls back on violation.
    pub fn fixpoint(&mut self) -> Result<TransactionReport> {
        self.transaction(Vec::new())
    }

    /// Process a batch of incoming facts inside a local ACID transaction:
    /// insert the facts, run the installed rules to fixpoint, check every
    /// constraint, and either commit or roll the whole batch back.
    pub fn transaction(&mut self, batch: Vec<(String, Tuple)>) -> Result<TransactionReport> {
        let start = Instant::now();
        let snapshot_relations = self.relations.clone();
        let snapshot_edb = self.edb_facts.clone();
        let snapshot_counter = self.entity_counter;
        let snapshot_memo = self.existential_memo.clone();

        let result = self.transaction_inner(batch, &snapshot_relations);
        match result {
            Ok(mut report) => {
                report.duration = start.elapsed();
                secureblox_telemetry::histogram!("datalog_fixpoint_ns")
                    .record_duration(report.duration);
                secureblox_telemetry::gauge!("datalog_intern_table_size")
                    .set_max(self.interner.len() as i64);
                Ok(report)
            }
            Err(error) => {
                self.relations = snapshot_relations;
                self.edb_facts = snapshot_edb;
                self.entity_counter = snapshot_counter;
                self.existential_memo = snapshot_memo;
                Err(error)
            }
        }
    }

    fn transaction_inner(
        &mut self,
        batch: Vec<(String, Tuple)>,
        snapshot: &HashMap<String, Relation>,
    ) -> Result<TransactionReport> {
        let mut report = TransactionReport::default();
        for (pred, tuple) in batch {
            self.insert_edb(&pred, tuple)?;
            report.inserted += 1;
        }
        let stats = self.run_rules()?;
        report.derived = stats.derived;
        report.iterations = stats.iterations;
        // Incremental constraint checking over the tuples this transaction
        // added (paper §2: constraints are checked for every new fact).
        let mut delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for (pred, relation) in &self.relations {
            let before = snapshot.get(pred);
            // Mutation counters make untouched relations free to skip — on
            // converged fixpoints this reduces the delta scan to nothing.
            if before.is_some_and(|r| r.version() == relation.version()) {
                continue;
            }
            for tuple in relation.iter() {
                if before.is_none_or(|r| !r.contains(tuple)) {
                    delta.entry(pred.clone()).or_default().insert(tuple.clone());
                }
            }
        }
        self.ensure_pool();
        let pool = self.pool.clone();
        check_constraints_incremental_planned(
            &self.constraints,
            &mut self.relations,
            &self.udfs,
            &mut self.plan_cache,
            &self.plan_stats,
            &delta,
            &self.config.exec,
            pool.as_deref(),
        )?;
        Ok(report)
    }

    /// Lazily (re)create the persistent worker pool to match the configured
    /// worker count; drop it when parallelism is disabled.
    fn ensure_pool(&mut self) {
        if !self.config.exec.parallel_enabled() {
            self.pool = None;
            return;
        }
        let workers = self.config.exec.workers;
        if self.pool.as_ref().is_none_or(|p| p.size() != workers) {
            self.pool = Some(Arc::new(WorkerPool::new(workers)));
        }
    }

    fn run_rules(&mut self) -> Result<FixpointStats> {
        self.ensure_pool();
        let pool = self.pool.clone();
        let mut evaluator = Evaluator {
            relations: &mut self.relations,
            schema: &self.schema,
            udfs: &self.udfs,
            config: &self.config,
            entity_counter: &mut self.entity_counter,
            existential_memo: &mut self.existential_memo,
            plan_cache: &mut self.plan_cache,
            plan_stats: &self.plan_stats,
            interner: &self.interner,
            pool: pool.as_deref(),
            journal: None,
        };
        evaluator.run(&self.rules, &self.strata)
    }

    /// Run the installed rules from a converged state, driving the first
    /// semi-naïve round with `seed` (this transaction's new base tuples) and
    /// journaling every mutation for snapshot-free rollback.
    fn run_rules_seeded(
        &mut self,
        seed: &HashMap<String, HashSet<Tuple>>,
        journal: &mut EvalJournal,
    ) -> Result<FixpointStats> {
        self.ensure_pool();
        let pool = self.pool.clone();
        let mut evaluator = Evaluator {
            relations: &mut self.relations,
            schema: &self.schema,
            udfs: &self.udfs,
            config: &self.config,
            entity_counter: &mut self.entity_counter,
            existential_memo: &mut self.existential_memo,
            plan_cache: &mut self.plan_cache,
            plan_stats: &self.plan_stats,
            interner: &self.interner,
            pool: pool.as_deref(),
            journal: Some(journal),
        };
        evaluator.run_seeded(&self.rules, &self.strata, seed)
    }

    /// Planner and index counters accumulated by this workspace.
    pub fn plan_stats(&self) -> PlanStatsSnapshot {
        self.plan_stats.snapshot()
    }

    /// Number of compiled rule plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }

    /// Retract base facts and incrementally maintain derived relations with
    /// DRed.  Constraints are re-checked afterwards; a violation rolls the
    /// whole retraction back.
    pub fn retract(&mut self, batch: Vec<(String, Tuple)>) -> Result<DeletionStats> {
        let timer = secureblox_telemetry::histogram!("datalog_retract_ns").start_timer();
        let snapshot_relations = self.relations.clone();
        let snapshot_edb = self.edb_facts.clone();

        for (pred, tuple) in &batch {
            if let Some(set) = self.edb_facts.get_mut(pred) {
                set.remove(tuple);
            }
        }
        let edb = self.edb_facts.clone();
        self.ensure_pool();
        let pool = self.pool.clone();
        let stats = {
            let mut evaluator = Evaluator {
                relations: &mut self.relations,
                schema: &self.schema,
                udfs: &self.udfs,
                config: &self.config,
                entity_counter: &mut self.entity_counter,
                existential_memo: &mut self.existential_memo,
                plan_cache: &mut self.plan_cache,
                plan_stats: &self.plan_stats,
                interner: &self.interner,
                pool: pool.as_deref(),
                journal: None,
            };
            evaluator.delete_with_dred(&self.rules, &self.strata, &batch, &edb)
        };
        let check = stats.and_then(|s| {
            check_constraints_planned(
                &self.constraints,
                &mut self.relations,
                &self.udfs,
                &mut self.plan_cache,
                &self.plan_stats,
                &self.config.exec,
                pool.as_deref(),
            )
            .map(|_| s)
        });
        match check {
            Ok(stats) => Ok(stats),
            Err(error) => {
                self.relations = snapshot_relations;
                self.edb_facts = snapshot_edb;
                timer.cancel();
                Err(error)
            }
        }
    }

    /// [`Workspace::transaction`] without the per-transaction snapshot clone
    /// or the O(database) naive first round: the fixpoint is *seeded* with
    /// this batch's new base tuples (valid only from a converged state — every
    /// committed or rolled-back transaction and every DRed retraction leaves
    /// one), and every mutation is journaled so a constraint violation or FD
    /// conflict rolls back by reverse-replaying the journal.  Verdicts and
    /// the resulting database are identical to [`Workspace::transaction`];
    /// only the cost differs.  This is the streaming runtime's per-delta
    /// apply step, keeping exact per-envelope acceptance semantics while a
    /// drained batch amortizes flushes and scheduling.
    ///
    /// Programs where a negated literal reads an aggregate head are not
    /// seedable (see `seedable`); those fall back to the snapshot path.
    pub fn transaction_incremental(
        &mut self,
        batch: Vec<(String, Tuple)>,
    ) -> Result<TransactionReport> {
        if !self.seedable {
            return self.transaction(batch);
        }
        let start = Instant::now();
        let snapshot_counter = self.entity_counter;
        let mut journal = EvalJournal::default();
        let mut edb_added: Vec<(String, Tuple)> = Vec::new();
        let mut edb_created: Vec<String> = Vec::new();
        let result = self.transaction_incremental_inner(
            batch,
            &mut journal,
            &mut edb_added,
            &mut edb_created,
        );
        match result {
            Ok(mut report) => {
                report.duration = start.elapsed();
                secureblox_telemetry::histogram!("datalog_fixpoint_ns")
                    .record_duration(report.duration);
                secureblox_telemetry::gauge!("datalog_intern_table_size")
                    .set_max(self.interner.len() as i64);
                Ok(report)
            }
            Err(error) => {
                journal.undo(&mut self.relations, &mut self.existential_memo);
                for (pred, tuple) in edb_added.iter().rev() {
                    if let Some(set) = self.edb_facts.get_mut(pred) {
                        set.remove(tuple);
                    }
                }
                for pred in &edb_created {
                    self.edb_facts.remove(pred);
                }
                self.entity_counter = snapshot_counter;
                Err(error)
            }
        }
    }

    fn transaction_incremental_inner(
        &mut self,
        batch: Vec<(String, Tuple)>,
        journal: &mut EvalJournal,
        edb_added: &mut Vec<(String, Tuple)>,
        edb_created: &mut Vec<String>,
    ) -> Result<TransactionReport> {
        let mut report = TransactionReport::default();
        let mut seed: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for (pred, tuple) in batch {
            let key_arity = self.schema.get(&pred).and_then(|decl| match decl.kind {
                PredicateKind::Functional { key_arity } => Some(key_arity),
                PredicateKind::Relation => None,
            });
            if !self.relations.contains_key(&pred) {
                journal.record_created(&pred);
            }
            let relation = self.relations.entry(pred.clone()).or_insert_with(|| {
                Relation::with_interner(&pred, key_arity, Arc::clone(&self.interner))
            });
            if relation.insert(tuple.clone())? {
                journal.record_added(&pred, tuple.clone());
                seed.entry(pred.clone()).or_default().insert(tuple.clone());
            }
            if !self.edb_facts.contains_key(&pred) {
                edb_created.push(pred.clone());
            }
            if self
                .edb_facts
                .entry(pred.clone())
                .or_default()
                .insert(tuple.clone())
            {
                edb_added.push((pred, tuple));
            }
            report.inserted += 1;
        }
        let stats = self.run_rules_seeded(&seed, journal)?;
        report.derived = stats.derived;
        report.iterations = stats.iterations;
        // Incremental constraint checking over this transaction's surviving
        // additions — the journal yields the same delta a full-snapshot
        // version diff would.
        let delta = journal.added_delta(&self.relations);
        self.ensure_pool();
        let pool = self.pool.clone();
        check_constraints_incremental_planned(
            &self.constraints,
            &mut self.relations,
            &self.udfs,
            &mut self.plan_cache,
            &self.plan_stats,
            &delta,
            &self.config.exec,
            pool.as_deref(),
        )?;
        Ok(report)
    }

    /// Names of all predicates with stored tuples (sorted, for diagnostics).
    pub fn predicate_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total number of stored tuples across all predicates.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn install_and_run_transitive_closure() {
        let mut ws = Workspace::new();
        ws.install_source(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             link(n1, n2). link(n2, n3). link(n3, n4).",
        )
        .unwrap();
        let report = ws.fixpoint().unwrap();
        assert_eq!(ws.count("reachable"), 6);
        assert!(report.derived >= 6);
        assert!(ws.contains_fact("reachable", &[s("n1"), s("n4")]));
    }

    #[test]
    fn transaction_commits_new_batch() {
        let mut ws = Workspace::new();
        ws.install_source(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        ws.transaction(vec![("link".into(), vec![s("a"), s("b")])])
            .unwrap();
        let report = ws
            .transaction(vec![("link".into(), vec![s("b"), s("c")])])
            .unwrap();
        assert_eq!(report.inserted, 1);
        assert!(ws.contains_fact("reachable", &[s("a"), s("c")]));
        assert!(report.duration.as_nanos() > 0);
    }

    #[test]
    fn constraint_violation_rolls_back_batch() {
        let mut ws = Workspace::new();
        ws.install_source(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             link(X, Y) <- says_link(X, Y).\n\
             principal(alice).",
        )
        .unwrap();
        // alice -> bob: bob is not a principal, so the whole batch must roll back.
        let err = ws
            .transaction(vec![("says_link".into(), vec![s("alice"), s("bob")])])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ConstraintViolation(_)));
        assert_eq!(ws.count("says_link"), 0);
        assert_eq!(ws.count("link"), 0);

        // Registering bob first makes the same batch commit.
        ws.assert_fact("principal", vec![s("bob")]).unwrap();
        ws.transaction(vec![("says_link".into(), vec![s("alice"), s("bob")])])
            .unwrap();
        assert_eq!(ws.count("link"), 1);
    }

    #[test]
    fn rollback_also_restores_derived_tuples() {
        let mut ws = Workspace::new();
        ws.install_source(
            "even(X) -> int[32](X).\n\
             twice(X, Y) <- pair(X, Y).\n\
             bad(X) -> audit(X, X).\n\
             bad(X) <- pair(X, _).",
        )
        .unwrap();
        let before = ws.total_facts();
        let err = ws
            .transaction(vec![("pair".into(), vec![Value::Int(1), Value::Int(2)])])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ConstraintViolation(_)));
        assert_eq!(ws.total_facts(), before);
        assert_eq!(ws.count("twice"), 0);
    }

    #[test]
    fn functional_dependency_violation_rolls_back() {
        let mut ws = Workspace::new();
        ws.install_source("owner[X] = Y -> string(X), string(Y).\nowner[k] = v1.")
            .unwrap();
        ws.fixpoint().unwrap();
        let err = ws
            .transaction(vec![("owner".into(), vec![s("k"), s("v2")])])
            .unwrap_err();
        assert!(matches!(err, DatalogError::FunctionalDependency { .. }));
        assert_eq!(ws.query("owner"), vec![vec![s("k"), s("v1")]]);
    }

    /// Drive the same delta sequence through `transaction` and
    /// `transaction_incremental` on parallel workspaces, asserting identical
    /// per-delta verdicts and identical final databases.
    fn assert_incremental_matches(source: &str, batches: &[Vec<(String, Tuple)>]) {
        let mut full = Workspace::new();
        full.install_source(source).unwrap();
        full.fixpoint().unwrap();
        let mut inc = Workspace::new();
        inc.install_source(source).unwrap();
        inc.fixpoint().unwrap();
        for (step, batch) in batches.iter().enumerate() {
            let a = full.transaction(batch.clone());
            let b = inc.transaction_incremental(batch.clone());
            match (&a, &b) {
                (Ok(ra), Ok(rb)) => assert_eq!(ra.inserted, rb.inserted, "step {step}"),
                (Err(ea), Err(eb)) => assert_eq!(
                    std::mem::discriminant(ea),
                    std::mem::discriminant(eb),
                    "step {step}: verdicts diverged ({ea} vs {eb})"
                ),
                _ => panic!("step {step}: verdicts diverged ({a:?} vs {b:?})"),
            }
            assert_eq!(
                full.predicate_names(),
                inc.predicate_names(),
                "step {step}: predicate sets diverged"
            );
            for pred in full.predicate_names() {
                assert_eq!(
                    full.query(&pred),
                    inc.query(&pred),
                    "step {step}: {pred} diverged"
                );
            }
        }
    }

    #[test]
    fn transaction_incremental_matches_transaction() {
        assert_incremental_matches(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             link(a, b).",
            &[
                vec![("link".into(), vec![s("b"), s("c")])],
                vec![
                    ("link".into(), vec![s("c"), s("d")]),
                    ("link".into(), vec![s("d"), s("a")]),
                ],
                // Duplicate re-assertion: no new delta, nothing derived.
                vec![("link".into(), vec![s("a"), s("b")])],
            ],
        );
    }

    #[test]
    fn transaction_incremental_matches_on_rejection_order() {
        // The exact shape from the streaming engine: a delta that violates a
        // constraint must be rejected in its own transaction even though a
        // LATER delta would have satisfied it — per-delta verdicts are
        // order-sensitive and the incremental path must preserve that.
        assert_incremental_matches(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             link(X, Y) <- says_link(X, Y).\n\
             principal(alice).",
            &[
                vec![("says_link".into(), vec![s("alice"), s("mallory")])], // rejected
                vec![("principal".into(), vec![s("mallory")])],             // commits
                vec![("says_link".into(), vec![s("alice"), s("mallory")])], // now commits
            ],
        );
    }

    #[test]
    fn transaction_incremental_matches_with_aggregates_and_existentials() {
        // Aggregate displacement (min over paths) plus head-existential
        // minting, across commits and an FD rejection.
        assert_incremental_matches(
            "cost[X, Y] = C -> string(X), string(Y), int(C).\n\
             pathvar(P) -> .\n\
             pathvar(P), path(P, X, Y, C) <- cost[X, Y] = C.\n\
             best[X] = C <- agg<< C = min(Cx) >> path(_, X, _, Cx).\n\
             cost[a, b] = 5.",
            &[
                vec![("cost".into(), vec![s("a"), s("c"), Value::Int(3)])], // displaces best[a]
                vec![("cost".into(), vec![s("a"), s("b"), Value::Int(1)])], // FD conflict: rolls back
                vec![("cost".into(), vec![s("b"), s("c"), Value::Int(9)])],
            ],
        );
    }

    #[test]
    fn transaction_incremental_rollback_restores_exact_state() {
        let mut ws = Workspace::new();
        ws.install_source(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             link(X, Y) <- says_link(X, Y).\n\
             reach(X, Y) <- link(X, Y).\n\
             reach(X, Y) <- link(X, Z), reach(Z, Y).\n\
             principal(alice). principal(bob).\n\
             says_link(alice, bob).",
        )
        .unwrap();
        ws.fixpoint().unwrap();
        let before_facts = ws.total_facts();
        let before_links = ws.query("link");
        let err = ws
            .transaction_incremental(vec![("says_link".into(), vec![s("bob"), s("mallory")])])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ConstraintViolation(_)));
        assert_eq!(ws.total_facts(), before_facts);
        assert_eq!(ws.query("link"), before_links);
        assert_eq!(ws.count("says_link"), 1);
        // And the workspace is still fully usable afterwards.
        ws.transaction_incremental(vec![("principal".into(), vec![s("mallory")])])
            .unwrap();
        ws.transaction_incremental(vec![("says_link".into(), vec![s("bob"), s("mallory")])])
            .unwrap();
        assert!(ws.contains_fact("reach", &[s("alice"), s("mallory")]));
    }

    #[test]
    fn non_seedable_program_falls_back_to_snapshot_path() {
        // Negation over an aggregate head: not seedable, must still be
        // correct via the `transaction` fallback.
        let source = "cost[X] = C -> string(X), int(C).\n\
                      best[] = C <- agg<< C = min(Cx) >> cost[_] = Cx.\n\
                      cheap(X) <- cost[X] = C, !best[] = _, C > 0.\n\
                      cost[a] = 5.";
        let mut ws = Workspace::new();
        ws.set_strict_typing(false);
        ws.install_source(source).unwrap();
        assert!(!ws.seedable);
        ws.fixpoint().unwrap();
        ws.transaction_incremental(vec![("cost".into(), vec![s("b"), Value::Int(2)])])
            .unwrap();
        assert_eq!(ws.singleton("best"), Some(Value::Int(2)));
    }

    #[test]
    fn singleton_set_and_read() {
        let mut ws = Workspace::new();
        ws.set_singleton("self", s("n7")).unwrap();
        assert_eq!(ws.singleton("self"), Some(s("n7")));
        ws.set_singleton("self", s("n8")).unwrap();
        assert_eq!(ws.singleton("self"), Some(s("n8")));
        assert_eq!(ws.singleton("other"), None);
    }

    #[test]
    fn generic_program_rejected_without_metacompiler() {
        let mut ws = Workspace::new();
        let err = ws
            .install_source("'{ T(V*) <- says[T](P, self[], V*). } <-- predicate(T).")
            .unwrap_err();
        assert!(matches!(err, DatalogError::Generics(_)));
    }

    #[test]
    fn retract_maintains_derived_data() {
        let mut ws = Workspace::new();
        ws.install_source(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             link(a, b). link(b, c).",
        )
        .unwrap();
        ws.fixpoint().unwrap();
        assert!(ws.contains_fact("reachable", &[s("a"), s("c")]));
        let stats = ws
            .retract(vec![("link".into(), vec![s("b"), s("c")])])
            .unwrap();
        assert_eq!(stats.base_deleted, 1);
        assert!(!ws.contains_fact("reachable", &[s("a"), s("c")]));
        assert!(ws.contains_fact("reachable", &[s("a"), s("b")]));
    }

    #[test]
    fn entity_namespace_prevents_collisions() {
        let mut ws1 = Workspace::new();
        let mut ws2 = Workspace::new();
        ws2.set_entity_namespace(7);
        for ws in [&mut ws1, &mut ws2] {
            ws.install_source(
                "pathvar(P) -> .\n\
                 pathvar(P), path(P, X, Y) <- link(X, Y).\n\
                 link(a, b).",
            )
            .unwrap();
            ws.fixpoint().unwrap();
        }
        let e1 = &ws1.query("pathvar")[0][0];
        let e2 = &ws2.query("pathvar")[0][0];
        assert_ne!(e1, e2);
    }

    #[test]
    fn udf_usable_from_installed_rules() {
        let mut ws = Workspace::new();
        ws.register_udf("hash10", |args| {
            let v = crate::udf::require_bound(args, 0, "hash10")?;
            let text = v.as_str().ok_or("expected string")?;
            let h = text.bytes().map(|b| b as i64).sum::<i64>() % 10;
            Ok(vec![vec![v, Value::Int(h)]])
        });
        ws.install_source("bucket(X, H) <- item(X), hash10(X, H).\nitem(abc).")
            .unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(ws.count("bucket"), 1);
        let tuple = &ws.query("bucket")[0];
        assert_eq!(
            tuple[1],
            Value::Int((b'a' as i64 + b'b' as i64 + b'c' as i64) % 10)
        );
    }

    #[test]
    fn query_and_predicate_listing() {
        let mut ws = Workspace::new();
        ws.install_source("p(1). p(2). q(x).").unwrap();
        assert_eq!(ws.count("p"), 2);
        assert_eq!(ws.predicate_names(), vec!["p".to_string(), "q".to_string()]);
        assert_eq!(ws.total_facts(), 3);
        assert!(ws.query("missing").is_empty());
    }

    #[test]
    fn strict_typing_toggle() {
        let mut ws = Workspace::new();
        let source = "reachable(X, Y) -> node(X), node(Y).\n\
                      reachable(X, Y) <- s(X), s(Y).";
        assert!(ws.install_source(source).is_err());
        let mut lenient = Workspace::new();
        lenient.set_strict_typing(false);
        lenient.install_source(source).unwrap();
    }

    #[test]
    fn planner_hoists_comparisons_across_producers() {
        // `C = K + 1` textually precedes the literal that binds K.  The old
        // textual-order evaluator errored on it ("unbound operands"); the
        // planner defers the assignment until K is bound.
        let source = "cost[X, Y] = C -> string(X), string(Y), int(C).\n\
                      cost[a, b] = 4.\n\
                      out(C) <- C = K + 1, cost[a, b] = K.";
        let mut ws = Workspace::new();
        ws.install_source(source).unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(ws.query("out"), vec![vec![Value::Int(5)]]);
        // Lock in the contrast: the naive evaluator still rejects the rule,
        // so if the planner ever stops hoisting, this test catches it.
        let mut naive = Workspace::with_config(EvalConfig {
            use_planner: false,
            ..EvalConfig::default()
        });
        naive.install_source(source).unwrap();
        assert!(naive.fixpoint().is_err());
    }

    #[test]
    fn planner_hoists_selections_before_scans() {
        // `X = a, Y = b` after the functional literal: the planner schedules
        // the assignments first so the functional fast path applies; results
        // must match the naive scan.
        let source = "cost[X, Y] = C -> string(X), string(Y), int(C).\n\
                      cost[a, b] = 4. cost[a, c] = 9.\n\
                      out(C) <- cost[X, Y] = C, X = a, Y = b.";
        for use_planner in [true, false] {
            let mut ws = Workspace::with_config(EvalConfig {
                use_planner,
                ..EvalConfig::default()
            });
            ws.install_source(source).unwrap();
            ws.fixpoint().unwrap();
            assert_eq!(ws.query("out"), vec![vec![Value::Int(4)]]);
        }
    }

    #[test]
    fn frozen_negation_variable_keeps_textual_semantics() {
        // `!b(X, Z)` with Z textually unbound means "no b(X, _) at all"; the
        // later assignment `Z = 5` must not be hoisted ahead of it.  With
        // b(1, 7) present, both evaluators must derive nothing.
        let source = "a(1). b(1, 7).\n\
                      out(X) <- a(X), !b(X, Z), Z = 5.";
        for use_planner in [true, false] {
            let mut ws = Workspace::with_config(EvalConfig {
                use_planner,
                ..EvalConfig::default()
            });
            ws.install_source(source).unwrap();
            ws.fixpoint().unwrap();
            assert!(
                ws.query("out").is_empty(),
                "planner={use_planner} must not derive out"
            );
        }
    }

    #[test]
    fn retract_works_with_hoisted_comparison_rules() {
        // DRed's over-deletion probes must run the same planned order as
        // fixpoint evaluation: this rule is only evaluable with the
        // comparison hoisted, and retraction must not error on it.
        let source = "cost[X, Y] = C -> string(X), string(Y), int(C).\n\
                      cost[a, b] = 4. cost[a, c] = 9.\n\
                      out(C) <- C = K + 1, cost[a, b] = K.";
        let mut ws = Workspace::new();
        ws.install_source(source).unwrap();
        ws.fixpoint().unwrap();
        assert_eq!(ws.query("out"), vec![vec![Value::Int(5)]]);
        // Retracting an unrelated fact leaves the derivation alone…
        ws.retract(vec![("cost".into(), vec![s("a"), s("c"), Value::Int(9)])])
            .unwrap();
        assert_eq!(ws.query("out"), vec![vec![Value::Int(5)]]);
        // …and retracting the producing fact removes it.
        ws.retract(vec![("cost".into(), vec![s("a"), s("b"), Value::Int(4)])])
            .unwrap();
        assert!(ws.query("out").is_empty());
    }

    #[test]
    fn delta_pinning_respects_frozen_negation_vars() {
        // r is recursive with out, so semi-naïve passes restrict r(Z) to the
        // delta and the planner wants to pin it first — but Z is frozen for
        // `!b(X, Z)` (textually unbound: ∄ b(X, _)), so pinning must yield.
        // With b(1, 7) present, out(1) must never be derived.
        let source = "seed(1). a(1). a(2). b(1, 7).\n\
                      r(X) <- seed(X).\n\
                      r(X) <- out(X).\n\
                      out(X) <- a(X), !b(X, Z), r(Z).";
        let mut results = Vec::new();
        for use_planner in [true, false] {
            let mut ws = Workspace::with_config(EvalConfig {
                use_planner,
                ..EvalConfig::default()
            });
            ws.install_source(source).unwrap();
            ws.fixpoint().unwrap();
            results.push(ws.query("out"));
        }
        assert_eq!(results[0], results[1], "planned and naive out diverge");
        assert_eq!(results[0], vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn plan_stats_report_probes_and_cache_hits() {
        let mut ws = Workspace::new();
        ws.install_source(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        for i in 0..30 {
            ws.assert_fact("link", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        ws.fixpoint().unwrap();
        let stats = ws.plan_stats();
        assert!(stats.plans_compiled > 0);
        assert!(stats.index_probes > 0, "recursive join should probe");
        assert!(ws.cached_plans() > 0);
        // A second fixpoint reuses the cached plans.
        ws.fixpoint().unwrap();
        assert!(ws.plan_stats().plan_cache_hits > stats.plan_cache_hits);
    }

    #[test]
    fn sharded_fixpoint_matches_serial_and_reports_utilization() {
        let source = "reachable(X, Y) <- link(X, Y).\n\
                      reachable(X, Y) <- link(X, Z), reachable(Z, Y).";
        let mut serial = Workspace::with_config(EvalConfig {
            exec: crate::eval::EvalOptions::serial(),
            ..EvalConfig::default()
        });
        let mut parallel = Workspace::with_config(EvalConfig {
            exec: crate::eval::EvalOptions {
                workers: 4,
                parallel_threshold: 2,
            },
            ..EvalConfig::default()
        });
        for ws in [&mut serial, &mut parallel] {
            ws.install_source(source).unwrap();
            for i in 0..40 {
                ws.assert_fact("link", vec![Value::Int(i), Value::Int(i + 1)])
                    .unwrap();
            }
            ws.fixpoint().unwrap();
        }
        assert_eq!(serial.query("reachable"), parallel.query("reachable"));
        let stats = parallel.plan_stats();
        assert!(stats.parallel_batches > 0, "worker pool must engage");
        assert!(stats.shards_executed >= stats.parallel_batches);
        let utilization = stats.worker_utilization(4);
        assert!(utilization > 0.0 && utilization <= 1.0);
        assert_eq!(serial.plan_stats().parallel_batches, 0);
    }

    #[test]
    fn sharded_retraction_matches_serial() {
        let source = "reachable(X, Y) <- link(X, Y).\n\
                      reachable(X, Y) <- link(X, Z), reachable(Z, Y).";
        let mut serial = Workspace::with_config(EvalConfig {
            exec: crate::eval::EvalOptions::serial(),
            ..EvalConfig::default()
        });
        let mut parallel = Workspace::with_config(EvalConfig {
            exec: crate::eval::EvalOptions {
                workers: 4,
                parallel_threshold: 1,
            },
            ..EvalConfig::default()
        });
        for ws in [&mut serial, &mut parallel] {
            ws.install_source(source).unwrap();
            for i in 0..30 {
                ws.assert_fact("link", vec![Value::Int(i), Value::Int(i + 1)])
                    .unwrap();
            }
            ws.fixpoint().unwrap();
            ws.retract(vec![("link".into(), vec![Value::Int(15), Value::Int(16)])])
                .unwrap();
        }
        assert_eq!(serial.query("reachable"), parallel.query("reachable"));
        assert!(parallel.plan_stats().parallel_batches > 0);
    }

    #[test]
    fn sharded_constraint_check_matches_serial() {
        let source = "says_link(P, Q) -> principal(P), principal(Q).\n\
                      link(X, Y) <- says_link(X, Y).";
        let configs = [
            crate::eval::EvalOptions::serial(),
            crate::eval::EvalOptions {
                workers: 4,
                parallel_threshold: 2,
            },
        ];
        for exec in configs {
            let mut ws = Workspace::with_config(EvalConfig {
                exec,
                ..EvalConfig::default()
            });
            ws.install_source(source).unwrap();
            let mut batch = Vec::new();
            for i in 0..40 {
                let (p, q) = (format!("p{i}"), format!("p{}", i + 1));
                ws.assert_fact("principal", vec![Value::str(p.clone())])
                    .unwrap();
                ws.assert_fact("principal", vec![Value::str(q.clone())])
                    .unwrap();
                batch.push(("says_link".into(), vec![Value::str(p), Value::str(q)]));
            }
            // A large satisfied batch passes under sharded checking...
            ws.transaction(batch.clone()).unwrap();
            // ...and one unknown principal among many still aborts.
            batch.push((
                "says_link".into(),
                vec![Value::str("mallory"), Value::str("p0")],
            ));
            let before = ws.count("link");
            assert!(ws.transaction(batch).is_err());
            assert_eq!(ws.count("link"), before, "violation must roll back");
        }
    }

    #[test]
    fn small_deltas_stay_on_the_serial_fast_path() {
        let mut ws = Workspace::with_config(EvalConfig {
            exec: crate::eval::EvalOptions {
                workers: 4,
                parallel_threshold: 1_000_000,
            },
            ..EvalConfig::default()
        });
        ws.install_source(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        for i in 0..20 {
            ws.assert_fact("link", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        ws.fixpoint().unwrap();
        let stats = ws.plan_stats();
        assert_eq!(
            stats.parallel_batches, 0,
            "below-threshold deltas must not shard"
        );
        assert!(stats.serial_batches > 0);
        assert_eq!(ws.count("reachable"), 20 * 21 / 2);
    }

    #[test]
    fn constraint_checks_share_the_plan_cache() {
        let mut ws = Workspace::new();
        ws.install_source(
            "says_link(P, Q) -> principal(P), principal(Q).\n\
             principal(alice). principal(bob).",
        )
        .unwrap();
        assert_eq!(ws.cached_plans(), 0);
        ws.transaction(vec![("says_link".into(), vec![s("alice"), s("bob")])])
            .unwrap();
        assert!(
            ws.cached_plans() > 0,
            "incremental constraint check must compile and cache plans"
        );
        let compiled = ws.plan_stats().plans_compiled;
        // A second batch reuses the cached constraint plans.
        ws.transaction(vec![("says_link".into(), vec![s("bob"), s("alice")])])
            .unwrap();
        let stats = ws.plan_stats();
        assert_eq!(stats.plans_compiled, compiled);
        assert!(stats.plan_cache_hits > 0);
        // Verdicts are unchanged: an unknown principal still rolls back.
        let err = ws
            .transaction(vec![("says_link".into(), vec![s("mallory"), s("bob")])])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ConstraintViolation(_)));
    }

    #[test]
    fn clear_relation_empties_outbox() {
        let mut ws = Workspace::new();
        ws.install_source("export(n1, payload).").unwrap();
        assert_eq!(ws.count("export"), 1);
        ws.clear_relation("export");
        assert_eq!(ws.count("export"), 0);
    }
}
