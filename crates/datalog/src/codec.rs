//! Canonical binary encoding of tuples.
//!
//! The paper's generated export rules call a `serialize[P]` user-defined
//! function before signing and shipping tuples; this module provides that
//! canonical byte encoding.  The same encoding is used (a) as the message
//! payload on the simulated network, (b) as the byte string that HMAC / RSA
//! signatures cover, (c) as the plaintext of AES-encrypted batches, and
//! (d) as the framing of the durable fact store's WAL records and snapshot
//! objects, so communication figures and on-disk sizes both count exactly
//! what the crypto operates on.
//!
//! The encoding is *canonical*: equal tuples encode to equal bytes.  That is
//! a correctness requirement for signature verification (which re-serializes
//! the received tuple) and for the content-addressed snapshot store (which
//! hashes relation encodings into Merkle leaves).

use crate::value::{Tuple, Value};

/// Encode a single value.
fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        Value::Bytes(b) => {
            out.push(3);
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
        Value::Entity(e) => {
            out.push(4);
            out.extend_from_slice(&e.to_be_bytes());
        }
        Value::Pred(p) => {
            out.push(5);
            out.extend_from_slice(&(p.len() as u32).to_be_bytes());
            out.extend_from_slice(p.as_bytes());
        }
    }
}

fn read_value(data: &[u8], pos: &mut usize) -> Result<Value, String> {
    let tag = *data.get(*pos).ok_or("truncated value tag")?;
    *pos += 1;
    let take = |data: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>, String> {
        let slice = data
            .get(*pos..*pos + n)
            .ok_or("truncated value body")?
            .to_vec();
        *pos += n;
        Ok(slice)
    };
    match tag {
        0 => {
            let bytes = take(data, pos, 8)?;
            Ok(Value::Int(i64::from_be_bytes(
                bytes.try_into().expect("8 bytes"),
            )))
        }
        1 | 5 => {
            let len_bytes = take(data, pos, 4)?;
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            let body = take(data, pos, len)?;
            let text = String::from_utf8(body).map_err(|_| "invalid utf-8 in string value")?;
            Ok(if tag == 1 {
                Value::str(text)
            } else {
                Value::pred(text)
            })
        }
        2 => {
            let byte = take(data, pos, 1)?;
            Ok(Value::Bool(byte[0] != 0))
        }
        3 => {
            let len_bytes = take(data, pos, 4)?;
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            Ok(Value::bytes(take(data, pos, len)?))
        }
        4 => {
            let bytes = take(data, pos, 8)?;
            Ok(Value::Entity(u64::from_be_bytes(
                bytes.try_into().expect("8 bytes"),
            )))
        }
        other => Err(format!("unknown value tag {other}")),
    }
}

/// Serialize a tuple of values (the byte string covered by signatures).
pub fn serialize_tuple(tuple: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.len() * 12);
    out.extend_from_slice(&(tuple.len() as u32).to_be_bytes());
    for value in tuple {
        write_value(&mut out, value);
    }
    out
}

/// Deserialize a tuple serialized with [`serialize_tuple`].
pub fn deserialize_tuple(data: &[u8], pos: &mut usize) -> Result<Tuple, String> {
    let len_bytes = data.get(*pos..*pos + 4).ok_or("truncated tuple length")?;
    *pos += 4;
    let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let mut tuple = Vec::with_capacity(len);
    for _ in 0..len {
        tuple.push(read_value(data, pos)?);
    }
    Ok(tuple)
}

/// Append a length-prefixed string (used by WAL/snapshot framing).
pub fn write_string(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_be_bytes());
    out.extend_from_slice(text.as_bytes());
}

/// Read a string written with [`write_string`].
pub fn read_string(data: &[u8], pos: &mut usize) -> Result<String, String> {
    let len_bytes = data.get(*pos..*pos + 4).ok_or("truncated string length")?;
    *pos += 4;
    let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let body = data.get(*pos..*pos + len).ok_or("truncated string body")?;
    *pos += len;
    String::from_utf8(body.to_vec()).map_err(|_| "invalid utf-8 in string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        vec![
            Value::str("n1"),
            Value::Int(-42),
            Value::Bool(true),
            Value::bytes(vec![1, 2, 3]),
            Value::Entity(77),
            Value::pred("path"),
            Value::str("unicode ✓"),
        ]
    }

    #[test]
    fn tuple_roundtrip() {
        let tuple = sample_tuple();
        let bytes = serialize_tuple(&tuple);
        let mut pos = 0;
        let back = deserialize_tuple(&bytes, &mut pos).unwrap();
        assert_eq!(back, tuple);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = serialize_tuple(&sample_tuple());
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(
                deserialize_tuple(&bytes[..cut], &mut 0).is_err(),
                "cut at {cut}"
            );
        }
        assert!(deserialize_tuple(&[0, 0, 0, 5, 9], &mut 0).is_err());
    }

    #[test]
    fn serialization_is_canonical() {
        // Equal tuples encode to equal bytes (required for signature checks
        // and content addressing).
        assert_eq!(
            serialize_tuple(&sample_tuple()),
            serialize_tuple(&sample_tuple())
        );
        assert_ne!(
            serialize_tuple(&[Value::Int(1)]),
            serialize_tuple(&[Value::Int(2)])
        );
        // Str and Pred with the same text are distinguishable.
        assert_ne!(
            serialize_tuple(&[Value::str("path")]),
            serialize_tuple(&[Value::pred("path")])
        );
    }

    #[test]
    fn string_framing_roundtrip() {
        let mut out = Vec::new();
        write_string(&mut out, "bestcost");
        write_string(&mut out, "");
        let mut pos = 0;
        assert_eq!(read_string(&out, &mut pos).unwrap(), "bestcost");
        assert_eq!(read_string(&out, &mut pos).unwrap(), "");
        assert_eq!(pos, out.len());
        assert!(read_string(&out[..3], &mut 0).is_err());
    }
}
