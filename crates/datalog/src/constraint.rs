//! Runtime integrity-constraint checking.
//!
//! A constraint `lhs -> rhs` holds when every binding satisfying the
//! left-hand side can be extended to satisfy the right-hand side.  Checking
//! happens inside the enclosing transaction after the fixpoint; a violation
//! aborts the transaction and rolls back the entire incoming batch (paper
//! §5.2).  This is the enforcement point for the generated security policies:
//! "only accept facts said by known principals", "require a verifying
//! signature", "the sayer must have write access", and so on.
//!
//! Constraint bodies run through the same cost-based planner and shared
//! [`PlanCache`] as rule evaluation: the workspace-level entry points
//! ([`check_constraints_planned`], [`check_constraints_incremental_planned`])
//! compile a plan per constraint side, build the secondary indexes the plans
//! probe, and execute with index probes instead of the textual nested-loop
//! order.  The plain textual functions remain for callers without a cache
//! (the BloxGenerics compile-time checker) and as the equivalence baseline.

use crate::ast::Constraint;
use crate::error::{ConstraintViolation, DatalogError, Result};
use crate::eval::bindings::Bindings;
use crate::eval::exec::{self, EvalOptions};
use crate::eval::join::{DeltaRestriction, DeltaTuples, JoinContext};
use crate::eval::plan::{PlanCache, PlanKey, PlanStats, RulePlan};
use crate::eval::pool::WorkerPool;
use crate::relation::Relation;
use crate::udf::UdfRegistry;
use crate::value::Tuple;
use std::collections::{HashMap, HashSet};

/// Check a single constraint against the current relations, optionally with
/// compiled plans for the two sides and a delta restriction on the lhs.
fn check_constraint_with(
    constraint: &Constraint,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    plans: Option<(&RulePlan, &RulePlan)>,
    restriction: Option<DeltaRestriction<'_>>,
    stats: Option<&PlanStats>,
) -> Result<()> {
    // An empty right-hand side (`p(X) -> .`) is a pure declaration.
    if constraint.rhs.is_empty() {
        return Ok(());
    }
    let ctx = match stats {
        Some(stats) => JoinContext::with_stats(relations, udfs, stats),
        None => JoinContext::new(relations, udfs),
    };
    let mut violation: Option<ConstraintViolation> = None;
    let mut bindings = Bindings::new();
    let mut on_lhs = |lhs_binding: &Bindings| {
        if violation.is_some() {
            return Ok(());
        }
        // Try to extend the binding to satisfy the right-hand side.
        let mut satisfied = false;
        let mut rhs_bindings = lhs_binding.clone();
        let mut on_rhs = |_: &Bindings| {
            satisfied = true;
            Ok(())
        };
        match plans {
            Some((_, rhs_plan)) => ctx.join_planned(
                &constraint.rhs,
                rhs_plan,
                None,
                &mut rhs_bindings,
                &mut on_rhs,
            )?,
            None => ctx.join(&constraint.rhs, None, &mut rhs_bindings, &mut on_rhs)?,
        }
        if !satisfied {
            violation = Some(ConstraintViolation {
                constraint: constraint.to_string(),
                witness: lhs_binding.render(),
            });
        }
        Ok(())
    };
    match plans {
        Some((lhs_plan, _)) => ctx.join_planned(
            &constraint.lhs,
            lhs_plan,
            restriction,
            &mut bindings,
            &mut on_lhs,
        )?,
        None => ctx.join(&constraint.lhs, restriction, &mut bindings, &mut on_lhs)?,
    }
    match violation {
        Some(v) => Err(DatalogError::ConstraintViolation(v)),
        None => Ok(()),
    }
}

/// Check a single constraint against the current relations (textual order,
/// no plan cache — used by the BloxGenerics compile-time checker).
///
/// Returns `Ok(())` when the constraint holds, or a
/// [`DatalogError::ConstraintViolation`] describing the first violating
/// left-hand-side binding.
pub fn check_constraint(
    constraint: &Constraint,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
) -> Result<()> {
    check_constraint_with(constraint, relations, udfs, None, None, None)
}

/// Compile (or fetch) the plans for both sides of a constraint and build
/// every secondary index they probe.  Index building happens here, before
/// execution, so the checks themselves run against immutable relations.
fn prepare_constraint_plans(
    index: usize,
    constraint: &Constraint,
    delta_literal: Option<usize>,
    relations: &mut HashMap<String, Relation>,
    udfs: &UdfRegistry,
    cache: &mut PlanCache,
    stats: &PlanStats,
) -> (RulePlan, RulePlan) {
    let lhs = cache.plan_for(
        PlanKey::ConstraintLhs {
            constraint: index,
            delta: delta_literal,
        },
        &constraint.lhs,
        relations,
        udfs,
        stats,
    );
    let rhs = cache.plan_for(
        PlanKey::ConstraintRhs { constraint: index },
        &constraint.rhs,
        relations,
        udfs,
        stats,
    );
    for spec in lhs.ensure.iter().chain(rhs.ensure.iter()) {
        if let Some(relation) = relations.get_mut(&spec.pred) {
            if relation.ensure_index(spec.cols) {
                PlanStats::bump(&stats.index_builds);
            }
        }
    }
    (lhs, rhs)
}

/// Shard one constraint's left-hand-side enumeration across the worker
/// pool: each shard checks its slice of the driving tuples independently
/// (the rhs witness search runs per lhs binding, inside the shard), and
/// errors are reported from the lowest shard index, so which violation
/// aborts is as deterministic as the partition itself.  Whether *any*
/// violation exists — the transaction verdict — is shard-independent.
#[allow(clippy::too_many_arguments)]
fn check_constraint_sharded(
    constraint: &Constraint,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    plans: (&RulePlan, &RulePlan),
    literal_index: usize,
    shards: &[Vec<&Tuple>],
    stats: &PlanStats,
    pool: Option<&WorkerPool>,
) -> Result<()> {
    if shards.iter().filter(|shard| !shard.is_empty()).count() > 1 {
        PlanStats::bump(&stats.parallel_batches);
    }
    exec::run_shards(pool, shards, |shard| {
        PlanStats::bump(&stats.shards_executed);
        check_constraint_with(
            constraint,
            relations,
            udfs,
            Some(plans),
            Some(DeltaRestriction {
                literal_index,
                delta: DeltaTuples::Shard(shard),
            }),
            Some(stats),
        )
    })
    .map(|_| ())
}

/// Check all constraints through the cost-based planner and the shared plan
/// cache; the first violation wins.  When the pool is enabled and an lhs
/// drives off a stored relation above the parallel threshold, that
/// relation's extension is hash-partitioned and the shards check
/// concurrently.
pub fn check_constraints_planned(
    constraints: &[Constraint],
    relations: &mut HashMap<String, Relation>,
    udfs: &UdfRegistry,
    cache: &mut PlanCache,
    stats: &PlanStats,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<()> {
    for (index, constraint) in constraints.iter().enumerate() {
        if constraint.rhs.is_empty() {
            continue;
        }
        let (lhs_plan, rhs_plan) =
            prepare_constraint_plans(index, constraint, None, relations, udfs, cache, stats);
        let relations = &*relations;
        if pool.is_some() {
            if let Some((drive, shards)) = exec::shard_driving_relation(
                &constraint.lhs,
                Some(&lhs_plan),
                relations,
                udfs,
                options,
            ) {
                check_constraint_sharded(
                    constraint,
                    relations,
                    udfs,
                    (&lhs_plan, &rhs_plan),
                    drive,
                    &shards,
                    stats,
                    pool,
                )?;
                continue;
            }
        }
        check_constraint_with(
            constraint,
            relations,
            udfs,
            Some((&lhs_plan, &rhs_plan)),
            None,
            Some(stats),
        )?;
    }
    Ok(())
}

/// Planned variant of [`check_constraints_incremental`]: only left-hand-side
/// bindings that touch a tuple in `delta` are examined, each through a
/// cached plan with the delta literal pinned.  Deltas above the parallel
/// threshold are hash-partitioned and checked concurrently on the pool.
#[allow(clippy::too_many_arguments)]
pub fn check_constraints_incremental_planned(
    constraints: &[Constraint],
    relations: &mut HashMap<String, Relation>,
    udfs: &UdfRegistry,
    cache: &mut PlanCache,
    stats: &PlanStats,
    delta: &HashMap<String, HashSet<Tuple>>,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<()> {
    for (index, constraint) in constraints.iter().enumerate() {
        if constraint.rhs.is_empty() {
            continue;
        }
        for (literal_index, literal) in constraint.lhs.iter().enumerate() {
            let Some(atom) = literal.as_pos() else {
                continue;
            };
            let Ok(pred) = crate::eval::runtime_pred_name(&atom.pred) else {
                continue;
            };
            let Some(pred_delta) = delta.get(&pred) else {
                continue;
            };
            if pred_delta.is_empty() {
                continue;
            }
            let (lhs_plan, rhs_plan) = prepare_constraint_plans(
                index,
                constraint,
                Some(literal_index),
                relations,
                udfs,
                cache,
                stats,
            );
            let relations = &*relations;
            if pool.is_some()
                && options.parallel_enabled()
                && pred_delta.len() >= options.parallel_threshold
            {
                let shards = exec::partition(pred_delta.iter(), options.workers);
                check_constraint_sharded(
                    constraint,
                    relations,
                    udfs,
                    (&lhs_plan, &rhs_plan),
                    literal_index,
                    &shards,
                    stats,
                    pool,
                )?;
                continue;
            }
            check_constraint_with(
                constraint,
                relations,
                udfs,
                Some((&lhs_plan, &rhs_plan)),
                Some(DeltaRestriction {
                    literal_index,
                    delta: pred_delta.into(),
                }),
                Some(stats),
            )?;
        }
    }
    Ok(())
}

/// Check constraints incrementally: only left-hand-side bindings that touch
/// at least one tuple in `delta` (the tuples inserted by the current
/// transaction) are examined.  This matches the engine description in the
/// paper ("the engine checks for constraint violations for every new fact
/// that is derived", §2) and keeps signature verification proportional to the
/// batch size rather than to the whole database.
pub fn check_constraints_incremental(
    constraints: &[Constraint],
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    delta: &HashMap<String, HashSet<Tuple>>,
) -> Result<()> {
    for constraint in constraints {
        if constraint.rhs.is_empty() {
            continue;
        }
        for (literal_index, literal) in constraint.lhs.iter().enumerate() {
            let Some(atom) = literal.as_pos() else {
                continue;
            };
            let Ok(pred) = crate::eval::runtime_pred_name(&atom.pred) else {
                continue;
            };
            let Some(pred_delta) = delta.get(&pred) else {
                continue;
            };
            if pred_delta.is_empty() {
                continue;
            }
            check_constraint_with(
                constraint,
                relations,
                udfs,
                None,
                Some(DeltaRestriction {
                    literal_index,
                    delta: pred_delta.into(),
                }),
                None,
            )?;
        }
    }
    Ok(())
}

/// Check all constraints; the first violation wins.
pub fn check_constraints(
    constraints: &[Constraint],
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
) -> Result<()> {
    for constraint in constraints {
        check_constraint(constraint, relations, udfs)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::value::Value;

    fn relations_with(facts: &[(&str, Vec<Value>)]) -> HashMap<String, Relation> {
        let mut relations: HashMap<String, Relation> = HashMap::new();
        for (pred, tuple) in facts {
            relations
                .entry(pred.to_string())
                .or_insert_with(|| Relation::new(*pred, None))
                .insert(tuple.clone())
                .unwrap();
        }
        relations
    }

    fn constraints_of(source: &str) -> Vec<Constraint> {
        parse_program(source)
            .unwrap()
            .constraints()
            .cloned()
            .collect()
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn satisfied_constraint_passes() {
        let constraints = constraints_of("says_link(P, Q) -> principal(P), principal(Q).");
        let relations = relations_with(&[
            ("says_link", vec![s("alice"), s("bob")]),
            ("principal", vec![s("alice")]),
            ("principal", vec![s("bob")]),
        ]);
        check_constraints(&constraints, &relations, &UdfRegistry::new()).unwrap();
    }

    #[test]
    fn violation_reports_witness() {
        let constraints = constraints_of("says_link(P, Q) -> principal(P).");
        let relations = relations_with(&[
            ("says_link", vec![s("mallory"), s("bob")]),
            ("principal", vec![s("bob")]),
        ]);
        let err = check_constraints(&constraints, &relations, &UdfRegistry::new()).unwrap_err();
        match err {
            DatalogError::ConstraintViolation(v) => {
                assert!(v.witness.contains("mallory"));
                assert!(v.constraint.contains("says_link"));
            }
            other => panic!("expected constraint violation, got {other}"),
        }
    }

    #[test]
    fn empty_rhs_never_fails() {
        let constraints = constraints_of("pathvar(P) -> .");
        let relations = relations_with(&[("pathvar", vec![Value::Entity(1)])]);
        check_constraints(&constraints, &relations, &UdfRegistry::new()).unwrap();
    }

    #[test]
    fn rhs_with_existential_variable() {
        // Every employee must have *some* manager.
        let constraints = constraints_of("employee(E) -> manager(E, M).");
        let good = relations_with(&[
            ("employee", vec![s("ann")]),
            ("manager", vec![s("ann"), s("bo")]),
        ]);
        check_constraints(&constraints, &good, &UdfRegistry::new()).unwrap();
        let bad = relations_with(&[("employee", vec![s("ann")])]);
        assert!(check_constraints(&constraints, &bad, &UdfRegistry::new()).is_err());
    }

    #[test]
    fn builtin_type_constraints_check_value_types() {
        let constraints = constraints_of("cost(X, C) -> string(X), int(C).");
        let good = relations_with(&[("cost", vec![s("a"), Value::Int(4)])]);
        check_constraints(&constraints, &good, &UdfRegistry::new()).unwrap();
        let bad = relations_with(&[("cost", vec![s("a"), s("oops")])]);
        assert!(check_constraints(&constraints, &bad, &UdfRegistry::new()).is_err());
    }

    #[test]
    fn udf_in_rhs_acts_as_verifier() {
        let mut udfs = UdfRegistry::new();
        // verify(X) succeeds only for the magic value.
        udfs.register("verify", |args| {
            let v = crate::udf::require_bound(args, 0, "verify")?;
            if v == Value::str("valid") {
                Ok(vec![vec![v]])
            } else {
                Ok(vec![])
            }
        });
        let constraints = constraints_of("msg(M) -> verify(M).");
        let good = relations_with(&[("msg", vec![s("valid")])]);
        check_constraints(&constraints, &good, &udfs).unwrap();
        let bad = relations_with(&[("msg", vec![s("forged")])]);
        assert!(check_constraints(&constraints, &bad, &udfs).is_err());
    }

    #[test]
    fn comparison_in_rhs() {
        let constraints = constraints_of("delegated(U) -> U = \"CA\".");
        let good = relations_with(&[("delegated", vec![s("CA")])]);
        check_constraints(&constraints, &good, &UdfRegistry::new()).unwrap();
        let bad = relations_with(&[("delegated", vec![s("EvilCorp")])]);
        assert!(check_constraints(&constraints, &bad, &UdfRegistry::new()).is_err());
    }

    #[test]
    fn no_lhs_matches_means_satisfied() {
        let constraints = constraints_of("says_link(P, Q) -> principal(P).");
        let relations = relations_with(&[]);
        check_constraints(&constraints, &relations, &UdfRegistry::new()).unwrap();
    }
}
