//! Predicate schemas: arities, argument types, functional dependencies and
//! singletons.
//!
//! DatalogLB declares a predicate's types with a *type declaration*, which is
//! syntactically an integrity constraint whose left-hand side is a single
//! atom with distinct variable arguments and whose right-hand side consists
//! only of unary atoms over those variables:
//!
//! ```text
//! link(N1, N2) -> node(N1), node(N2).
//! path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).
//! pathvar(P) -> .
//! ```
//!
//! [`Schema::absorb_program`] recognises these declarations, records them,
//! and also infers arities for predicates that are only ever used in rules.

use crate::ast::{Atom, Constraint, Literal, PredRef, Program, Statement, Term};
use crate::error::{DatalogError, Result};
use std::collections::BTreeMap;

/// Built-in primitive type names that need no declaration.
pub const BUILTIN_TYPES: &[&str] = &["int", "string", "bool", "bytes", "entity", "pred"];

/// How a predicate stores its tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateKind {
    /// An ordinary relation.
    Relation,
    /// A functional predicate `p[k1..kn] = v`: the first `key_arity` columns
    /// functionally determine the last column.
    Functional { key_arity: usize },
}

/// Declaration of a single predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateDecl {
    pub name: String,
    pub arity: usize,
    pub kind: PredicateKind,
    /// Declared type (a unary predicate name or a built-in type) per argument
    /// position, where known.
    pub arg_types: Vec<Option<String>>,
    /// True if this predicate is itself used as a type (appears on the
    /// right-hand side of a type declaration or is declared with `p(X) -> .`).
    pub is_type: bool,
    /// True if the arity was only inferred from usage rather than declared.
    pub inferred: bool,
    /// True if the predicate was observed with conflicting arities in body
    /// positions only (user-defined functions such as `rsa_sign` are called
    /// with one argument per payload column, so their arity varies per call
    /// site).  Variadic predicates are skipped by the static type checker.
    pub variadic: bool,
    /// True if the predicate has been observed in a rule head or fact.
    pub head_observed: bool,
}

impl PredicateDecl {
    /// A new declaration with unknown argument types.
    pub fn new(name: impl Into<String>, arity: usize, kind: PredicateKind) -> Self {
        PredicateDecl {
            name: name.into(),
            arity,
            kind,
            arg_types: vec![None; arity],
            is_type: false,
            inferred: true,
            variadic: false,
            head_observed: false,
        }
    }

    /// True if this is a zero-key functional predicate (`p[] = v`).
    pub fn is_singleton(&self) -> bool {
        matches!(self.kind, PredicateKind::Functional { key_arity: 0 })
    }

    /// The key arity for functional predicates, or the full arity otherwise.
    pub fn key_arity(&self) -> usize {
        match self.kind {
            PredicateKind::Relation => self.arity,
            PredicateKind::Functional { key_arity } => key_arity,
        }
    }
}

/// The set of predicate declarations known to a workspace.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    decls: BTreeMap<String, PredicateDecl>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema {
            decls: BTreeMap::new(),
        }
    }

    /// Look up a predicate declaration.
    pub fn get(&self, name: &str) -> Option<&PredicateDecl> {
        self.decls.get(name)
    }

    /// Iterate over all declarations.
    pub fn decls(&self) -> impl Iterator<Item = &PredicateDecl> {
        self.decls.values()
    }

    /// Number of declared predicates.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if no predicates are declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// True if `name` is a built-in primitive type or a declared type predicate.
    pub fn is_type(&self, name: &str) -> bool {
        BUILTIN_TYPES.contains(&name) || self.decls.get(name).is_some_and(|d| d.is_type)
    }

    /// Declare (or refine) a predicate explicitly.
    ///
    /// Arity conflicts between two explicit declarations are errors; an
    /// inferred declaration is silently upgraded by an explicit one.
    pub fn declare(&mut self, decl: PredicateDecl) -> Result<()> {
        match self.decls.get_mut(&decl.name) {
            None => {
                self.decls.insert(decl.name.clone(), decl);
                Ok(())
            }
            Some(existing) => {
                if existing.arity != decl.arity {
                    return Err(DatalogError::Schema(format!(
                        "predicate {} declared with arity {} but previously seen with arity {}",
                        decl.name, decl.arity, existing.arity
                    )));
                }
                if existing.inferred && !decl.inferred {
                    let is_type = existing.is_type || decl.is_type;
                    *existing = decl;
                    existing.is_type = is_type;
                } else {
                    // Merge type information where the new declaration knows more.
                    if existing.kind == PredicateKind::Relation
                        && decl.kind != PredicateKind::Relation
                    {
                        existing.kind = decl.kind;
                    }
                    for (slot, ty) in existing.arg_types.iter_mut().zip(decl.arg_types.iter()) {
                        if slot.is_none() {
                            slot.clone_from(ty);
                        }
                    }
                    existing.is_type |= decl.is_type;
                }
                Ok(())
            }
        }
    }

    /// Record that `name` is used as a type predicate.
    pub fn mark_type(&mut self, name: &str) {
        if BUILTIN_TYPES.contains(&name) {
            return;
        }
        self.decls
            .entry(name.to_string())
            .or_insert_with(|| PredicateDecl::new(name, 1, PredicateKind::Relation))
            .is_type = true;
    }

    /// Infer (or check) a declaration from an atom occurrence in a rule.
    pub fn observe_atom(&mut self, atom: &Atom) -> Result<()> {
        self.observe_atom_at(atom, true)
    }

    /// Infer (or check) a declaration from an atom occurrence, distinguishing
    /// head/fact positions (strict arity checking) from body positions
    /// (conflicts mark the predicate variadic — the convention for
    /// user-defined functions with per-call-site arity).
    pub fn observe_atom_at(&mut self, atom: &Atom, in_head: bool) -> Result<()> {
        let name = match &atom.pred {
            PredRef::Named(n) => n.clone(),
            PredRef::Parameterized { generic, param } => format!("{generic}${param}"),
            // Meta-level references are resolved by the BloxGenerics compiler
            // before a program reaches the schema.
            PredRef::ParameterizedVar { .. } | PredRef::Var(_) => return Ok(()),
        };
        let arity = atom.terms.len();
        let kind = if atom.functional {
            PredicateKind::Functional {
                key_arity: arity.saturating_sub(1),
            }
        } else {
            PredicateKind::Relation
        };
        match self.decls.get_mut(&name) {
            None => {
                let mut decl = PredicateDecl::new(name.clone(), arity, kind);
                decl.head_observed = in_head;
                self.decls.insert(name, decl);
                Ok(())
            }
            Some(existing) if existing.arity != arity => {
                if in_head || existing.head_observed || !existing.inferred {
                    Err(DatalogError::Schema(format!(
                        "predicate {name} used with arity {arity} but declared/used with arity {}",
                        existing.arity
                    )))
                } else {
                    existing.variadic = true;
                    Ok(())
                }
            }
            Some(existing) => {
                existing.head_observed |= in_head;
                Ok(())
            }
        }
    }

    /// Recognise type declarations and functional-dependency declarations in
    /// `program`, and infer arities for every other predicate that appears.
    pub fn absorb_program(&mut self, program: &Program) -> Result<()> {
        // First pass: explicit type declarations (constraints of the
        // recognised shape), so later arity inference agrees with them.
        for statement in &program.statements {
            if let Statement::Constraint(c) = statement {
                if let Some(decl) = Self::try_type_declaration(c) {
                    for lit in &c.rhs {
                        if let Literal::Pos(atom) = lit {
                            if let PredRef::Named(ty) = &atom.pred {
                                if !BUILTIN_TYPES.contains(&ty.as_str()) {
                                    self.mark_type(ty);
                                }
                            }
                        }
                    }
                    self.declare(decl)?;
                }
            }
        }
        // Second pass: observe every atom to infer arities and catch
        // inconsistent usage.
        for statement in &program.statements {
            match statement {
                Statement::Rule(rule) => {
                    for atom in &rule.head {
                        self.observe_atom_at(atom, true)?;
                    }
                    for lit in &rule.body {
                        if let Literal::Pos(a) | Literal::Neg(a) = lit {
                            self.observe_atom_at(a, false)?;
                        }
                    }
                }
                Statement::Constraint(c) => {
                    for lit in c.lhs.iter().chain(c.rhs.iter()) {
                        if let Literal::Pos(a) | Literal::Neg(a) = lit {
                            self.observe_atom_at(a, false)?;
                        }
                    }
                }
                Statement::Fact(fd) => self.observe_atom_at(&fd.atom, true)?,
                // Generic statements are handled by the BloxGenerics compiler.
                Statement::GenericRule(_) | Statement::GenericConstraint(_) => {}
            }
        }
        Ok(())
    }

    /// If `constraint` has the shape of a type declaration, build the
    /// corresponding [`PredicateDecl`].
    ///
    /// Recognised shapes:
    /// * `p(X1,…,Xn) -> t1(X1), …, tk(Xk).` — possibly with fewer `ti` than
    ///   arguments; unary `p(X) -> .` declares an entity/type predicate.
    /// * `p[X1,…,Xn] = Y -> t1(X1), …, t(Y).` — functional predicate.
    pub fn try_type_declaration(constraint: &Constraint) -> Option<PredicateDecl> {
        if constraint.lhs.len() != 1 {
            return None;
        }
        let atom = constraint.lhs[0].as_pos()?;
        let name = atom.pred.as_named()?;
        // All arguments must be distinct variables.
        let mut vars = Vec::new();
        for term in &atom.terms {
            match term {
                Term::Var(v) if !vars.contains(v) => vars.push(v.clone()),
                _ => return None,
            }
        }
        // The right-hand side must consist only of unary positive atoms over
        // those variables (or be empty).
        let mut arg_types = vec![None; atom.terms.len()];
        for lit in &constraint.rhs {
            let rhs_atom = match lit {
                Literal::Pos(a) => a,
                _ => return None,
            };
            let ty = rhs_atom.pred.as_named()?;
            if rhs_atom.terms.len() != 1 {
                return None;
            }
            let var = match &rhs_atom.terms[0] {
                Term::Var(v) => v,
                _ => return None,
            };
            let position = vars.iter().position(|v| v == var)?;
            arg_types[position] = Some(ty.to_string());
        }
        let kind = if atom.functional {
            PredicateKind::Functional {
                key_arity: atom.terms.len().saturating_sub(1),
            }
        } else {
            PredicateKind::Relation
        };
        let is_type = atom.terms.len() == 1 && constraint.rhs.is_empty();
        Some(PredicateDecl {
            name: name.to_string(),
            arity: atom.terms.len(),
            kind,
            arg_types,
            is_type,
            inferred: false,
            variadic: false,
            head_observed: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn recognises_type_declarations() {
        let program = parse_program(
            r#"
            link(N1, N2) -> node(N1), node(N2).
            pathvar(P) -> .
            path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).
            reachable(X, Y) <- link(X, Y).
            "#,
        )
        .unwrap();
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();

        let link = schema.get("link").unwrap();
        assert_eq!(link.arity, 2);
        assert_eq!(
            link.arg_types,
            vec![Some("node".into()), Some("node".into())]
        );
        assert!(!link.inferred);

        let path = schema.get("path").unwrap();
        assert_eq!(path.arity, 4);
        assert_eq!(path.kind, PredicateKind::Functional { key_arity: 3 });
        assert_eq!(path.arg_types[3], Some("int".into()));

        assert!(schema.get("pathvar").unwrap().is_type);
        assert!(schema.is_type("node"));
        assert!(schema.is_type("int"));
        assert!(!schema.is_type("link"));

        // reachable was only inferred from the rule.
        let reachable = schema.get("reachable").unwrap();
        assert_eq!(reachable.arity, 2);
        assert!(reachable.inferred);
    }

    #[test]
    fn arity_conflicts_rejected() {
        let program = parse_program("p(X) <- q(X).\np(X, Y) <- q(X), q(Y).").unwrap();
        let mut schema = Schema::new();
        let err = schema.absorb_program(&program).unwrap_err();
        assert!(matches!(err, DatalogError::Schema(_)));
    }

    #[test]
    fn explicit_declaration_conflict_rejected() {
        let mut schema = Schema::new();
        schema
            .declare(PredicateDecl::new("p", 2, PredicateKind::Relation))
            .unwrap();
        let mut other = PredicateDecl::new("p", 3, PredicateKind::Relation);
        other.inferred = false;
        assert!(schema.declare(other).is_err());
    }

    #[test]
    fn body_only_arity_conflicts_mark_variadic() {
        // rsa_sign is called with different arities from different rule
        // bodies (one argument per payload column) — tolerated as variadic.
        let program = parse_program(
            "sig_a(X, S) <- a(X), rsa_sign(K, X, S).\n\
             sig_b(X, Y, S) <- b(X, Y), rsa_sign(K, X, Y, S).",
        )
        .unwrap();
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();
        assert!(schema.get("rsa_sign").unwrap().variadic);
        // But a head-position conflict is still an error.
        let bad = parse_program("p(X) <- q(X).\np(X, Y) <- q(X), q(Y).").unwrap();
        let mut schema = Schema::new();
        assert!(schema.absorb_program(&bad).is_err());
    }

    #[test]
    fn singleton_detection() {
        let program = parse_program("self[] = me -> principal(me).").unwrap();
        // Not a valid type declaration (constant arg), but usage inference still works.
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();
        let decl = schema.get("self").unwrap();
        assert!(decl.is_singleton());
        assert_eq!(decl.key_arity(), 0);
    }

    #[test]
    fn merge_keeps_best_information() {
        let mut schema = Schema::new();
        schema
            .declare(PredicateDecl::new("p", 2, PredicateKind::Relation))
            .unwrap();
        let mut refined = PredicateDecl::new("p", 2, PredicateKind::Functional { key_arity: 1 });
        refined.arg_types = vec![Some("node".into()), Some("int".into())];
        refined.inferred = false;
        schema.declare(refined).unwrap();
        let decl = schema.get("p").unwrap();
        assert_eq!(decl.kind, PredicateKind::Functional { key_arity: 1 });
        assert_eq!(decl.arg_types[0], Some("node".into()));
    }
}
