//! Static type checking of rules against the declared schema.
//!
//! DatalogLB "employs a static type system, which guarantees at compile-time
//! that certain kinds of constraints always hold for all possible
//! instantiations of a given schema" (paper §2).  The check implemented here
//! follows the paper's example: a rule deriving `p(x1,…,xn)` is accepted only
//! if, for every argument position with a declared type, the rule body
//! guarantees membership in that type — because the variable also appears at
//! a body position with the same declared type, appears directly in an atom
//! of the type predicate itself, is a constant of the right primitive type,
//! or is a head-existential variable of an entity type (which the engine
//! populates itself).
//!
//! Predicates without declared argument types are unchecked (gradual typing),
//! so inferred-schema programs always pass.

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::error::{DatalogError, Result};
use crate::eval::runtime_pred_name;
use crate::schema::{Schema, BUILTIN_TYPES};
use crate::udf::UdfRegistry;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Type-check every rule of `program` against `schema`.
pub fn typecheck_program(program: &Program, schema: &Schema, udfs: &UdfRegistry) -> Result<()> {
    for rule in program.rules() {
        typecheck_rule(rule, schema, udfs)?;
    }
    Ok(())
}

/// Type-check a single rule.
pub fn typecheck_rule(rule: &Rule, schema: &Schema, udfs: &UdfRegistry) -> Result<()> {
    // 1. Infer the set of types guaranteed for each body variable.
    let mut var_types: HashMap<String, HashSet<String>> = HashMap::new();
    for literal in &rule.body {
        let Literal::Pos(atom) = literal else {
            continue;
        };
        let Ok(pred) = runtime_pred_name(&atom.pred) else {
            continue;
        };
        if udfs.is_udf(&pred) {
            continue;
        }
        // Membership in a declared type predicate (or builtin check).
        if schema.is_type(&pred) && atom.terms.len() == 1 {
            if let Term::Var(v) = &atom.terms[0] {
                var_types.entry(v.clone()).or_default().insert(pred.clone());
            }
            continue;
        }
        let Some(decl) = schema.get(&pred) else {
            continue;
        };
        if decl.variadic {
            continue;
        }
        for (term, declared) in atom.terms.iter().zip(decl.arg_types.iter()) {
            if let (Term::Var(v), Some(ty)) = (term, declared) {
                var_types.entry(v.clone()).or_default().insert(ty.clone());
            }
        }
    }

    let existentials: HashSet<String> = rule.head_existentials().into_iter().collect();

    // 2. Check each head argument against the head predicate's declaration.
    for atom in &rule.head {
        check_atom_against_schema(rule, atom, schema, &var_types, &existentials)?;
    }
    Ok(())
}

fn check_atom_against_schema(
    rule: &Rule,
    atom: &Atom,
    schema: &Schema,
    var_types: &HashMap<String, HashSet<String>>,
    existentials: &HashSet<String>,
) -> Result<()> {
    let Ok(pred) = runtime_pred_name(&atom.pred) else {
        return Ok(());
    };
    let Some(decl) = schema.get(&pred) else {
        return Ok(());
    };
    if decl.variadic {
        return Ok(());
    }
    if decl.arity != atom.terms.len() {
        return Err(DatalogError::Type(format!(
            "rule `{rule}` derives {pred} with {} arguments but it is declared with arity {}",
            atom.terms.len(),
            decl.arity
        )));
    }
    for (position, (term, declared)) in atom.terms.iter().zip(decl.arg_types.iter()).enumerate() {
        let Some(required) = declared else { continue };
        match term {
            Term::Var(v) => {
                if existentials.contains(v) {
                    // Head-existential variables mint entities; they are only
                    // valid at positions typed by an entity-style type.
                    continue;
                }
                let inferred = var_types.get(v);
                let satisfied = match inferred {
                    Some(types) => {
                        types.contains(required)
                            || BUILTIN_TYPES.contains(&required.as_str())
                                && types.iter().any(|t| t == required)
                    }
                    None => false,
                };
                // Gradual typing: only reject when we inferred *some* types
                // for the variable and none of them is the required one, or
                // when the required type is a declared (non-builtin) type and
                // nothing at all is known about the variable.
                let known_wrong =
                    matches!(inferred, Some(types) if !types.is_empty()) && !satisfied;
                let unknown_but_strict =
                    inferred.is_none() && !BUILTIN_TYPES.contains(&required.as_str());
                if known_wrong || unknown_but_strict {
                    return Err(DatalogError::Type(format!(
                        "in rule `{rule}`: argument {position} of {pred} requires type {required}, \
                         but variable {v} is not guaranteed to be a {required} by the rule body"
                    )));
                }
            }
            Term::Const(value)
                if BUILTIN_TYPES.contains(&required.as_str())
                    && value.primitive_type() != required =>
            {
                return Err(DatalogError::Type(format!(
                    "in rule `{rule}`: argument {position} of {pred} requires type {required}, \
                     but the constant {value} is a {}",
                    value.primitive_type()
                )));
            }
            // Arithmetic results are integers.
            Term::BinOp(..)
                if BUILTIN_TYPES.contains(&required.as_str())
                    && required != "int"
                    && required != "string" =>
            {
                return Err(DatalogError::Type(format!(
                    "in rule `{rule}`: argument {position} of {pred} requires type {required}, \
                     but an arithmetic expression produces an int"
                )));
            }
            // Singleton accesses, wildcards and sequences are not statically
            // checkable here.
            _ => {}
        }
    }
    let _ = Value::Bool(true); // keep Value imported for doc-consistency
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(source: &str) -> Result<()> {
        let program = parse_program(source).unwrap();
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();
        typecheck_program(&program, &schema, &UdfRegistry::new())
    }

    #[test]
    fn well_typed_rule_accepted() {
        check(
            "link(N1, N2) -> node(N1), node(N2).\n\
             reachable(X, Y) -> node(X), node(Y).\n\
             reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
    }

    #[test]
    fn untyped_variable_for_declared_type_rejected() {
        // s provides no guarantee that its values are nodes (the paper's
        // motivating example for the static type system).
        let err = check(
            "reachable(X, Y) -> node(X), node(Y).\n\
             reachable(X, Y) <- s(X), s(Y).",
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::Type(_)));
    }

    #[test]
    fn declaring_subset_fixes_it() {
        check(
            "reachable(X, Y) -> node(X), node(Y).\n\
             s(X) -> node(X).\n\
             reachable(X, Y) <- s(X), s(Y).",
        )
        .unwrap();
    }

    #[test]
    fn membership_atom_satisfies_type() {
        check(
            "reachable(X, Y) -> node(X), node(Y).\n\
             reachable(X, Y) <- candidate(X, Y), node(X), node(Y).",
        )
        .unwrap();
    }

    #[test]
    fn constant_of_wrong_primitive_type_rejected() {
        let err = check(
            "cost(N, C) -> node(N), int[32](C).\n\
             cost(X, \"high\") <- node(X).",
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::Type(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        // Declared arity 2 but derived with arity 2 — craft a mismatch by
        // declaring p explicitly and deriving with the wrong arity via a
        // second program pass.
        let program = parse_program("p(X, Y) -> node(X), node(Y).").unwrap();
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();
        let bad = parse_program("p(X) <- node(X).").unwrap();
        let err = typecheck_program(&bad, &schema, &UdfRegistry::new()).unwrap_err();
        assert!(matches!(err, DatalogError::Type(_)));
    }

    #[test]
    fn existential_head_variables_pass() {
        check(
            "pathvar(P) -> .\n\
             path(P, X, Y) -> pathvar(P), node(X), node(Y).\n\
             link(X, Y) -> node(X), node(Y).\n\
             pathvar(P), path(P, X, Y) <- link(X, Y).",
        )
        .unwrap();
    }

    #[test]
    fn arithmetic_heads_accept_int_positions() {
        check(
            "dist(X, C) -> node(X), int[32](C).\n\
             link(X, Y) -> node(X), node(Y).\n\
             dist(X, C + 1) <- link(X, Y), dist(Y, C).",
        )
        .unwrap();
    }

    #[test]
    fn undeclared_predicates_are_gradually_typed() {
        check("helper(X, Y) <- anything(X), whatever(Y).").unwrap();
    }
}
