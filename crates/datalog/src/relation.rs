//! In-memory relation storage with functional-dependency enforcement.

use crate::error::{DatalogError, Result};
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};

/// A stored relation: the extension of one predicate inside a workspace.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    name: String,
    /// `Some(k)` if the predicate is functional with `k` key columns (the
    /// remaining single column is the dependent value).
    key_arity: Option<usize>,
    tuples: HashSet<Tuple>,
    /// Key → value index for functional predicates, used both for fast lookup
    /// and for detecting functional-dependency violations.
    fd_index: HashMap<Tuple, Value>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, key_arity: Option<usize>) -> Self {
        Relation {
            name: name.into(),
            key_arity,
            tuples: HashSet::new(),
            fd_index: HashMap::new(),
        }
    }

    /// The relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional key arity, if the predicate is functional.
    pub fn key_arity(&self) -> Option<usize> {
        self.key_arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over all tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples in a deterministic order (sorted by the total value order),
    /// for stable output and tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.tuples.iter().cloned().collect();
        out.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                match x.total_cmp(y) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            a.len().cmp(&b.len())
        });
        out
    }

    /// Insert a tuple.
    ///
    /// Returns `Ok(true)` if the tuple is new, `Ok(false)` if it was already
    /// present, and a [`DatalogError::FunctionalDependency`] error if the
    /// predicate is functional and the key already maps to a different value.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if let Some(key_arity) = self.key_arity {
            if tuple.len() != key_arity + 1 {
                return Err(DatalogError::Eval(format!(
                    "functional predicate {} expects {} columns, got {}",
                    self.name,
                    key_arity + 1,
                    tuple.len()
                )));
            }
            let key: Tuple = tuple[..key_arity].to_vec();
            let value = tuple[key_arity].clone();
            if let Some(existing) = self.fd_index.get(&key) {
                if *existing == value {
                    return Ok(false);
                }
                let mut existing_row = key.clone();
                existing_row.push(existing.clone());
                return Err(DatalogError::FunctionalDependency {
                    predicate: self.name.clone(),
                    key,
                    existing: vec![existing_row[key_arity].clone()],
                    attempted: vec![value],
                });
            }
            self.fd_index.insert(key, value);
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Insert a tuple for a functional predicate, replacing any existing
    /// value for the same key (used by aggregation recomputation, where a
    /// better aggregate legitimately supersedes the previous one).
    pub fn insert_or_replace(&mut self, tuple: Tuple) -> Result<bool> {
        if let Some(key_arity) = self.key_arity {
            let key: Tuple = tuple[..key_arity].to_vec();
            if let Some(existing) = self.fd_index.get(&key).cloned() {
                if existing == tuple[key_arity] {
                    return Ok(false);
                }
                let mut old_row = key.clone();
                old_row.push(existing);
                self.tuples.remove(&old_row);
                self.fd_index.remove(&key);
            }
        }
        self.insert(tuple)
    }

    /// Remove a tuple, returning whether it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let removed = self.tuples.remove(tuple);
        if removed {
            if let Some(key_arity) = self.key_arity {
                let key: Tuple = tuple[..key_arity].to_vec();
                self.fd_index.remove(&key);
            }
        }
        removed
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.fd_index.clear();
    }

    /// Look up the dependent value for `key` in a functional predicate.
    pub fn functional_lookup(&self, key: &[Value]) -> Option<&Value> {
        self.fd_index.get(key)
    }

    /// The value of a zero-key functional predicate (`p[] = v`), if set.
    pub fn singleton_value(&self) -> Option<&Value> {
        if self.key_arity == Some(0) {
            self.fd_index.get(&Vec::new() as &Tuple)
        } else {
            None
        }
    }

    /// Tuples matching a partial binding pattern: `pattern[i] = Some(v)`
    /// requires column `i` to equal `v`.
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|tuple| {
                tuple.len() == pattern.len()
                    && pattern
                        .iter()
                        .zip(tuple.iter())
                        .all(|(p, v)| p.as_ref().is_none_or(|expected| expected == v))
            })
            .collect()
    }

    /// True if at least one tuple matches the partial binding pattern.
    pub fn matches_any(&self, pattern: &[Option<Value>]) -> bool {
        self.tuples.iter().any(|tuple| {
            tuple.len() == pattern.len()
                && pattern
                    .iter()
                    .zip(tuple.iter())
                    .all(|(p, v)| p.as_ref().is_none_or(|expected| expected == v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[i64]) -> Tuple {
        values.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut rel = Relation::new("link", None);
        assert!(rel.insert(t(&[1, 2])).unwrap());
        assert!(!rel.insert(t(&[1, 2])).unwrap());
        assert!(rel.insert(t(&[2, 3])).unwrap());
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&t(&[1, 2])));
        assert!(!rel.contains(&t(&[3, 1])));
    }

    #[test]
    fn functional_dependency_enforced() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(!rel.insert(t(&[1, 2, 5])).unwrap());
        let err = rel.insert(t(&[1, 2, 7])).unwrap_err();
        assert!(matches!(err, DatalogError::FunctionalDependency { .. }));
        // Different key is fine.
        rel.insert(t(&[1, 3, 7])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(5)));
    }

    #[test]
    fn insert_or_replace_updates_value() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(3)));
        assert!(!rel.contains(&t(&[1, 2, 5])));
        assert!(!rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
    }

    #[test]
    fn singleton_value_access() {
        let mut rel = Relation::new("self", Some(0));
        assert!(rel.singleton_value().is_none());
        rel.insert(vec![Value::str("n1")]).unwrap();
        assert_eq!(rel.singleton_value(), Some(&Value::str("n1")));
        // A non-singleton relation never reports a singleton value.
        let rel2 = Relation::new("link", None);
        assert!(rel2.singleton_value().is_none());
    }

    #[test]
    fn remove_maintains_fd_index() {
        let mut rel = Relation::new("m", Some(1));
        rel.insert(t(&[1, 10])).unwrap();
        assert!(rel.remove(&t(&[1, 10])));
        assert!(!rel.remove(&t(&[1, 10])));
        // After removal the key can be remapped without a violation.
        rel.insert(t(&[1, 20])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1])), Some(&Value::Int(20)));
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let matches = rel.select(&[Some(Value::Int(1)), None]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, Some(Value::Int(3))]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, None]);
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut rel = Relation::new("edge", None);
        rel.insert(t(&[3, 1])).unwrap();
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[1, 1])).unwrap();
        assert_eq!(rel.sorted(), vec![t(&[1, 1]), t(&[1, 2]), t(&[3, 1])]);
    }

    #[test]
    fn arity_mismatch_rejected_for_functional() {
        let mut rel = Relation::new("f", Some(1));
        assert!(rel.insert(t(&[1])).is_err());
    }
}
