//! Interned, columnar relation storage with functional-dependency
//! enforcement and lazily-built, incrementally-maintained secondary indexes.
//!
//! Every value is encoded to a dense `u32` id by the workspace's shared
//! [`Interner`] at insert time.  The authoritative hot-path storage is
//! column-major: tuples of the same arity live in one [`ColumnGroup`] whose
//! `arity` parallel `Vec<u32>` columns the batch executor scans directly.
//! Membership, the functional-dependency index, and every secondary index
//! key on 64-bit FNV hashes of id projections ([`fnv_ids`]) — equality and
//! hashing on the hot path are integer ops, and index maintenance projects
//! id rows instead of cloning `Value`s per probe.  Bucket candidates are
//! verified against the exact id projection before they are returned, so a
//! hash collision can never surface a wrong tuple.
//!
//! Alongside the columns, each live tuple keeps one materialized
//! `Arc<Tuple>` row: the boundary representation handed to everything that
//! must see real `Value`s (the codec, signing, Merkle commitments, UDFs,
//! comparisons).  It is maintained at insert time, so boundary reads are
//! free and dictionary ids never leak out of the storage layer.
//!
//! A tuple's [`TupleId`] is stable for its lifetime; removed slots are
//! recycled.  Secondary indexes are built on demand (the planner requests
//! the signatures its probes need via [`Relation::ensure_index`]) and
//! maintained incrementally, so delta application and DRed see a consistent
//! view at all times.
//!
//! Concurrency contract (DESIGN.md §8): a `Relation` is `Send + Sync`, and
//! every read path ([`Relation::probe`], [`Relation::iter`],
//! [`Relation::select`], [`Relation::matches_any`],
//! [`Relation::functional_lookup`], [`Relation::tuple_by_id`],
//! [`Relation::group`]) takes `&self`, so the worker pool shares relations
//! across threads as read-only probe views.  All mutation — inserts,
//! removals, and [`Relation::ensure_index`] builds — is single-writer: the
//! evaluator thread builds the indexes a plan probes *before* handing
//! batches to workers and applies the merged derivation buffer *after* they
//! finish.

use crate::error::{DatalogError, Result};
use crate::intern::{fnv_ids, Interner, PassBuild};
use crate::value::{Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Stable identifier of a tuple inside one relation.
pub type TupleId = u32;

/// A bound-column signature: bit `i` set means column `i` is part of the
/// index key.  Relations wider than 64 columns are never indexed — the
/// planner's `probe_signature` falls back to scans for them (see
/// [`column_set`]).
pub type ColumnSet = u64;

/// Build a [`ColumnSet`] from column positions.
///
/// Positions ≥ 64 cannot be represented.  In debug builds this asserts —
/// silently dropping a position would build a *wrong* (too-coarse) index
/// key for a wide predicate.  In release builds the position is ignored,
/// which is safe for every in-tree caller because the planner's
/// `probe_signature` already refuses to plan probes on predicates wider
/// than 64 columns (they fall back to full scans).
pub fn column_set(columns: impl IntoIterator<Item = usize>) -> ColumnSet {
    let mut set = 0u64;
    for column in columns {
        debug_assert!(
            column < 64,
            "column position {column} does not fit a ColumnSet; \
             predicates wider than 64 columns must fall back to scans"
        );
        if column < 64 {
            set |= 1 << column;
        }
    }
    set
}

/// Sentinel arity marking a recycled slot.
const FREE_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Arity of the stored tuple, or [`FREE_SLOT`].
    arity: u32,
    /// Row position inside the tuple's [`ColumnGroup`].
    row: u32,
}

/// Column-major storage for all live tuples of one arity: `arity` parallel
/// id columns plus a back-pointer from each row to its stable [`TupleId`].
/// This is what the batch executor scans.
#[derive(Debug, Clone, Default)]
pub struct ColumnGroup {
    arity: usize,
    cols: Vec<Vec<u32>>,
    ids: Vec<TupleId>,
}

impl ColumnGroup {
    fn new(arity: usize) -> Self {
        ColumnGroup {
            arity,
            cols: (0..arity).map(|_| Vec::new()).collect(),
            ids: Vec::new(),
        }
    }

    /// The arity shared by every row of this group.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows.
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// The id column at position `col`.
    pub fn col(&self, col: usize) -> &[u32] {
        &self.cols[col]
    }

    /// Back-pointers: `tuple_ids()[row]` is the [`TupleId`] of row `row`.
    pub fn tuple_ids(&self) -> &[TupleId] {
        &self.ids
    }

    fn push(&mut self, ids: &[u32], tuple_id: TupleId) -> u32 {
        debug_assert_eq!(ids.len(), self.arity);
        for (col, &id) in self.cols.iter_mut().zip(ids) {
            col.push(id);
        }
        self.ids.push(tuple_id);
        (self.ids.len() - 1) as u32
    }

    /// Remove `row` by swapping the last row into its place; returns the
    /// [`TupleId`] of the moved row (if any) so the caller can fix its slot.
    fn swap_remove(&mut self, row: u32) -> Option<TupleId> {
        let row = row as usize;
        for col in &mut self.cols {
            col.swap_remove(row);
        }
        self.ids.swap_remove(row);
        self.ids.get(row).copied()
    }
}

/// A stored relation: the extension of one predicate inside a workspace.
#[derive(Debug)]
pub struct Relation {
    name: String,
    /// `Some(k)` if the predicate is functional with `k` key columns (the
    /// remaining single column is the dependent value).
    key_arity: Option<usize>,
    /// The value dictionary (shared workspace-wide via `Arc`).
    interner: Arc<Interner>,
    /// Materialized boundary rows, indexed by [`TupleId`]; recycled slots
    /// hold an empty tuple.
    rows: Vec<Arc<Tuple>>,
    /// Per-tuple location: arity + row inside that arity's group.
    slots: Vec<Slot>,
    /// Recyclable slots.
    free: Vec<TupleId>,
    /// Live tuple count.
    len: usize,
    /// Column-major id storage, one group per arity (linear scan: a
    /// relation in practice holds one or two arities).
    groups: Vec<ColumnGroup>,
    /// Membership: hash of (arity, id row) → candidate ids.
    live: HashMap<u64, Vec<TupleId>, PassBuild>,
    /// Functional predicates: hash of the key-id prefix → candidate ids.
    fd_index: HashMap<u64, Vec<TupleId>, PassBuild>,
    /// Secondary indexes: signature → (hash of id projection → ids).
    indexes: HashMap<ColumnSet, HashMap<u64, Vec<TupleId>, PassBuild>>,
    /// Bumped on every successful mutation (insert/remove/clear); lets the
    /// transaction delta scan skip relations that provably did not change.
    version: u64,
}

impl Default for Relation {
    fn default() -> Self {
        Relation::new("", None)
    }
}

/// Cloning preserves [`TupleId`]s, shares the interner and the `Arc`'d
/// boundary rows, and drops the secondary indexes: they are rebuildable
/// caches, and the clones the engine takes (transaction rollback snapshots,
/// DRed's pre-deletion view) should not pay for copying them.  All other
/// state is integer vectors and integer-keyed maps, so a clone is a flat
/// memcpy plus one refcount bump per tuple — no value is rehashed.
impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            name: self.name.clone(),
            key_arity: self.key_arity,
            interner: Arc::clone(&self.interner),
            rows: self.rows.clone(),
            slots: self.slots.clone(),
            free: self.free.clone(),
            len: self.len,
            groups: self.groups.clone(),
            live: self.live.clone(),
            fd_index: self.fd_index.clone(),
            indexes: HashMap::new(),
            version: self.version,
        }
    }
}

impl Relation {
    /// Create an empty relation with a private dictionary.  Inside a
    /// workspace use [`Relation::with_interner`] so every relation shares
    /// one dictionary and the batch executor can join in id space.
    pub fn new(name: impl Into<String>, key_arity: Option<usize>) -> Self {
        Relation::with_interner(name, key_arity, Arc::new(Interner::new()))
    }

    /// Create an empty relation sharing `interner`.
    pub fn with_interner(
        name: impl Into<String>,
        key_arity: Option<usize>,
        interner: Arc<Interner>,
    ) -> Self {
        Relation {
            name: name.into(),
            key_arity,
            interner,
            rows: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            groups: Vec::new(),
            live: HashMap::default(),
            fd_index: HashMap::default(),
            indexes: HashMap::new(),
            version: 0,
        }
    }

    /// The relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional key arity, if the predicate is functional.
    pub fn key_arity(&self) -> Option<usize> {
        self.key_arity
    }

    /// The value dictionary this relation encodes against.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Mutation counter: unchanged version ⇒ unchanged contents (the
    /// converse does not hold; a remove+reinsert bumps it twice).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column group for `arity`, if any tuple of that arity was ever
    /// inserted.  Rows removed from a group leave it in place (possibly
    /// empty).
    pub fn group(&self, arity: usize) -> Option<&ColumnGroup> {
        self.groups.iter().find(|group| group.arity == arity)
    }

    /// All column groups (the batch executor's scan entry point).
    pub fn column_groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    fn group_mut(&mut self, arity: usize) -> &mut ColumnGroup {
        if let Some(position) = self.groups.iter().position(|group| group.arity == arity) {
            &mut self.groups[position]
        } else {
            self.groups.push(ColumnGroup::new(arity));
            self.groups.last_mut().expect("just pushed")
        }
    }

    /// The id at column `col` of the live tuple `id`, or `None` when the
    /// tuple is shorter.
    fn row_id_at(&self, id: TupleId, col: usize) -> Option<u32> {
        let slot = self.slots[id as usize];
        debug_assert_ne!(slot.arity, FREE_SLOT);
        if col >= slot.arity as usize {
            return None;
        }
        let group = self.group(slot.arity as usize)?;
        Some(group.cols[col][slot.row as usize])
    }

    /// Gather the full id row of live tuple `id` into `out` (cleared first).
    pub fn row_ids(&self, id: TupleId, out: &mut Vec<u32>) {
        out.clear();
        let slot = self.slots[id as usize];
        debug_assert_ne!(slot.arity, FREE_SLOT);
        if let Some(group) = self.group(slot.arity as usize) {
            for col in &group.cols {
                out.push(col[slot.row as usize]);
            }
        }
    }

    fn row_hash(ids: &[u32]) -> u64 {
        fnv_ids(ids.len() as u64, ids.iter().copied())
    }

    /// Find the live tuple whose id row equals `ids`, verifying candidates.
    fn find_live(&self, ids: &[u32]) -> Option<TupleId> {
        let bucket = self.live.get(&Self::row_hash(ids))?;
        bucket
            .iter()
            .copied()
            .find(|&candidate| self.id_row_equals(candidate, ids))
    }

    fn id_row_equals(&self, id: TupleId, ids: &[u32]) -> bool {
        let slot = self.slots[id as usize];
        if slot.arity as usize != ids.len() {
            return false;
        }
        let Some(group) = self.group(slot.arity as usize) else {
            return false;
        };
        group
            .cols
            .iter()
            .zip(ids)
            .all(|(col, &want)| col[slot.row as usize] == want)
    }

    fn fd_hash(key_ids: &[u32]) -> u64 {
        // Seeded differently from row_hash so a functional predicate's key
        // and a full row never collide structurally.
        fnv_ids(0x5d, key_ids.iter().copied())
    }

    /// Find the functional row whose key-id prefix equals `key_ids`.
    fn find_fd(&self, key_ids: &[u32]) -> Option<TupleId> {
        let bucket = self.fd_index.get(&Self::fd_hash(key_ids))?;
        bucket.iter().copied().find(|&candidate| {
            key_ids
                .iter()
                .enumerate()
                .all(|(col, &want)| self.row_id_at(candidate, col) == Some(want))
        })
    }

    /// Hash of the projection of `ids` onto `cols`, or `None` when the row
    /// is too short to have every indexed column — such a row can never
    /// match a probe of that signature and is excluded from the index.
    fn project_hash(ids: &[u32], cols: ColumnSet) -> Option<u64> {
        if cols == 0 {
            return None;
        }
        let highest = 63 - cols.leading_zeros() as usize;
        if highest >= ids.len() {
            return None;
        }
        let mut mask = cols;
        Some(fnv_ids(
            cols,
            std::iter::from_fn(move || {
                if mask == 0 {
                    return None;
                }
                let position = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some(ids[position])
            }),
        ))
    }

    /// True when live tuple `id` projects onto `cols` exactly as `key_ids`.
    fn projection_matches(&self, id: TupleId, cols: ColumnSet, key_ids: &[u32]) -> bool {
        let mut mask = cols;
        for &want in key_ids {
            if mask == 0 {
                return false;
            }
            let position = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.row_id_at(id, position) != Some(want) {
                return false;
            }
        }
        mask == 0
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        let mut ids = Vec::with_capacity(tuple.len());
        self.interner.try_row(tuple, &mut ids) && self.find_live(&ids).is_some()
    }

    /// Iterate over all tuples in [`TupleId`]-stable group order — a
    /// deterministic function of the operation sequence applied to the
    /// relation (unlike the value-hash order of the previous row store).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.groups
            .iter()
            .flat_map(|group| group.ids.iter())
            .map(|&id| self.rows[id as usize].as_ref())
    }

    /// All tuples in a deterministic order (sorted by the total value order),
    /// for stable output and tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.iter().cloned().collect();
        out.sort_by(|a, b| crate::value::tuple_total_cmp(a, b));
        out
    }

    /// Insert a tuple.
    ///
    /// Returns `Ok(true)` if the tuple is new, `Ok(false)` if it was already
    /// present, and a [`DatalogError::FunctionalDependency`] error if the
    /// predicate is functional and the key already maps to a different value.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        let mut ids = Vec::with_capacity(tuple.len());
        self.interner.intern_row(&tuple, &mut ids);
        match self.check_insert_ids(&ids)? {
            None => Ok(false),
            Some(()) => {
                self.insert_row(Arc::new(tuple), &ids);
                Ok(true)
            }
        }
    }

    /// Insert a pre-encoded id row (the batch executor's insert path; the
    /// ids must come from this relation's own interner).  Identical
    /// semantics to [`Relation::insert`]; the boundary row is rehydrated
    /// once, only for genuinely new tuples.
    pub fn insert_ids(&mut self, ids: &[u32]) -> Result<bool> {
        match self.check_insert_ids(ids)? {
            None => Ok(false),
            Some(()) => {
                let tuple = self.interner.resolve_row(ids);
                self.insert_row(Arc::new(tuple), ids);
                Ok(true)
            }
        }
    }

    /// Shared admission check: `Ok(None)` = duplicate, `Ok(Some(()))` =
    /// insert may proceed, `Err` = functional-dependency violation.
    fn check_insert_ids(&self, ids: &[u32]) -> Result<Option<()>> {
        if let Some(key_arity) = self.key_arity {
            if ids.len() != key_arity + 1 {
                return Err(DatalogError::Eval(format!(
                    "functional predicate {} expects {} columns, got {}",
                    self.name,
                    key_arity + 1,
                    ids.len()
                )));
            }
            if let Some(existing_id) = self.find_fd(&ids[..key_arity]) {
                let existing_value = self.rows[existing_id as usize][key_arity].clone();
                if self.row_id_at(existing_id, key_arity) == Some(ids[key_arity]) {
                    return Ok(None);
                }
                return Err(DatalogError::FunctionalDependency {
                    predicate: self.name.clone(),
                    key: self.interner.resolve_row(&ids[..key_arity]),
                    existing: vec![existing_value],
                    attempted: vec![self.interner.value(ids[key_arity])],
                });
            }
            // A live duplicate always has a matching fd entry, so reaching
            // here means the row is new.
            debug_assert!(self.find_live(ids).is_none());
        } else if self.find_live(ids).is_some() {
            return Ok(None);
        }
        Ok(Some(()))
    }

    fn insert_row(&mut self, tuple: Arc<Tuple>, ids: &[u32]) {
        let id = match self.free.pop() {
            Some(id) => {
                self.rows[id as usize] = tuple;
                id
            }
            None => {
                let id = self.rows.len() as TupleId;
                self.rows.push(tuple);
                self.slots.push(Slot {
                    arity: FREE_SLOT,
                    row: 0,
                });
                id
            }
        };
        let row = self.group_mut(ids.len()).push(ids, id);
        self.slots[id as usize] = Slot {
            arity: ids.len() as u32,
            row,
        };
        self.live.entry(Self::row_hash(ids)).or_default().push(id);
        if let Some(key_arity) = self.key_arity {
            self.fd_index
                .entry(Self::fd_hash(&ids[..key_arity]))
                .or_default()
                .push(id);
        }
        for (&cols, index) in &mut self.indexes {
            if let Some(hash) = Self::project_hash(ids, cols) {
                index.entry(hash).or_default().push(id);
            }
        }
        self.len += 1;
        self.version += 1;
    }

    /// Insert a tuple for a functional predicate, replacing any existing
    /// value for the same key (used by aggregation recomputation, where a
    /// better aggregate legitimately supersedes the previous one).
    pub fn insert_or_replace(&mut self, tuple: Tuple) -> Result<bool> {
        self.insert_or_replace_returning(tuple)
            .map(|(inserted, _)| inserted)
    }

    /// [`Relation::insert_or_replace`], also returning the displaced tuple
    /// (if any) so callers keeping an undo journal can restore it on
    /// rollback.
    pub fn insert_or_replace_returning(&mut self, tuple: Tuple) -> Result<(bool, Option<Tuple>)> {
        let mut displaced = None;
        if let Some(key_arity) = self.key_arity {
            if tuple.len() == key_arity + 1 {
                let mut key_ids = Vec::with_capacity(key_arity);
                if self.interner.try_row(&tuple[..key_arity], &mut key_ids) {
                    if let Some(existing_id) = self.find_fd(&key_ids) {
                        if self.rows[existing_id as usize][key_arity] == tuple[key_arity] {
                            return Ok((false, None));
                        }
                        displaced = Some((*self.rows[existing_id as usize]).clone());
                        self.remove_by_id(existing_id);
                    }
                }
            }
        }
        self.insert(tuple).map(|inserted| (inserted, displaced))
    }

    /// Remove a tuple, returning whether it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let mut ids = Vec::with_capacity(tuple.len());
        if !self.interner.try_row(tuple, &mut ids) {
            return false;
        }
        let Some(id) = self.find_live(&ids) else {
            return false;
        };
        self.remove_found(id, &ids);
        true
    }

    fn remove_by_id(&mut self, id: TupleId) {
        let mut ids = Vec::new();
        self.row_ids(id, &mut ids);
        self.remove_found(id, &ids);
    }

    fn remove_found(&mut self, id: TupleId, ids: &[u32]) {
        let retain = |bucket: &mut Vec<TupleId>| bucket.retain(|&candidate| candidate != id);
        if let Some(bucket) = self.live.get_mut(&Self::row_hash(ids)) {
            retain(bucket);
            if bucket.is_empty() {
                self.live.remove(&Self::row_hash(ids));
            }
        }
        if let Some(key_arity) = self.key_arity {
            if ids.len() == key_arity + 1 {
                let hash = Self::fd_hash(&ids[..key_arity]);
                if let Some(bucket) = self.fd_index.get_mut(&hash) {
                    retain(bucket);
                    if bucket.is_empty() {
                        self.fd_index.remove(&hash);
                    }
                }
            }
        }
        for (&cols, index) in &mut self.indexes {
            if let Some(hash) = Self::project_hash(ids, cols) {
                if let Some(bucket) = index.get_mut(&hash) {
                    retain(bucket);
                    if bucket.is_empty() {
                        index.remove(&hash);
                    }
                }
            }
        }
        let slot = self.slots[id as usize];
        let position = self
            .groups
            .iter()
            .position(|group| group.arity == slot.arity as usize)
            .expect("live tuple has a group");
        if let Some(moved) = self.groups[position].swap_remove(slot.row) {
            self.slots[moved as usize].row = slot.row;
        }
        // Release the tuple's allocation now rather than when the slot is
        // recycled (retract-heavy workloads would otherwise pin the memory).
        self.rows[id as usize] = Arc::new(Tuple::new());
        self.slots[id as usize] = Slot {
            arity: FREE_SLOT,
            row: 0,
        };
        self.free.push(id);
        self.len -= 1;
        self.version += 1;
    }

    /// Remove all tuples (and drop every index).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.slots.clear();
        self.free.clear();
        self.len = 0;
        self.groups.clear();
        self.live.clear();
        self.fd_index.clear();
        self.indexes.clear();
        self.version += 1;
    }

    /// Look up the dependent value for `key` in a functional predicate.
    pub fn functional_lookup(&self, key: &[Value]) -> Option<&Value> {
        let key_arity = self.key_arity?;
        if key.len() != key_arity {
            return None;
        }
        let mut key_ids = Vec::with_capacity(key.len());
        if !self.interner.try_row(key, &mut key_ids) {
            return None;
        }
        let id = self.find_fd(&key_ids)?;
        Some(&self.rows[id as usize][key_arity])
    }

    /// The value of a zero-key functional predicate (`p[] = v`), if set.
    pub fn singleton_value(&self) -> Option<&Value> {
        if self.key_arity == Some(0) {
            self.functional_lookup(&[])
        } else {
            None
        }
    }

    /// Build the secondary index for `cols` if it does not exist yet.
    /// Returns `true` when an index was actually built.
    pub fn ensure_index(&mut self, cols: ColumnSet) -> bool {
        if cols == 0 || self.indexes.contains_key(&cols) {
            return false;
        }
        let mut index: HashMap<u64, Vec<TupleId>, PassBuild> = HashMap::default();
        let mut ids = Vec::new();
        for group in &self.groups {
            for row in 0..group.rows() {
                ids.clear();
                ids.extend(group.cols.iter().map(|col| col[row]));
                if let Some(hash) = Self::project_hash(&ids, cols) {
                    index.entry(hash).or_default().push(group.ids[row]);
                }
            }
        }
        self.indexes.insert(cols, index);
        true
    }

    /// True if an index exists for `cols`.
    pub fn has_index(&self, cols: ColumnSet) -> bool {
        self.indexes.contains_key(&cols)
    }

    /// Number of secondary indexes currently maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Probe the `cols` index for tuples whose projection equals `key`.
    /// Returns `None` when no such index exists (caller falls back to a
    /// scan); `Some(empty)` when the index exists but nothing matches.
    /// Candidates are verified, so the result is exact.
    pub fn probe(&self, cols: ColumnSet, key: &[Value]) -> Option<Vec<TupleId>> {
        let index = self.indexes.get(&cols)?;
        let mut key_ids = Vec::with_capacity(key.len());
        if !self.interner.try_row(key, &mut key_ids) {
            // Some key value exists in no relation sharing the dictionary:
            // a definitive miss.
            return Some(Vec::new());
        }
        let hash = fnv_ids(cols, key_ids.iter().copied());
        let Some(bucket) = index.get(&hash) else {
            return Some(Vec::new());
        };
        Some(
            bucket
                .iter()
                .copied()
                .filter(|&id| self.projection_matches(id, cols, &key_ids))
                .collect(),
        )
    }

    /// Probe the `cols` index with a pre-encoded id key.  Returns the raw
    /// bucket: candidates whose projection hash matches.  The batch
    /// executor verifies every constrained column against the candidate's
    /// id row anyway, which subsumes collision filtering — callers that do
    /// not must use [`Relation::probe`].
    pub fn probe_ids(&self, cols: ColumnSet, key_ids: &[u32]) -> Option<&[TupleId]> {
        let index = self.indexes.get(&cols)?;
        let hash = fnv_ids(cols, key_ids.iter().copied());
        Some(index.get(&hash).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// The secondary index for `cols` as its raw projection-hash map, for
    /// probe loops that resolve the index once per batch step and look up
    /// many precomputed [`fnv_ids`] hashes against it.  Buckets are
    /// collision-unfiltered — callers must re-verify candidates.
    pub fn index_map(&self, cols: ColumnSet) -> Option<&HashMap<u64, Vec<TupleId>, PassBuild>> {
        self.indexes.get(&cols)
    }

    /// The tuple stored under `id`.  Only ids obtained from [`Relation::probe`]
    /// against the current state are meaningful.
    pub fn tuple_by_id(&self, id: TupleId) -> &Tuple {
        self.rows[id as usize].as_ref()
    }

    /// The bound-column signature of a partial binding pattern, or 0 when
    /// the pattern is too wide to index (scan fallback).
    fn pattern_cols(pattern: &[Option<Value>]) -> ColumnSet {
        if pattern.len() > 64 {
            return 0;
        }
        column_set(
            pattern
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| i),
        )
    }

    fn matches_pattern(tuple: &[Value], pattern: &[Option<Value>]) -> bool {
        tuple.len() == pattern.len()
            && pattern
                .iter()
                .zip(tuple.iter())
                .all(|(p, v)| p.as_ref().is_none_or(|expected| expected == v))
    }

    /// Tuples matching a partial binding pattern: `pattern[i] = Some(v)`
    /// requires column `i` to equal `v`.  Uses an exact-signature secondary
    /// index when one exists.
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<&Tuple> {
        let cols = Self::pattern_cols(pattern);
        if cols != 0 {
            if let Some(ids) =
                self.probe(cols, &pattern.iter().flatten().cloned().collect::<Tuple>())
            {
                return ids
                    .into_iter()
                    .map(|id| self.tuple_by_id(id))
                    .filter(|tuple| tuple.len() == pattern.len())
                    .collect();
            }
        }
        self.iter()
            .filter(|tuple| Self::matches_pattern(tuple, pattern))
            .collect()
    }

    /// True if at least one tuple matches the partial binding pattern.
    pub fn matches_any(&self, pattern: &[Option<Value>]) -> bool {
        let cols = Self::pattern_cols(pattern);
        if cols != 0 {
            if let Some(ids) =
                self.probe(cols, &pattern.iter().flatten().cloned().collect::<Tuple>())
            {
                return ids
                    .into_iter()
                    .any(|id| self.tuple_by_id(id).len() == pattern.len());
            }
        }
        self.iter()
            .any(|tuple| Self::matches_pattern(tuple, pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[i64]) -> Tuple {
        values.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut rel = Relation::new("link", None);
        assert!(rel.insert(t(&[1, 2])).unwrap());
        assert!(!rel.insert(t(&[1, 2])).unwrap());
        assert!(rel.insert(t(&[2, 3])).unwrap());
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&t(&[1, 2])));
        assert!(!rel.contains(&t(&[3, 1])));
    }

    #[test]
    fn functional_dependency_enforced() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(!rel.insert(t(&[1, 2, 5])).unwrap());
        let err = rel.insert(t(&[1, 2, 7])).unwrap_err();
        assert!(matches!(err, DatalogError::FunctionalDependency { .. }));
        // Different key is fine.
        rel.insert(t(&[1, 3, 7])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(5)));
    }

    #[test]
    fn insert_or_replace_updates_value() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(3)));
        assert!(!rel.contains(&t(&[1, 2, 5])));
        assert!(!rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
    }

    #[test]
    fn singleton_value_access() {
        let mut rel = Relation::new("self", Some(0));
        assert!(rel.singleton_value().is_none());
        rel.insert(vec![Value::str("n1")]).unwrap();
        assert_eq!(rel.singleton_value(), Some(&Value::str("n1")));
        // A non-singleton relation never reports a singleton value.
        let rel2 = Relation::new("link", None);
        assert!(rel2.singleton_value().is_none());
    }

    #[test]
    fn remove_maintains_fd_index() {
        let mut rel = Relation::new("m", Some(1));
        rel.insert(t(&[1, 10])).unwrap();
        assert!(rel.remove(&t(&[1, 10])));
        assert!(!rel.remove(&t(&[1, 10])));
        // After removal the key can be remapped without a violation.
        rel.insert(t(&[1, 20])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1])), Some(&Value::Int(20)));
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let matches = rel.select(&[Some(Value::Int(1)), None]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, Some(Value::Int(3))]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, None]);
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut rel = Relation::new("edge", None);
        rel.insert(t(&[3, 1])).unwrap();
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[1, 1])).unwrap();
        assert_eq!(rel.sorted(), vec![t(&[1, 1]), t(&[1, 2]), t(&[3, 1])]);
    }

    #[test]
    fn arity_mismatch_rejected_for_functional() {
        let mut rel = Relation::new("f", Some(1));
        assert!(rel.insert(t(&[1])).is_err());
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3), (4, 1)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let cols = column_set([0]);
        assert!(rel.probe(cols, &t(&[1])).is_none(), "no index yet");
        assert!(rel.ensure_index(cols));
        assert!(!rel.ensure_index(cols), "second ensure is a no-op");
        let ids = rel.probe(cols, &t(&[1])).unwrap();
        let mut probed: Vec<Tuple> = ids.iter().map(|&id| rel.tuple_by_id(id).clone()).collect();
        probed.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(probed, vec![t(&[1, 2]), t(&[1, 3])]);
        assert_eq!(rel.probe(cols, &t(&[9])).unwrap().len(), 0);
    }

    #[test]
    fn index_maintained_across_insert_and_remove() {
        let mut rel = Relation::new("edge", None);
        let cols = column_set([1]);
        rel.ensure_index(cols);
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[3, 2])).unwrap();
        assert_eq!(rel.probe(cols, &t(&[2])).unwrap().len(), 2);
        assert!(rel.remove(&t(&[1, 2])));
        assert_eq!(rel.probe(cols, &t(&[2])).unwrap().len(), 1);
        // Recycled slot gets indexed correctly.
        rel.insert(t(&[5, 2])).unwrap();
        let ids = rel.probe(cols, &t(&[2])).unwrap();
        let mut values: Vec<Tuple> = ids.iter().map(|&id| rel.tuple_by_id(id).clone()).collect();
        values.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(values, vec![t(&[3, 2]), t(&[5, 2])]);
        rel.clear();
        assert_eq!(rel.index_count(), 0);
        assert!(rel.is_empty());
    }

    #[test]
    fn select_and_matches_any_use_index_when_present() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        rel.ensure_index(column_set([0]));
        assert_eq!(rel.select(&[Some(Value::Int(1)), None]).len(), 2);
        assert!(rel.matches_any(&[Some(Value::Int(2)), None]));
        assert!(!rel.matches_any(&[Some(Value::Int(9)), None]));
        // Mixed-arity tuples never match a different pattern arity.
        rel.insert(t(&[1, 2, 3])).unwrap();
        assert_eq!(rel.select(&[Some(Value::Int(1)), None]).len(), 2);
    }

    #[test]
    fn clone_drops_indexes_but_keeps_tuples() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        rel.ensure_index(column_set([0]));
        let cloned = rel.clone();
        assert_eq!(cloned.len(), 2);
        assert_eq!(cloned.index_count(), 0);
        assert!(cloned.contains(&t(&[1, 2])));
        assert_eq!(cloned.sorted(), rel.sorted());
        // The dictionary is shared, so id-space ops agree across clones.
        assert!(Arc::ptr_eq(rel.interner(), cloned.interner()));
        assert_eq!(cloned.version(), rel.version());
    }

    #[test]
    fn column_groups_expose_interned_columns() {
        let mut rel = Relation::new("edge", None);
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[1, 3])).unwrap();
        rel.insert(vec![Value::Int(9)]).unwrap();
        let group = rel.group(2).unwrap();
        assert_eq!(group.arity(), 2);
        assert_eq!(group.rows(), 2);
        // Column 0 holds the same interned id twice (both tuples start 1).
        assert_eq!(group.col(0)[0], group.col(0)[1]);
        assert_ne!(group.col(1)[0], group.col(1)[1]);
        // Back-pointers round-trip through the boundary rows.
        for (row, &id) in group.tuple_ids().iter().enumerate() {
            let mut ids = Vec::new();
            rel.row_ids(id, &mut ids);
            assert_eq!(ids, vec![group.col(0)[row], group.col(1)[row]]);
            assert_eq!(rel.tuple_by_id(id).len(), 2);
        }
        assert_eq!(rel.group(1).unwrap().rows(), 1);
        assert!(rel.group(3).is_none());
    }

    #[test]
    fn insert_ids_matches_value_insert() {
        let interner = Arc::new(Interner::new());
        let mut rel = Relation::with_interner("edge", None, Arc::clone(&interner));
        let mut ids = Vec::new();
        interner.intern_row(&t(&[4, 5]), &mut ids);
        assert!(rel.insert_ids(&ids).unwrap());
        assert!(!rel.insert_ids(&ids).unwrap(), "id insert dedups");
        assert!(!rel.insert(t(&[4, 5])).unwrap(), "value insert sees it");
        assert!(rel.contains(&t(&[4, 5])));
        assert_eq!(rel.sorted(), vec![t(&[4, 5])]);
        // Functional semantics are enforced on the id path too.
        let mut frel = Relation::with_interner("f", Some(1), Arc::clone(&interner));
        let mut row = Vec::new();
        interner.intern_row(&t(&[1, 10]), &mut row);
        assert!(frel.insert_ids(&row).unwrap());
        interner.intern_row(&t(&[1, 11]), &mut row);
        assert!(frel.insert_ids(&row).is_err());
    }

    #[test]
    fn probe_ids_returns_raw_candidates() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let cols = column_set([0]);
        assert!(rel.probe_ids(cols, &[0]).is_none(), "no index yet");
        rel.ensure_index(cols);
        let one = rel.interner().try_id(&Value::Int(1)).unwrap();
        let candidates = rel.probe_ids(cols, &[one]).unwrap();
        assert_eq!(candidates.len(), 2);
        for &id in candidates {
            assert_eq!(rel.tuple_by_id(id)[0], Value::Int(1));
        }
    }

    #[test]
    fn version_tracks_mutations_only() {
        let mut rel = Relation::new("edge", None);
        let v0 = rel.version();
        rel.insert(t(&[1, 2])).unwrap();
        let v1 = rel.version();
        assert_ne!(v0, v1);
        rel.insert(t(&[1, 2])).unwrap(); // duplicate: no change
        assert_eq!(rel.version(), v1);
        rel.ensure_index(column_set([0])); // cache build: no change
        assert_eq!(rel.version(), v1);
        assert!(rel.remove(&t(&[1, 2])));
        assert_ne!(rel.version(), v1);
    }

    #[test]
    fn relation_is_shareable_across_worker_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Relation>();
        // Concurrent read-only probe views over one relation.
        let mut rel = Relation::new("edge", None);
        let cols = column_set([0]);
        for i in 0..64 {
            rel.insert(t(&[i % 8, i])).unwrap();
        }
        rel.ensure_index(cols);
        let total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let rel = &rel;
                    scope.spawn(move || rel.probe(cols, &t(&[k])).map_or(0, |ids| ids.len()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 4 * 8);
    }

    #[test]
    fn column_set_builds_bitmasks() {
        assert_eq!(column_set([0, 2]), 0b101);
        assert_eq!(column_set([]), 0);
    }

    #[test]
    fn column_set_rejects_wide_positions() {
        // Positions ≥ 64 are a planner bug: loud in debug builds, a
        // documented ignore (scan fallback) in release builds.
        if cfg!(debug_assertions) {
            let result = std::panic::catch_unwind(|| column_set([70]));
            assert!(result.is_err());
        } else {
            assert_eq!(column_set([70]), 0);
        }
    }
}
