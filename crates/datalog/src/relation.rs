//! In-memory relation storage with functional-dependency enforcement and
//! lazily-built, incrementally-maintained secondary hash indexes.
//!
//! Tuples live in an arena (`Vec<Tuple>`) addressed by stable [`TupleId`]s; a
//! `live` map provides membership tests and id lookup.  A secondary index is
//! keyed by a *bound-column signature* — a bitmask of column positions — and
//! maps the projection of a tuple onto those columns to the ids of every live
//! tuple sharing that projection.  Indexes are built on demand (the planner
//! requests the signatures its probes need via [`Relation::ensure_index`])
//! and maintained incrementally: inserts append the new id to every existing
//! index, removals delete the id again, so delta application and DRed see a
//! consistent view at all times.
//!
//! Concurrency contract (DESIGN.md §8): a `Relation` is `Send + Sync`, and
//! every read path ([`Relation::probe`], [`Relation::iter`],
//! [`Relation::select`], [`Relation::matches_any`],
//! [`Relation::functional_lookup`], [`Relation::tuple_by_id`]) takes `&self`,
//! so the sharded worker pool shares relations across scoped threads as
//! read-only probe views.  All mutation — inserts, removals, and
//! [`Relation::ensure_index`] builds — is single-writer: the evaluator thread
//! builds the indexes a plan probes *before* spawning workers and applies the
//! merged derivation buffer *after* they join.  Tuples are `Arc`-shared, so
//! the views cost no copying.

use crate::error::{DatalogError, Result};
use crate::value::{Tuple, Value};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Stable identifier of a tuple inside one relation's arena.
pub type TupleId = u32;

/// A bound-column signature: bit `i` set means column `i` is part of the
/// index key.  Relations wider than 64 columns are never indexed (they fall
/// back to scans), which is far beyond any predicate the engine stores.
pub type ColumnSet = u64;

/// Build a [`ColumnSet`] from column positions.
pub fn column_set(columns: impl IntoIterator<Item = usize>) -> ColumnSet {
    let mut set = 0u64;
    for column in columns {
        if column < 64 {
            set |= 1 << column;
        }
    }
    set
}

/// Project `tuple` onto the columns of `cols` (ascending position order).
/// Returns `None` when the tuple is too short to have every indexed column —
/// such a tuple can never match a probe of that signature.
fn project(tuple: &[Value], cols: ColumnSet) -> Option<Tuple> {
    let mut key = Vec::with_capacity(cols.count_ones() as usize);
    for position in 0..64 {
        if cols & (1 << position) != 0 {
            key.push(tuple.get(position as usize)?.clone());
        }
    }
    Some(key)
}

/// A live tuple shared between the arena and the membership map: one heap
/// allocation per tuple regardless of how many structures reference it.
/// Hashing and equality delegate to the underlying value slice so the map
/// can be queried directly with `&[Value]`.
#[derive(Debug, Clone)]
struct SharedTuple(Arc<Tuple>);

impl Hash for SharedTuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.as_slice().hash(state)
    }
}

impl PartialEq for SharedTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_slice() == other.0.as_slice()
    }
}

impl Eq for SharedTuple {}

impl Borrow<[Value]> for SharedTuple {
    fn borrow(&self) -> &[Value] {
        self.0.as_slice()
    }
}

/// A stored relation: the extension of one predicate inside a workspace.
#[derive(Debug, Default)]
pub struct Relation {
    name: String,
    /// `Some(k)` if the predicate is functional with `k` key columns (the
    /// remaining single column is the dependent value).
    key_arity: Option<usize>,
    /// Tuple arena; slots of removed tuples are recycled via `free`.
    arena: Vec<Arc<Tuple>>,
    /// Live tuples: membership test and arena id lookup.
    live: HashMap<SharedTuple, TupleId>,
    /// Recyclable arena slots.
    free: Vec<TupleId>,
    /// Key → value index for functional predicates, used both for fast lookup
    /// and for detecting functional-dependency violations.
    fd_index: HashMap<Tuple, Value>,
    /// Secondary hash indexes by bound-column signature.
    indexes: HashMap<ColumnSet, HashMap<Tuple, Vec<TupleId>>>,
}

/// Cloning compacts the arena and drops the secondary indexes: they are
/// rebuildable caches, and the clones the engine takes (transaction rollback
/// snapshots, DRed's pre-deletion view) should not pay for copying them.
/// Tuples themselves are `Arc`-shared, so a clone costs two pointer copies
/// per tuple, not a deep copy.
impl Clone for Relation {
    fn clone(&self) -> Self {
        let mut arena = Vec::with_capacity(self.live.len());
        let mut live = HashMap::with_capacity(self.live.len());
        for key in self.live.keys() {
            let id = arena.len() as TupleId;
            arena.push(Arc::clone(&key.0));
            live.insert(key.clone(), id);
        }
        Relation {
            name: self.name.clone(),
            key_arity: self.key_arity,
            arena,
            live,
            free: Vec::new(),
            fd_index: self.fd_index.clone(),
            indexes: HashMap::new(),
        }
    }
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, key_arity: Option<usize>) -> Self {
        Relation {
            name: name.into(),
            key_arity,
            arena: Vec::new(),
            live: HashMap::new(),
            free: Vec::new(),
            fd_index: HashMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// The relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional key arity, if the predicate is functional.
    pub fn key_arity(&self) -> Option<usize> {
        self.key_arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.live.contains_key(tuple)
    }

    /// Iterate over all tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.live.keys().map(|key| key.0.as_ref())
    }

    /// All tuples in a deterministic order (sorted by the total value order),
    /// for stable output and tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.iter().cloned().collect();
        out.sort_by(|a, b| crate::value::tuple_total_cmp(a, b));
        out
    }

    /// Insert a tuple.
    ///
    /// Returns `Ok(true)` if the tuple is new, `Ok(false)` if it was already
    /// present, and a [`DatalogError::FunctionalDependency`] error if the
    /// predicate is functional and the key already maps to a different value.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if let Some(key_arity) = self.key_arity {
            if tuple.len() != key_arity + 1 {
                return Err(DatalogError::Eval(format!(
                    "functional predicate {} expects {} columns, got {}",
                    self.name,
                    key_arity + 1,
                    tuple.len()
                )));
            }
            let key: Tuple = tuple[..key_arity].to_vec();
            let value = tuple[key_arity].clone();
            if let Some(existing) = self.fd_index.get(&key) {
                if *existing == value {
                    return Ok(false);
                }
                let mut existing_row = key.clone();
                existing_row.push(existing.clone());
                return Err(DatalogError::FunctionalDependency {
                    predicate: self.name.clone(),
                    key,
                    existing: vec![existing_row[key_arity].clone()],
                    attempted: vec![value],
                });
            }
            self.fd_index.insert(key, value);
        }
        if self.live.contains_key(tuple.as_slice()) {
            return Ok(false);
        }
        let shared = Arc::new(tuple);
        let id = match self.free.pop() {
            Some(id) => {
                self.arena[id as usize] = Arc::clone(&shared);
                id
            }
            None => {
                let id = self.arena.len() as TupleId;
                self.arena.push(Arc::clone(&shared));
                id
            }
        };
        for (cols, index) in &mut self.indexes {
            if let Some(key) = project(&shared, *cols) {
                index.entry(key).or_default().push(id);
            }
        }
        self.live.insert(SharedTuple(shared), id);
        Ok(true)
    }

    /// Insert a tuple for a functional predicate, replacing any existing
    /// value for the same key (used by aggregation recomputation, where a
    /// better aggregate legitimately supersedes the previous one).
    pub fn insert_or_replace(&mut self, tuple: Tuple) -> Result<bool> {
        if let Some(key_arity) = self.key_arity {
            let key: Tuple = tuple[..key_arity].to_vec();
            if let Some(existing) = self.fd_index.get(&key).cloned() {
                if existing == tuple[key_arity] {
                    return Ok(false);
                }
                let mut old_row = key;
                old_row.push(existing);
                self.remove(&old_row);
            }
        }
        self.insert(tuple)
    }

    /// Remove a tuple, returning whether it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let Some(id) = self.live.remove(tuple) else {
            return false;
        };
        // Release the tuple's allocation now rather than when the slot is
        // recycled (retract-heavy workloads would otherwise pin the memory).
        self.arena[id as usize] = Arc::new(Tuple::new());
        self.free.push(id);
        for (cols, index) in &mut self.indexes {
            if let Some(key) = project(tuple, *cols) {
                if let Some(bucket) = index.get_mut(&key) {
                    bucket.retain(|&candidate| candidate != id);
                    if bucket.is_empty() {
                        index.remove(&key);
                    }
                }
            }
        }
        if let Some(key_arity) = self.key_arity {
            let key: Tuple = tuple[..key_arity].to_vec();
            self.fd_index.remove(&key);
        }
        true
    }

    /// Remove all tuples (and drop every index).
    pub fn clear(&mut self) {
        self.arena.clear();
        self.live.clear();
        self.free.clear();
        self.fd_index.clear();
        self.indexes.clear();
    }

    /// Look up the dependent value for `key` in a functional predicate.
    pub fn functional_lookup(&self, key: &[Value]) -> Option<&Value> {
        self.fd_index.get(key)
    }

    /// The value of a zero-key functional predicate (`p[] = v`), if set.
    pub fn singleton_value(&self) -> Option<&Value> {
        if self.key_arity == Some(0) {
            self.fd_index.get(&Vec::new() as &Tuple)
        } else {
            None
        }
    }

    /// Build the secondary index for `cols` if it does not exist yet.
    /// Returns `true` when an index was actually built.
    pub fn ensure_index(&mut self, cols: ColumnSet) -> bool {
        if cols == 0 || self.indexes.contains_key(&cols) {
            return false;
        }
        let mut index: HashMap<Tuple, Vec<TupleId>> = HashMap::new();
        for (tuple, &id) in &self.live {
            if let Some(key) = project(&tuple.0, cols) {
                index.entry(key).or_default().push(id);
            }
        }
        self.indexes.insert(cols, index);
        true
    }

    /// True if an index exists for `cols`.
    pub fn has_index(&self, cols: ColumnSet) -> bool {
        self.indexes.contains_key(&cols)
    }

    /// Number of secondary indexes currently maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Probe the `cols` index for tuples whose projection equals `key`.
    /// Returns `None` when no such index exists (caller falls back to a
    /// scan); `Some(&[])` when the index exists but nothing matches.
    pub fn probe(&self, cols: ColumnSet, key: &[Value]) -> Option<&[TupleId]> {
        let index = self.indexes.get(&cols)?;
        Some(index.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// The tuple stored under `id`.  Only ids obtained from [`Relation::probe`]
    /// against the current state are meaningful.
    pub fn tuple_by_id(&self, id: TupleId) -> &Tuple {
        self.arena[id as usize].as_ref()
    }

    /// The bound-column signature of a partial binding pattern.
    fn pattern_cols(pattern: &[Option<Value>]) -> ColumnSet {
        column_set(
            pattern
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| i),
        )
    }

    /// Tuples matching a partial binding pattern: `pattern[i] = Some(v)`
    /// requires column `i` to equal `v`.  Uses an exact-signature secondary
    /// index when one exists.
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<&Tuple> {
        let cols = Self::pattern_cols(pattern);
        if cols != 0 && pattern.len() <= 64 {
            if let Some(index) = self.indexes.get(&cols) {
                let key: Tuple = pattern.iter().flatten().cloned().collect();
                return index
                    .get(&key)
                    .map(|ids| {
                        ids.iter()
                            .map(|&id| self.tuple_by_id(id))
                            .filter(|tuple| tuple.len() == pattern.len())
                            .collect()
                    })
                    .unwrap_or_default();
            }
        }
        self.iter()
            .filter(|tuple| {
                tuple.len() == pattern.len()
                    && pattern
                        .iter()
                        .zip(tuple.iter())
                        .all(|(p, v)| p.as_ref().is_none_or(|expected| expected == v))
            })
            .collect()
    }

    /// True if at least one tuple matches the partial binding pattern.
    pub fn matches_any(&self, pattern: &[Option<Value>]) -> bool {
        let cols = Self::pattern_cols(pattern);
        if cols != 0 && pattern.len() <= 64 {
            if let Some(index) = self.indexes.get(&cols) {
                let key: Tuple = pattern.iter().flatten().cloned().collect();
                return index.get(&key).is_some_and(|ids| {
                    ids.iter()
                        .any(|&id| self.tuple_by_id(id).len() == pattern.len())
                });
            }
        }
        self.iter().any(|tuple| {
            tuple.len() == pattern.len()
                && pattern
                    .iter()
                    .zip(tuple.iter())
                    .all(|(p, v)| p.as_ref().is_none_or(|expected| expected == v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[i64]) -> Tuple {
        values.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut rel = Relation::new("link", None);
        assert!(rel.insert(t(&[1, 2])).unwrap());
        assert!(!rel.insert(t(&[1, 2])).unwrap());
        assert!(rel.insert(t(&[2, 3])).unwrap());
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&t(&[1, 2])));
        assert!(!rel.contains(&t(&[3, 1])));
    }

    #[test]
    fn functional_dependency_enforced() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(!rel.insert(t(&[1, 2, 5])).unwrap());
        let err = rel.insert(t(&[1, 2, 7])).unwrap_err();
        assert!(matches!(err, DatalogError::FunctionalDependency { .. }));
        // Different key is fine.
        rel.insert(t(&[1, 3, 7])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(5)));
    }

    #[test]
    fn insert_or_replace_updates_value() {
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(t(&[1, 2, 5])).unwrap();
        assert!(rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.functional_lookup(&t(&[1, 2])), Some(&Value::Int(3)));
        assert!(!rel.contains(&t(&[1, 2, 5])));
        assert!(!rel.insert_or_replace(t(&[1, 2, 3])).unwrap());
    }

    #[test]
    fn singleton_value_access() {
        let mut rel = Relation::new("self", Some(0));
        assert!(rel.singleton_value().is_none());
        rel.insert(vec![Value::str("n1")]).unwrap();
        assert_eq!(rel.singleton_value(), Some(&Value::str("n1")));
        // A non-singleton relation never reports a singleton value.
        let rel2 = Relation::new("link", None);
        assert!(rel2.singleton_value().is_none());
    }

    #[test]
    fn remove_maintains_fd_index() {
        let mut rel = Relation::new("m", Some(1));
        rel.insert(t(&[1, 10])).unwrap();
        assert!(rel.remove(&t(&[1, 10])));
        assert!(!rel.remove(&t(&[1, 10])));
        // After removal the key can be remapped without a violation.
        rel.insert(t(&[1, 20])).unwrap();
        assert_eq!(rel.functional_lookup(&t(&[1])), Some(&Value::Int(20)));
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let matches = rel.select(&[Some(Value::Int(1)), None]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, Some(Value::Int(3))]);
        assert_eq!(matches.len(), 2);
        let matches = rel.select(&[None, None]);
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut rel = Relation::new("edge", None);
        rel.insert(t(&[3, 1])).unwrap();
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[1, 1])).unwrap();
        assert_eq!(rel.sorted(), vec![t(&[1, 1]), t(&[1, 2]), t(&[3, 1])]);
    }

    #[test]
    fn arity_mismatch_rejected_for_functional() {
        let mut rel = Relation::new("f", Some(1));
        assert!(rel.insert(t(&[1])).is_err());
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3), (4, 1)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        let cols = column_set([0]);
        assert!(rel.probe(cols, &t(&[1])).is_none(), "no index yet");
        assert!(rel.ensure_index(cols));
        assert!(!rel.ensure_index(cols), "second ensure is a no-op");
        let ids = rel.probe(cols, &t(&[1])).unwrap();
        let mut probed: Vec<Tuple> = ids.iter().map(|&id| rel.tuple_by_id(id).clone()).collect();
        probed.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(probed, vec![t(&[1, 2]), t(&[1, 3])]);
        assert_eq!(rel.probe(cols, &t(&[9])).unwrap().len(), 0);
    }

    #[test]
    fn index_maintained_across_insert_and_remove() {
        let mut rel = Relation::new("edge", None);
        let cols = column_set([1]);
        rel.ensure_index(cols);
        rel.insert(t(&[1, 2])).unwrap();
        rel.insert(t(&[3, 2])).unwrap();
        assert_eq!(rel.probe(cols, &t(&[2])).unwrap().len(), 2);
        assert!(rel.remove(&t(&[1, 2])));
        assert_eq!(rel.probe(cols, &t(&[2])).unwrap().len(), 1);
        // Recycled arena slot gets indexed correctly.
        rel.insert(t(&[5, 2])).unwrap();
        let ids = rel.probe(cols, &t(&[2])).unwrap().to_vec();
        let mut values: Vec<Tuple> = ids.iter().map(|&id| rel.tuple_by_id(id).clone()).collect();
        values.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(values, vec![t(&[3, 2]), t(&[5, 2])]);
        rel.clear();
        assert_eq!(rel.index_count(), 0);
        assert!(rel.is_empty());
    }

    #[test]
    fn select_and_matches_any_use_index_when_present() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        rel.ensure_index(column_set([0]));
        assert_eq!(rel.select(&[Some(Value::Int(1)), None]).len(), 2);
        assert!(rel.matches_any(&[Some(Value::Int(2)), None]));
        assert!(!rel.matches_any(&[Some(Value::Int(9)), None]));
        // Mixed-arity tuples never match a different pattern arity.
        rel.insert(t(&[1, 2, 3])).unwrap();
        assert_eq!(rel.select(&[Some(Value::Int(1)), None]).len(), 2);
    }

    #[test]
    fn clone_drops_indexes_but_keeps_tuples() {
        let mut rel = Relation::new("edge", None);
        for (a, b) in [(1, 2), (2, 3)] {
            rel.insert(t(&[a, b])).unwrap();
        }
        rel.ensure_index(column_set([0]));
        let cloned = rel.clone();
        assert_eq!(cloned.len(), 2);
        assert_eq!(cloned.index_count(), 0);
        assert!(cloned.contains(&t(&[1, 2])));
        assert_eq!(cloned.sorted(), rel.sorted());
    }

    #[test]
    fn relation_is_shareable_across_worker_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Relation>();
        // Concurrent read-only probe views over one relation.
        let mut rel = Relation::new("edge", None);
        let cols = column_set([0]);
        for i in 0..64 {
            rel.insert(t(&[i % 8, i])).unwrap();
        }
        rel.ensure_index(cols);
        let total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let rel = &rel;
                    scope.spawn(move || rel.probe(cols, &t(&[k])).map_or(0, <[u32]>::len))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 4 * 8);
    }

    #[test]
    fn column_set_builds_bitmasks() {
        assert_eq!(column_set([0, 2]), 0b101);
        assert_eq!(column_set([]), 0);
        // Out-of-range columns are ignored rather than overflowing.
        assert_eq!(column_set([70]), 0);
    }
}
