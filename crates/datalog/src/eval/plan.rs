//! Per-rule compilation: cost-based literal ordering, probe signatures, and
//! cached plans.
//!
//! The evaluator historically executed rule bodies as a nested-loop join in
//! textual literal order, scanning every stored relation in full.  This
//! module turns evaluation into compile-then-execute:
//!
//! * [`compile_body_plan`] greedily orders a body's stored-relation
//!   literals by estimated selectivity (bound-column count × relation
//!   cardinality), pinning the delta-restricted literal first for semi-naïve
//!   passes (unless pinning it would pre-bind a variable a pending negation,
//!   UDF, or type check textually saw unbound, in which case the delta
//!   literal runs at the earliest semantics-preserving point instead).
//!   Comparisons are *hoisted* to the earliest point at which they
//!   are evaluable — so `Var = ground-term` assignments run before the
//!   literals they make selective, independent of textual position — while
//!   negations, UDF calls, and built-in type checks are scheduled exactly
//!   when the variables they textually consumed are bound (and no variable
//!   they textually saw unbound has been bound yet), preserving the original
//!   semantics.
//! * Each planned stored-relation literal carries the bound-column signature
//!   its probe will use; the plan lists the secondary indexes the executor
//!   must [`crate::relation::Relation::ensure_index`] before joining.
//! * [`PlanCache`] memoizes compiled plans per [`PlanKey`] — rule bodies and
//!   constraint sides share the cache — and
//!   recompiles only when the body relations' cardinalities drift past a
//!   threshold, so steady-state evaluation pays no planning cost.
//! * [`PlanStats`] counts compilations, cache hits, index builds, probes and
//!   scans; the runtime layer aggregates these per deployment for the bench
//!   harness.

use super::runtime_pred_name;
use crate::ast::{Atom, CmpOp, Literal, Term};
use crate::relation::{column_set, ColumnSet, Relation};
use crate::schema::BUILTIN_TYPES;
use crate::udf::UdfRegistry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Selectivity credited to each statically bound column when estimating the
/// cost of scheduling a stored-relation literal next.
const BOUND_COLUMN_SELECTIVITY: f64 = 0.2;

/// Cardinality drift factor beyond which a cached plan is recompiled.
const RECOMPILE_DRIFT_FACTOR: usize = 4;

/// Absolute slack added to both sides of the drift comparison so tiny
/// relations do not thrash the cache while they grow from 0 to a few tuples.
const RECOMPILE_DRIFT_SLACK: usize = 16;

/// One scheduled body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index into the rule body.
    pub literal: usize,
    /// For stored-relation literals: the bound-column signature the executor
    /// should probe with (`None` → scan, delta restriction, or a literal kind
    /// that never probes).
    pub probe: Option<ColumnSet>,
}

/// A secondary index the executor must ensure before running the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    pub pred: String,
    pub cols: ColumnSet,
}

/// A compiled execution plan for one rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Body literals in execution order.
    pub order: Vec<PlanStep>,
    /// Indexes to build before executing.
    pub ensure: Vec<IndexSpec>,
    /// Cardinalities of the body's stored relations at compile time, for the
    /// recompile-on-drift policy.
    pub cardinalities: Vec<(String, usize)>,
}

impl RulePlan {
    /// The trivial textual-order plan (no probes).  Used for rules the
    /// planner cannot analyze (meta-level predicate references) and by the
    /// naive evaluation mode.
    pub fn textual(body_len: usize) -> RulePlan {
        RulePlan {
            order: (0..body_len)
                .map(|literal| PlanStep {
                    literal,
                    probe: None,
                })
                .collect(),
            ensure: Vec::new(),
            cardinalities: Vec::new(),
        }
    }
}

/// Counters describing planner and index behaviour.  Shared immutably with
/// the join executor, hence the atomics (`Relaxed` throughout — these are
/// statistics, not synchronization).
#[derive(Debug, Default)]
pub struct PlanStats {
    pub plans_compiled: AtomicU64,
    pub plan_cache_hits: AtomicU64,
    pub plan_recompiles: AtomicU64,
    pub index_builds: AtomicU64,
    pub index_probes: AtomicU64,
    pub full_scans: AtomicU64,
    pub functional_hits: AtomicU64,
    /// Rule / aggregate executions that took the sharded worker-pool path.
    pub parallel_batches: AtomicU64,
    /// Rule / aggregate executions that ran serially (single worker
    /// configured, driving set under the threshold, or an order-sensitive
    /// rule such as one with head existentials).
    pub serial_batches: AtomicU64,
    /// Non-empty shards executed by workers (≤ `parallel_batches × workers`;
    /// the ratio is the deployment's worker utilization).
    pub shards_executed: AtomicU64,
}

impl PlanStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> PlanStatsSnapshot {
        PlanStatsSnapshot {
            plans_compiled: self.plans_compiled.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_recompiles: self.plan_recompiles.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            functional_hits: self.functional_hits.load(Ordering::Relaxed),
            parallel_batches: self.parallel_batches.load(Ordering::Relaxed),
            serial_batches: self.serial_batches.load(Ordering::Relaxed),
            shards_executed: self.shards_executed.load(Ordering::Relaxed),
        }
    }
}

impl Clone for PlanStats {
    fn clone(&self) -> Self {
        let snapshot = self.snapshot();
        PlanStats {
            plans_compiled: AtomicU64::new(snapshot.plans_compiled),
            plan_cache_hits: AtomicU64::new(snapshot.plan_cache_hits),
            plan_recompiles: AtomicU64::new(snapshot.plan_recompiles),
            index_builds: AtomicU64::new(snapshot.index_builds),
            index_probes: AtomicU64::new(snapshot.index_probes),
            full_scans: AtomicU64::new(snapshot.full_scans),
            functional_hits: AtomicU64::new(snapshot.functional_hits),
            parallel_batches: AtomicU64::new(snapshot.parallel_batches),
            serial_batches: AtomicU64::new(snapshot.serial_batches),
            shards_executed: AtomicU64::new(snapshot.shards_executed),
        }
    }
}

/// Plain-value counters, summable across workspaces (one per deployment
/// node), in the same spirit as `secureblox-net`'s traffic stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStatsSnapshot {
    pub plans_compiled: u64,
    pub plan_cache_hits: u64,
    pub plan_recompiles: u64,
    pub index_builds: u64,
    pub index_probes: u64,
    pub full_scans: u64,
    pub functional_hits: u64,
    pub parallel_batches: u64,
    pub serial_batches: u64,
    pub shards_executed: u64,
}

impl PlanStatsSnapshot {
    /// Fraction of the configured worker pool kept busy across parallel
    /// batches: `shards_executed / (parallel_batches × workers)`.  `0.0`
    /// when nothing went parallel.
    pub fn worker_utilization(&self, workers: usize) -> f64 {
        if self.parallel_batches == 0 || workers == 0 {
            return 0.0;
        }
        self.shards_executed as f64 / (self.parallel_batches * workers as u64) as f64
    }

    /// Publish this snapshot into the global telemetry registry as
    /// `datalog_plan_stats_*` gauges, so exporters see the same numbers this
    /// struct reports.  The snapshot (summed across a deployment's
    /// workspaces) remains the API of record; the gauges are a view.
    pub fn publish_to_registry(&self) {
        use secureblox_telemetry::gauge;
        gauge!("datalog_plan_stats_plans_compiled").set(self.plans_compiled as i64);
        gauge!("datalog_plan_stats_plan_cache_hits").set(self.plan_cache_hits as i64);
        gauge!("datalog_plan_stats_plan_recompiles").set(self.plan_recompiles as i64);
        gauge!("datalog_plan_stats_index_builds").set(self.index_builds as i64);
        gauge!("datalog_plan_stats_index_probes").set(self.index_probes as i64);
        gauge!("datalog_plan_stats_full_scans").set(self.full_scans as i64);
        gauge!("datalog_plan_stats_functional_hits").set(self.functional_hits as i64);
        gauge!("datalog_plan_stats_parallel_batches").set(self.parallel_batches as i64);
        gauge!("datalog_plan_stats_serial_batches").set(self.serial_batches as i64);
        gauge!("datalog_plan_stats_shards_executed").set(self.shards_executed as i64);
    }
}

impl std::ops::Add for PlanStatsSnapshot {
    type Output = PlanStatsSnapshot;
    fn add(self, other: PlanStatsSnapshot) -> PlanStatsSnapshot {
        PlanStatsSnapshot {
            plans_compiled: self.plans_compiled + other.plans_compiled,
            plan_cache_hits: self.plan_cache_hits + other.plan_cache_hits,
            plan_recompiles: self.plan_recompiles + other.plan_recompiles,
            index_builds: self.index_builds + other.index_builds,
            index_probes: self.index_probes + other.index_probes,
            full_scans: self.full_scans + other.full_scans,
            functional_hits: self.functional_hits + other.functional_hits,
            parallel_batches: self.parallel_batches + other.parallel_batches,
            serial_batches: self.serial_batches + other.serial_batches,
            shards_executed: self.shards_executed + other.shards_executed,
        }
    }
}

impl std::ops::AddAssign for PlanStatsSnapshot {
    fn add_assign(&mut self, other: PlanStatsSnapshot) {
        *self = *self + other;
    }
}

/// Identity of a compiled plan in the cache.  Rule bodies and constraint
/// sides share one cache (and one recompile-on-drift policy): constraint
/// checking runs through the same cost-based planner as rule evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKey {
    /// An installed rule's body, optionally with a delta-pinned literal.
    Rule { rule: usize, delta: Option<usize> },
    /// The left-hand side of an installed constraint, optionally with the
    /// delta-pinned literal of an incremental check.
    ConstraintLhs {
        constraint: usize,
        delta: Option<usize>,
    },
    /// The right-hand side of an installed constraint (always checked from
    /// the lhs bindings; never delta-restricted).
    ConstraintRhs { constraint: usize },
}

impl PlanKey {
    fn delta_literal(self) -> Option<usize> {
        match self {
            PlanKey::Rule { delta, .. } | PlanKey::ConstraintLhs { delta, .. } => delta,
            PlanKey::ConstraintRhs { .. } => None,
        }
    }
}

/// Memoized plans per [`PlanKey`] with recompile-on-drift.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    plans: HashMap<PlanKey, RulePlan>,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Drop every cached plan (installed rules changed).
    pub fn clear(&mut self) {
        self.plans.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Fetch (or compile) the plan for `body` under `key`.  Returns a clone
    /// so the caller can mutate relations (index ensures) while holding it.
    pub fn plan_for(
        &mut self,
        key: PlanKey,
        body: &[Literal],
        relations: &HashMap<String, Relation>,
        udfs: &UdfRegistry,
        stats: &PlanStats,
    ) -> RulePlan {
        if let Some(plan) = self.plans.get(&key) {
            if !cardinalities_drifted(&plan.cardinalities, relations) {
                PlanStats::bump(&stats.plan_cache_hits);
                secureblox_telemetry::counter!("datalog_plan_cache_hits_total").inc();
                return plan.clone();
            }
            PlanStats::bump(&stats.plan_recompiles);
            secureblox_telemetry::counter!("datalog_plan_recompiles_total").inc();
        } else {
            PlanStats::bump(&stats.plans_compiled);
            secureblox_telemetry::counter!("datalog_plans_compiled_total").inc();
        }
        let timer = secureblox_telemetry::histogram!("datalog_plan_compile_ns").start_timer();
        let plan = compile_body_plan(body, key.delta_literal(), relations, udfs);
        drop(timer);
        self.plans.insert(key, plan.clone());
        plan
    }
}

fn cardinalities_drifted(
    snapshot: &[(String, usize)],
    relations: &HashMap<String, Relation>,
) -> bool {
    snapshot.iter().any(|(pred, then)| {
        let now = relations.get(pred).map_or(0, Relation::len);
        let (small, large) = if now < *then {
            (now, *then)
        } else {
            (*then, now)
        };
        large + RECOMPILE_DRIFT_SLACK > RECOMPILE_DRIFT_FACTOR * (small + RECOMPILE_DRIFT_SLACK)
    })
}

/// How the planner treats each body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LitKind {
    /// Positive atom over a stored relation: reorderable, probe-able.
    Stored { pred: String },
    /// Positive atom over a built-in type check (`int(X)`, …).
    TypeCheck,
    /// Positive atom over a user-defined function.
    Udf,
    /// Negated atom.
    Neg,
    /// Comparison (filter or assignment).
    Cmp,
}

/// Is `term` statically ground given the currently bound variables?
fn term_ground(term: &Term, bound: &HashSet<String>) -> bool {
    match term {
        Term::Var(v) => bound.contains(v),
        Term::Const(_) | Term::SingletonRef(_) => true,
        Term::Wildcard | Term::VarSeq(_) => false,
        Term::BinOp(l, _, r) => term_ground(l, bound) && term_ground(r, bound),
    }
}

fn literal_vars(literal: &Literal) -> Vec<String> {
    let mut vars = Vec::new();
    literal.collect_vars(&mut vars);
    vars
}

/// The variables a literal makes bound once executed under textual
/// evaluation (approximation used for the readiness analysis).
fn binds(literal: &Literal, kind: &LitKind, bound: &HashSet<String>) -> Vec<String> {
    match kind {
        LitKind::Stored { .. } | LitKind::Udf => literal_vars(literal),
        LitKind::TypeCheck | LitKind::Neg => Vec::new(),
        LitKind::Cmp => {
            let Literal::Cmp(lhs, op, rhs) = literal else {
                return Vec::new();
            };
            if *op != CmpOp::Eq {
                return Vec::new();
            }
            match (lhs, rhs) {
                (Term::Var(v), other) if !bound.contains(v) && term_ground(other, bound) => {
                    vec![v.clone()]
                }
                (other, Term::Var(v)) if !bound.contains(v) && term_ground(other, bound) => {
                    vec![v.clone()]
                }
                _ => Vec::new(),
            }
        }
    }
}

/// Is the comparison evaluable right now (fully ground filter, or an
/// assignment whose ground side is evaluable)?
fn cmp_ready(lhs: &Term, op: CmpOp, rhs: &Term, bound: &HashSet<String>) -> bool {
    if term_ground(lhs, bound) && term_ground(rhs, bound) {
        return true;
    }
    if op != CmpOp::Eq {
        return false;
    }
    matches!((lhs, rhs),
        (Term::Var(v), other) if !bound.contains(v) && term_ground(other, bound))
        || matches!((lhs, rhs),
        (other, Term::Var(v)) if !bound.contains(v) && term_ground(other, bound))
}

/// The bound-column signature of `atom` given the bound variable set: bit `i`
/// is set when argument `i` is statically evaluable to a ground value.
fn probe_signature(atom: &Atom, bound: &HashSet<String>) -> ColumnSet {
    if atom.terms.len() > 64 {
        return 0;
    }
    column_set(
        atom.terms
            .iter()
            .enumerate()
            .filter(|(_, term)| term_ground(term, bound))
            .map(|(i, _)| i),
    )
}

/// Estimated cost of scheduling a stored-relation literal next.
fn literal_cost(
    atom: &Atom,
    pred: &str,
    bound: &HashSet<String>,
    relations: &HashMap<String, Relation>,
) -> f64 {
    let relation = relations.get(pred);
    let cardinality = relation.map_or(0, Relation::len);
    // Functional fast path: all key columns ground → at most one tuple.
    if let Some(key_arity) = relation.and_then(Relation::key_arity) {
        if atom.terms.len() == key_arity + 1
            && atom.terms[..key_arity]
                .iter()
                .all(|term| term_ground(term, bound))
        {
            return 0.5;
        }
    }
    let bound_cols = probe_signature(atom, bound).count_ones();
    scan_cost(cardinality, bound_cols as usize)
}

/// The planner's selectivity model: cost of scanning `cardinality` rows with
/// `bound_cols` columns already bound.  Exposed for the exchange planner
/// ([`super::shuffle`]), whose shuffle-vs-broadcast movement costs must use
/// the same units as local scheduling costs.
pub fn scan_cost(cardinality: usize, bound_cols: usize) -> f64 {
    (cardinality as f64) * BOUND_COLUMN_SELECTIVITY.powi(bound_cols as i32)
}

/// Compile an execution plan for a literal sequence (a rule body, or one
/// side of a constraint).
///
/// `delta_literal` names the body literal restricted to a delta set in a
/// semi-naïve pass; it is pinned to run first among the stored-relation
/// literals (delta sets are small, so driving the join off them maximizes
/// selectivity).
pub fn compile_body_plan(
    body: &[Literal],
    delta_literal: Option<usize>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
) -> RulePlan {
    let n = body.len();

    // Classify literals; bail to textual order on meta-level predicates.
    let mut kinds: Vec<LitKind> = Vec::with_capacity(n);
    for literal in body {
        let kind = match literal {
            Literal::Cmp(..) => LitKind::Cmp,
            Literal::Neg(_) => LitKind::Neg,
            Literal::Pos(atom) => {
                let Ok(pred) = runtime_pred_name(&atom.pred) else {
                    return RulePlan::textual(n);
                };
                if BUILTIN_TYPES.contains(&pred.as_str()) && atom.terms.len() == 1 {
                    LitKind::TypeCheck
                } else if udfs.is_udf(&pred) {
                    LitKind::Udf
                } else {
                    LitKind::Stored { pred }
                }
            }
        };
        kinds.push(kind);
    }

    // Textual forward pass: record, for each pinned-kind literal (negation,
    // type check, UDF), which of its variables textual evaluation would see
    // bound.  The planner schedules those literals at exactly that degree of
    // boundness to preserve semantics.
    let mut req: Vec<HashSet<String>> = Vec::with_capacity(n);
    {
        let mut bound: HashSet<String> = HashSet::new();
        for (literal, kind) in body.iter().zip(&kinds) {
            let vars = literal_vars(literal);
            req.push(
                vars.iter()
                    .filter(|v| bound.contains(*v))
                    .cloned()
                    .collect(),
            );
            for var in binds(literal, kind, &bound) {
                bound.insert(var);
            }
        }
    }
    // Frozen variables of a pending pinned literal: variables it textually
    // saw *unbound*.  Binding them before the literal runs would change its
    // meaning (e.g. `!p(X, Z)` with Z textually unbound means "no p(X, _)").
    let frozen: Vec<HashSet<String>> = body
        .iter()
        .zip(&req)
        .map(|(literal, req)| {
            literal_vars(literal)
                .into_iter()
                .filter(|v| !req.contains(v))
                .collect()
        })
        .collect();

    let mut bound: HashSet<String> = HashSet::new();
    let mut scheduled = vec![false; n];
    let mut order: Vec<PlanStep> = Vec::with_capacity(n);
    let mut ensure: Vec<IndexSpec> = Vec::new();

    let schedule = |index: usize,
                    bound: &mut HashSet<String>,
                    scheduled: &mut Vec<bool>,
                    order: &mut Vec<PlanStep>,
                    ensure: &mut Vec<IndexSpec>| {
        let mut probe = None;
        if let LitKind::Stored { pred } = &kinds[index] {
            let Literal::Pos(atom) = &body[index] else {
                unreachable!("stored literal is positive");
            };
            if delta_literal != Some(index) {
                let cols = probe_signature(atom, bound);
                // Skip the probe when the functional fast path already covers
                // the lookup (all key columns ground).
                let functional_covers = relations
                    .get(pred)
                    .and_then(Relation::key_arity)
                    .is_some_and(|k| {
                        atom.terms.len() == k + 1
                            && atom.terms[..k].iter().all(|t| term_ground(t, bound))
                    });
                if cols != 0 && !functional_covers {
                    probe = Some(cols);
                    let spec = IndexSpec {
                        pred: pred.clone(),
                        cols,
                    };
                    if !ensure.contains(&spec) {
                        ensure.push(spec);
                    }
                }
            }
        }
        if let LitKind::Neg = &kinds[index] {
            // Pre-declare the index the negation's pattern will use so the
            // executor can probe instead of scanning.
            if let Literal::Neg(atom) = &body[index] {
                if let Ok(pred) = runtime_pred_name(&atom.pred) {
                    let cols = probe_signature(atom, bound);
                    if cols != 0 {
                        let spec = IndexSpec { pred, cols };
                        if !ensure.contains(&spec) {
                            ensure.push(spec);
                        }
                    }
                }
            }
        }
        for var in binds(&body[index], &kinds[index], bound) {
            bound.insert(var);
        }
        scheduled[index] = true;
        order.push(PlanStep {
            literal: index,
            probe,
        });
    };

    // The single frozen-variable invariant, used by every scheduling path:
    // literal `index` must not be scheduled while it would newly bind a
    // variable that some *other* pending pinned literal textually saw
    // unbound — doing so would collapse ∄-over-unbound negation or turn an
    // enumerating UDF call into a membership check.
    let binds_frozen_of_pending =
        |index: usize, bound: &HashSet<String>, scheduled: &[bool]| -> bool {
            binds(&body[index], &kinds[index], bound)
                .iter()
                .filter(|v| !bound.contains(*v))
                .any(|v| {
                    (0..n).any(|f| {
                        f != index
                            && !scheduled[f]
                            && matches!(kinds[f], LitKind::Neg | LitKind::TypeCheck | LitKind::Udf)
                            && frozen[f].contains(v)
                    })
                })
        };

    while order.len() < n {
        // 1. Eagerly schedule every ready floating literal, in textual order,
        //    repeating until quiescent (an assignment can ready another).
        loop {
            let mut progress = false;
            for index in 0..n {
                if scheduled[index] {
                    continue;
                }
                let ready = match &kinds[index] {
                    LitKind::Cmp => {
                        let Literal::Cmp(lhs, op, rhs) = &body[index] else {
                            unreachable!()
                        };
                        cmp_ready(lhs, *op, rhs, &bound)
                            && !binds_frozen_of_pending(index, &bound, &scheduled)
                    }
                    LitKind::Neg | LitKind::TypeCheck => {
                        req[index].iter().all(|v| bound.contains(v))
                    }
                    LitKind::Udf => {
                        req[index].iter().all(|v| bound.contains(v))
                            && !binds_frozen_of_pending(index, &bound, &scheduled)
                    }
                    LitKind::Stored { .. } => false,
                };
                if ready {
                    schedule(index, &mut bound, &mut scheduled, &mut order, &mut ensure);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        if order.len() == n {
            break;
        }

        // 2. Pick the next stored-relation literal: the delta literal first
        //    (when pinning it would not pre-bind a frozen variable of a
        //    pending pinned literal), otherwise the cheapest unblocked
        //    candidate — with the delta literal preferred as soon as it
        //    unblocks.
        let blocked = |i: usize| binds_frozen_of_pending(i, &bound, &scheduled);
        let candidates: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && matches!(kinds[i], LitKind::Stored { .. }))
            .collect();
        let delta_candidate =
            delta_literal.filter(|&d| !scheduled[d] && matches!(kinds[d], LitKind::Stored { .. }));
        let choice = match delta_candidate {
            Some(d) if !blocked(d) => Some(d),
            _ => {
                let unblocked: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| !blocked(i))
                    .collect();
                let pool = if unblocked.is_empty() {
                    &candidates
                } else {
                    &unblocked
                };
                pool.iter().copied().min_by(|&a, &b| {
                    let (LitKind::Stored { pred: pa }, LitKind::Stored { pred: pb }) =
                        (&kinds[a], &kinds[b])
                    else {
                        unreachable!()
                    };
                    let (Literal::Pos(atom_a), Literal::Pos(atom_b)) = (&body[a], &body[b]) else {
                        unreachable!()
                    };
                    // Delta sets are the most selective input: prefer the
                    // delta literal the moment it is legal to schedule.
                    let cost = |i: usize, atom: &Atom, pred: &str| {
                        if delta_candidate == Some(i) {
                            -1.0
                        } else {
                            literal_cost(atom, pred, &bound, relations)
                        }
                    };
                    cost(a, atom_a, pa)
                        .total_cmp(&cost(b, atom_b, pb))
                        .then(a.cmp(&b))
                })
            }
        };
        match choice {
            Some(index) => schedule(index, &mut bound, &mut scheduled, &mut order, &mut ensure),
            None => {
                // No stored literal left and the remaining floating literals
                // never become ready (their variables are never bound):
                // schedule them in textual order so runtime behaviour (error
                // or empty branch) matches the naive evaluator.
                for index in 0..n {
                    if !scheduled[index] {
                        schedule(index, &mut bound, &mut scheduled, &mut order, &mut ensure);
                    }
                }
            }
        }
    }

    let mut cardinalities: Vec<(String, usize)> = Vec::new();
    for kind in &kinds {
        if let LitKind::Stored { pred } = kind {
            if !cardinalities.iter().any(|(p, _)| p == pred) {
                cardinalities.push((pred.clone(), relations.get(pred).map_or(0, Relation::len)));
            }
        }
    }

    RulePlan {
        order,
        ensure,
        cardinalities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::value::Value;

    fn relations_with(cards: &[(&str, usize)]) -> HashMap<String, Relation> {
        let mut relations = HashMap::new();
        for (pred, n) in cards {
            let mut rel = Relation::new(*pred, None);
            for i in 0..*n {
                rel.insert(vec![Value::Int(i as i64), Value::Int(i as i64 + 1)])
                    .unwrap();
            }
            relations.insert(pred.to_string(), rel);
        }
        relations
    }

    fn order_of(plan: &RulePlan) -> Vec<usize> {
        plan.order.iter().map(|s| s.literal).collect()
    }

    #[test]
    fn smallest_relation_drives_the_join() {
        let relations = relations_with(&[("big", 1000), ("small", 3)]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X, Z) <- big(X, Y), small(Y, Z).").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        assert_eq!(order_of(&plan), vec![1, 0]);
        // The second literal probes on its bound column (Y = column 1 of big).
        assert_eq!(plan.order[1].probe, Some(column_set([1])));
        assert!(plan.ensure.contains(&IndexSpec {
            pred: "big".into(),
            cols: column_set([1])
        }));
    }

    #[test]
    fn delta_literal_is_pinned_first() {
        let relations = relations_with(&[("big", 1000), ("small", 3)]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X, Z) <- big(X, Y), small(Y, Z).").unwrap();
        let plan = compile_body_plan(&rule.body, Some(0), &relations, &udfs);
        assert_eq!(order_of(&plan), vec![0, 1]);
        assert_eq!(plan.order[0].probe, None, "delta literal scans the delta");
        assert_eq!(plan.order[1].probe, Some(column_set([0])));
    }

    #[test]
    fn assignments_are_hoisted_before_their_consumers() {
        let relations = relations_with(&[("edge", 100)]);
        let udfs = UdfRegistry::new();
        // Textual order would scan edge first; the plan assigns X = 7 first
        // and probes edge on column 0.
        let rule = parse_rule("out(Y) <- edge(X, Y), X = 7.").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        assert_eq!(order_of(&plan), vec![1, 0]);
        assert_eq!(plan.order[1].probe, Some(column_set([0])));
    }

    #[test]
    fn comparison_needing_later_binding_is_deferred() {
        let relations = relations_with(&[("edge", 10)]);
        let udfs = UdfRegistry::new();
        // C = Y + 1 precedes its producer textually; the plan defers it.
        let rule = parse_rule("out(C) <- C = Y + 1, edge(X, Y).").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        assert_eq!(order_of(&plan), vec![1, 0]);
    }

    #[test]
    fn negation_keeps_its_textual_boundness() {
        let relations = relations_with(&[("a", 10), ("b", 10), ("c", 10)]);
        let udfs = UdfRegistry::new();
        // !b(X, Z) textually sees X bound and Z unbound; c(Z, W) must not be
        // scheduled before the negation even if it were cheaper.
        let rule = parse_rule("out(X, W) <- a(X, Y), !b(X, Z), c(Z, W).").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        let order = order_of(&plan);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1), "a before !b");
        assert!(pos(1) < pos(2), "!b before c (Z is frozen)");
    }

    #[test]
    fn assignment_does_not_prebind_frozen_negation_var() {
        let relations = relations_with(&[("a", 10), ("b", 10)]);
        let udfs = UdfRegistry::new();
        // !b(X, Z) textually sees Z unbound (∄ b(X, _)); hoisting Z = 5 ahead
        // of it would collapse that into the membership check !b(X, 5).
        let rule = parse_rule("out(X) <- a(X), !b(X, Z), Z = 5.").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        let order = order_of(&plan);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(2), "!b must run before Z = 5 is assigned");
    }

    #[test]
    fn meta_predicates_fall_back_to_textual_order() {
        let relations = relations_with(&[]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X) <- says[T](P, X), other(X).").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        assert_eq!(order_of(&plan), vec![0, 1]);
        assert!(plan.ensure.is_empty());
    }

    #[test]
    fn plan_cache_hits_and_recompiles_on_drift() {
        let mut relations = relations_with(&[("a", 4), ("b", 4)]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X, Z) <- a(X, Y), b(Y, Z).").unwrap();
        let stats = PlanStats::default();
        let mut cache = PlanCache::new();
        let p1 = cache.plan_for(
            PlanKey::Rule {
                rule: 0,
                delta: None,
            },
            &rule.body,
            &relations,
            &udfs,
            &stats,
        );
        let p2 = cache.plan_for(
            PlanKey::Rule {
                rule: 0,
                delta: None,
            },
            &rule.body,
            &relations,
            &udfs,
            &stats,
        );
        assert_eq!(p1, p2);
        let snap = stats.snapshot();
        assert_eq!(snap.plans_compiled, 1);
        assert_eq!(snap.plan_cache_hits, 1);
        // Grow `a` far beyond the drift threshold → recompile.
        let rel = relations.get_mut("a").unwrap();
        for i in 0..500 {
            rel.insert(vec![Value::Int(1000 + i), Value::Int(2000 + i)])
                .unwrap();
        }
        cache.plan_for(
            PlanKey::Rule {
                rule: 0,
                delta: None,
            },
            &rule.body,
            &relations,
            &udfs,
            &stats,
        );
        assert_eq!(stats.snapshot().plan_recompiles, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn snapshot_sums() {
        let a = PlanStatsSnapshot {
            index_probes: 2,
            ..Default::default()
        };
        let b = PlanStatsSnapshot {
            index_probes: 3,
            full_scans: 1,
            ..Default::default()
        };
        let mut c = a + b;
        assert_eq!(c.index_probes, 5);
        assert_eq!(c.full_scans, 1);
        c += a;
        assert_eq!(c.index_probes, 7);
    }
}
