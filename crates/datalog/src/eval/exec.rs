//! Sharded parallel execution: a worker-pool layer under the fixpoint.
//!
//! The planner (DESIGN.md §7) made rule plans immutable and relation arenas
//! `Arc`-shared precisely so evaluation could fan out: this module
//! hash-partitions the driving tuple set of a rule execution — the semi-naïve
//! delta, DRed's deleted-tuple frontier, or (for the initial naïve round and
//! aggregate recomputation) the extension of the plan's first stored-relation
//! literal — across `W` workers.  A shard is a vector of *borrowed* tuple
//! references into the driving set, so partitioning costs pointer pushes, not
//! a per-execution deep copy into per-shard sets.  Each worker runs the
//! ordinary planned join
//! executor over its shard against *shared read-only* relation views (indexes
//! are built single-threaded before the workers spawn; workers only probe),
//! and the per-worker tuple buffers are merged deterministically by a sorted
//! dedup, so the merged output is independent of worker count and thread
//! scheduling.  The merge itself is single-writer: only the evaluator thread
//! inserts into relations.
//!
//! Determinism argument (DESIGN.md §8): the shard assignment is a pure
//! function of the tuple (FNV-1a over the tuple's `Hash`), shards partition
//! the driving set, every body solution is enumerated by exactly one worker,
//! and the merged head-tuple list is sorted under the total value order and
//! deduplicated.  Relations are sets, so the final fixpoint is bit-identical
//! to the serial evaluation at any `W` — a property the debug builds assert
//! on every parallel execution and `tests/props_parallel.rs` checks end to
//! end (relations, store Merkle roots, constraint verdicts, DRed sequences).
//!
//! Rules with head-existential variables always take the serial path: entity
//! minting is order-sensitive, and sharding it would change the minted ids.

use super::bindings::{eval_term, Bindings};
use super::plan::RulePlan;
use super::pool::WorkerPool;
use super::runtime_pred_name;
use crate::ast::{Literal, Rule, Term};
use crate::error::{DatalogError, Result};
use crate::relation::Relation;
use crate::schema::BUILTIN_TYPES;
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Default driving-set size below which sharding is skipped entirely (the
/// serial fast path): partitioning and thread spawn cost more than they save
/// on small deltas.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 64;

/// Worker-pool knobs for the evaluation stack.
///
/// The defaults honour the `SECUREBLOX_WORKERS` and
/// `SECUREBLOX_PARALLEL_THRESHOLD` environment variables so a whole test or
/// deployment run can be switched onto the parallel path without code
/// changes (the CI matrix uses this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of workers the delta is hash-partitioned across.  `0` and `1`
    /// both mean serial evaluation.
    pub workers: usize,
    /// Driving sets smaller than this skip partitioning and run serially.
    pub parallel_threshold: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            workers: env_workers(),
            parallel_threshold: env_threshold(),
        }
    }
}

impl EvalOptions {
    /// Explicitly serial evaluation, ignoring the environment knobs.
    pub fn serial() -> Self {
        EvalOptions {
            workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// A pool of `workers` with the default threshold.
    pub fn with_workers(workers: usize) -> Self {
        EvalOptions {
            workers,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// True when the configuration can ever take the parallel path.
    pub fn parallel_enabled(&self) -> bool {
        self.workers > 1
    }
}

fn env_usize(name: &str, default: usize, min: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= min)
        .unwrap_or(default)
}

fn env_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| env_usize("SECUREBLOX_WORKERS", 1, 1))
}

fn env_threshold() -> usize {
    // 0 is meaningful here — "always shard" — so only reject unparseable
    // values (workers, by contrast, needs at least 1).
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        env_usize(
            "SECUREBLOX_PARALLEL_THRESHOLD",
            DEFAULT_PARALLEL_THRESHOLD,
            0,
        )
    })
}

/// FNV-1a, used for shard assignment.  Deliberately *not* the std
/// `RandomState`: the shard of a tuple must be a pure function of its value
/// so runs are reproducible and the debug parallel-vs-serial assertion is
/// meaningful.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// The shard a tuple belongs to in a `workers`-way partition.
pub(crate) fn shard_of(tuple: &[Value], workers: usize) -> usize {
    let mut hasher = Fnv64::new();
    tuple.hash(&mut hasher);
    (hasher.finish() % workers as u64) as usize
}

/// Hash-partition `tuples` into `workers` disjoint shards of *borrowed*
/// tuple references.  The shards alias the driving set (a delta or a relation
/// arena) directly — no per-execution clone of the tuples into per-shard
/// `HashSet`s, which used to dominate the partitioning cost: a shard is just
/// a vector of pointers, and the worker enumerates it as a slice.
pub(crate) fn partition<'a>(
    tuples: impl IntoIterator<Item = &'a Tuple>,
    workers: usize,
) -> Vec<Vec<&'a Tuple>> {
    let mut shards: Vec<Vec<&'a Tuple>> = (0..workers).map(|_| Vec::new()).collect();
    for tuple in tuples {
        shards[shard_of(tuple, workers)].push(tuple);
    }
    shards
}

/// Run `worker` over every non-empty shard on the persistent pool and
/// collect the results in shard order.  Errors are reported from the lowest
/// shard index so failure is as deterministic as the partition itself.
/// Without a pool (serial configurations, unit tests) the shards run inline
/// on the calling thread — same results, no spawn.
pub(crate) fn run_shards<'a, T, F>(
    pool: Option<&WorkerPool>,
    shards: &[Vec<&'a Tuple>],
    worker: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&[&'a Tuple]) -> Result<T> + Sync,
{
    let occupied: Vec<&Vec<&'a Tuple>> = shards.iter().filter(|shard| !shard.is_empty()).collect();
    let results: Vec<Result<T>> = match pool {
        Some(pool) if occupied.len() > 1 => {
            let tasks: Vec<_> = occupied
                .iter()
                .map(|shard| {
                    let worker = &worker;
                    move || worker(shard)
                })
                .collect();
            pool.execute(tasks)
                .into_iter()
                .map(|result| match result {
                    Ok(result) => result,
                    Err(_) => Err(DatalogError::Eval("evaluation worker panicked".into())),
                })
                .collect()
        }
        _ => occupied.iter().map(|shard| worker(shard)).collect(),
    };
    results.into_iter().collect()
}

/// Sharded derivation with a **pipelined merge**: each worker sorts and
/// dedups its own buffer on its pool thread, and the evaluator thread folds
/// buffers into the accumulated result in *arrival* order — merging batch
/// `k` while workers are still joining batch `k+1`.  The sorted-merge fold
/// is commutative and associative, so the output equals
/// [`merge_derived`] of the per-shard buffers regardless of arrival order.
/// Errors are still reported from the lowest shard index.
pub(crate) fn run_shards_merged<'a, F>(
    pool: Option<&WorkerPool>,
    shards: &[Vec<&'a Tuple>],
    worker: F,
) -> Result<Vec<(String, Tuple)>>
where
    F: Fn(&[&'a Tuple]) -> Result<Vec<(String, Tuple)>> + Sync,
{
    let occupied: Vec<&Vec<&'a Tuple>> = shards.iter().filter(|shard| !shard.is_empty()).collect();
    let sorted_worker = |shard: &[&'a Tuple]| -> Result<Vec<(String, Tuple)>> {
        let mut buffer = worker(shard)?;
        buffer.sort_by(derived_cmp);
        buffer.dedup();
        Ok(buffer)
    };
    let Some(pool) = pool.filter(|_| occupied.len() > 1) else {
        return Ok(merge_derived(
            occupied
                .iter()
                .map(|shard| sorted_worker(shard))
                .collect::<Result<Vec<_>>>()?,
        ));
    };
    let tasks: Vec<_> = occupied
        .iter()
        .map(|shard| {
            let sorted_worker = &sorted_worker;
            move || sorted_worker(shard)
        })
        .collect();
    let mut merged: Vec<(String, Tuple)> = Vec::new();
    let mut first_error: Option<(usize, DatalogError)> = None;
    pool.execute_streaming(tasks, |index, result| {
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(_) => Err(DatalogError::Eval("evaluation worker panicked".into())),
        };
        match outcome {
            Ok(buffer) => merged = merge_two_sorted(std::mem::take(&mut merged), buffer),
            Err(error) => {
                if first_error
                    .as_ref()
                    .is_none_or(|(lowest, _)| index < *lowest)
                {
                    first_error = Some((index, error));
                }
            }
        }
    });
    match first_error {
        Some((_, error)) => Err(error),
        None => Ok(merged),
    }
}

/// Merge two sorted, deduplicated derivation buffers into one.
fn merge_two_sorted(a: Vec<(String, Tuple)>, b: Vec<(String, Tuple)>) -> Vec<(String, Tuple)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let mut left = a.into_iter().peekable();
    let mut right = b.into_iter().peekable();
    loop {
        let pick_left = match (left.peek(), right.peek()) {
            (Some(l), Some(r)) => match derived_cmp(l, r) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    right.next();
                    true
                }
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let item = if pick_left { left.next() } else { right.next() };
        merged.push(item.expect("peeked"));
    }
    merged
}

/// Total order on derived `(predicate, tuple)` pairs: predicate name, then
/// the tuple under the shared total value order ([`crate::value::tuple_total_cmp`]).
fn derived_cmp(a: &(String, Tuple), b: &(String, Tuple)) -> std::cmp::Ordering {
    a.0.cmp(&b.0)
        .then_with(|| crate::value::tuple_total_cmp(&a.1, &b.1))
}

/// Merge per-worker derivation buffers deterministically: sort under the
/// total order and deduplicate.  The result is independent of both the
/// number of shards and the order workers finished in.
pub(crate) fn merge_derived(buffers: Vec<Vec<(String, Tuple)>>) -> Vec<(String, Tuple)> {
    let mut merged: Vec<(String, Tuple)> = buffers.into_iter().flatten().collect();
    merged.sort_by(derived_cmp);
    merged.dedup();
    merged
}

/// Sorted-dedup view of a derivation list, for the debug parallel-vs-serial
/// equivalence assertion.
#[cfg(debug_assertions)]
pub(crate) fn canonicalize_derived(mut derived: Vec<(String, Tuple)>) -> Vec<(String, Tuple)> {
    derived.sort_by(derived_cmp);
    derived.dedup();
    derived
}

/// Instantiate the head atoms of a (non-existential) rule under one body
/// solution.  Pure: workers call this concurrently against the shared
/// read-only relation views.
pub(crate) fn project_heads(
    rule: &Rule,
    solution: &Bindings,
    relations: &HashMap<String, Relation>,
) -> Result<Vec<(String, Tuple)>> {
    let mut derived = Vec::with_capacity(rule.head.len());
    for atom in &rule.head {
        let pred = runtime_pred_name(&atom.pred)?;
        let mut tuple: Tuple = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            let value = match term {
                Term::Var(v) => solution.get(v).cloned(),
                other => eval_term(other, solution, relations)?,
            };
            match value {
                Some(v) => tuple.push(v),
                None => {
                    return Err(DatalogError::Eval(format!(
                        "unsafe rule: head term {term} of {pred} is not bound by the body in \
                         rule `{rule}`"
                    )))
                }
            }
        }
        derived.push((pred, tuple));
    }
    Ok(derived)
}

/// The single shard-or-stay-serial decision for executions with no delta
/// restriction (the initial naïve round and aggregate recomputation): pick
/// the driving literal and hash-partition its relation's extension, or
/// return `None` when the pool is disabled, the body has no stored literal,
/// or the relation is under the threshold.  Shared by rule and aggregate
/// execution so the two can never shard under different policies.  The
/// shards borrow straight out of the relation arena.
pub(crate) fn shard_driving_relation<'a>(
    body: &[Literal],
    plan: Option<&RulePlan>,
    relations: &'a HashMap<String, Relation>,
    udfs: &UdfRegistry,
    options: &EvalOptions,
) -> Option<(usize, Vec<Vec<&'a Tuple>>)> {
    if !options.parallel_enabled() {
        return None;
    }
    let drive = drive_literal(body, plan, udfs)?;
    let Literal::Pos(atom) = &body[drive] else {
        return None;
    };
    let pred = runtime_pred_name(&atom.pred).ok()?;
    let relation = relations.get(&pred)?;
    if relation.len() < options.parallel_threshold {
        return None;
    }
    Some((drive, partition(relation.iter(), options.workers)))
}

/// The literal whose enumeration should be sharded when no delta restriction
/// pins one: the first stored-relation literal in plan execution order (the
/// outermost loop of the join).  Returns `None` when the body has no stored
/// literal — such rules are cheap and stay serial.
fn drive_literal(body: &[Literal], plan: Option<&RulePlan>, udfs: &UdfRegistry) -> Option<usize> {
    let execution_order: Vec<usize> = match plan {
        Some(plan) => plan.order.iter().map(|step| step.literal).collect(),
        None => (0..body.len()).collect(),
    };
    execution_order
        .into_iter()
        .find(|&index| stored_relation_of(&body[index], udfs).is_some())
}

/// If `literal` is a positive atom over a stored relation (not a built-in
/// type check, not a UDF), return that relation's name.
pub(crate) fn stored_relation_of(literal: &Literal, udfs: &UdfRegistry) -> Option<String> {
    let Literal::Pos(atom) = literal else {
        return None;
    };
    let pred = runtime_pred_name(&atom.pred).ok()?;
    if BUILTIN_TYPES.contains(&pred.as_str()) && atom.terms.len() == 1 {
        return None;
    }
    if udfs.is_udf(&pred) {
        return None;
    }
    Some(pred)
}

// The worker pool shares relations, plans, bindings machinery, and the UDF
// registry across threads by reference; lock in the auto-traits that makes
// sound.  (Tuples are `Arc`-shared, UDFs are `Arc<dyn Fn + Send + Sync>`.)
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Relation>();
    assert_sync_send::<Bindings>();
    assert_sync_send::<UdfRegistry>();
    assert_sync_send::<RulePlan>();
    assert_sync_send::<super::plan::PlanStats>();
    assert_sync_send::<Value>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[i64]) -> Tuple {
        values.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let tuples: Vec<Tuple> = (0..100).map(|i| t(&[i, i + 1])).collect();
        for workers in [1, 2, 3, 7] {
            let shards = partition(tuples.iter(), workers);
            assert_eq!(shards.len(), workers);
            let total: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total, tuples.len(), "shards must partition the input");
            for tuple in &tuples {
                let holders = shards
                    .iter()
                    .filter(|s| s.iter().any(|held| *held == tuple))
                    .count();
                assert_eq!(holders, 1, "each tuple lives in exactly one shard");
            }
            // Shards borrow the input: no tuple is cloned by partitioning.
            for shard in &shards {
                for &held in shard {
                    assert!(tuples.iter().any(|original| std::ptr::eq(original, held)));
                }
            }
        }
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        let tuple = t(&[42, 7]);
        let first = shard_of(&tuple, 4);
        for _ in 0..10 {
            assert_eq!(shard_of(&tuple, 4), first);
        }
    }

    #[test]
    fn merge_sorts_and_dedups_across_buffers() {
        let a = vec![
            ("p".to_string(), t(&[2])),
            ("p".to_string(), t(&[1])),
            ("q".to_string(), t(&[1])),
        ];
        let b = vec![("p".to_string(), t(&[1])), ("a".to_string(), t(&[9]))];
        let merged = merge_derived(vec![a, b]);
        assert_eq!(
            merged,
            vec![
                ("a".to_string(), t(&[9])),
                ("p".to_string(), t(&[1])),
                ("p".to_string(), t(&[2])),
                ("q".to_string(), t(&[1])),
            ]
        );
    }

    #[test]
    fn run_shards_skips_empty_and_propagates_first_error() {
        let owned = [t(&[1]), t(&[2]), t(&[3])];
        let shards: Vec<Vec<&Tuple>> =
            vec![vec![&owned[0]], Vec::new(), vec![&owned[1], &owned[2]]];
        let pool = WorkerPool::new(2);
        for pool in [None, Some(&pool)] {
            let sizes = run_shards(pool, &shards, |shard| Ok(shard.len())).unwrap();
            assert_eq!(sizes, vec![1, 2], "empty shard ran no worker");

            let err = run_shards(pool, &shards, |shard| {
                if shard.len() == 2 {
                    Err(DatalogError::Eval("boom".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert!(matches!(err, DatalogError::Eval(m) if m == "boom"));
        }
    }

    #[test]
    fn merged_run_equals_sorted_dedup_merge() {
        let owned = [t(&[1]), t(&[2]), t(&[3]), t(&[4])];
        let shards: Vec<Vec<&Tuple>> =
            vec![vec![&owned[0], &owned[2]], vec![&owned[1]], vec![&owned[3]]];
        // Workers derive overlapping heads; the pipelined merge must agree
        // with the barrier merge exactly.
        let worker = |shard: &[&Tuple]| -> Result<Vec<(String, Tuple)>> {
            Ok(shard
                .iter()
                .flat_map(|tuple| {
                    vec![
                        ("p".to_string(), (*tuple).clone()),
                        ("shared".to_string(), t(&[0])),
                    ]
                })
                .collect())
        };
        let pool = WorkerPool::new(3);
        let expected = {
            let buffers: Vec<_> = shards
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| worker(s).unwrap())
                .collect();
            merge_derived(buffers)
        };
        for pool in [None, Some(&pool)] {
            let merged = run_shards_merged(pool, &shards, worker).unwrap();
            assert_eq!(merged, expected);
        }
    }

    #[test]
    fn options_default_and_overrides() {
        let serial = EvalOptions::serial();
        assert!(!serial.parallel_enabled());
        let pool = EvalOptions::with_workers(4);
        assert!(pool.parallel_enabled());
        assert_eq!(pool.parallel_threshold, DEFAULT_PARALLEL_THRESHOLD);
    }
}
