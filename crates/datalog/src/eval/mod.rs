//! Rule evaluation: bindings, joins, per-rule planning, sharded parallel
//! execution, semi-naïve fixpoint, aggregation, and incremental deletion
//! (DRed).

pub mod aggregate;
pub mod batch;
pub mod bindings;
pub mod dred;
pub mod exec;
pub mod join;
pub mod plan;
pub mod pool;
pub mod seminaive;
pub mod shuffle;

pub use bindings::Bindings;
pub use exec::EvalOptions;
pub use plan::{PlanCache, PlanKey, PlanStats, PlanStatsSnapshot, RulePlan};
pub use pool::WorkerPool;
pub use seminaive::{EvalJournal, Evaluator, FixpointStats};

use crate::ast::PredRef;
use crate::error::{DatalogError, Result};

/// Evaluation limits and knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Maximum number of semi-naïve iterations per stratum before evaluation
    /// is aborted with [`DatalogError::FixpointBudget`].
    pub max_iterations: usize,
    /// When true (the default), rules are compiled into selectivity-ordered,
    /// index-probing plans before execution; when false, bodies run as a
    /// nested-loop join in textual literal order over full scans (the
    /// pre-planner behaviour, kept for equivalence testing and as a bench
    /// baseline).
    pub use_planner: bool,
    /// Worker-pool configuration for sharded parallel execution (see
    /// [`exec`]).  The default honours `SECUREBLOX_WORKERS` /
    /// `SECUREBLOX_PARALLEL_THRESHOLD`; `workers <= 1` keeps the serial
    /// path.
    pub exec: EvalOptions,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_iterations: 10_000,
            use_planner: true,
            exec: EvalOptions::default(),
        }
    }
}

/// Resolve the runtime (concrete) name of a predicate reference.
///
/// Parameterized references are mangled as `generic$param`, which is the
/// naming convention used throughout the BloxGenerics compiler and the
/// policy generators.
pub fn runtime_pred_name(pred: &PredRef) -> Result<String> {
    match pred {
        PredRef::Named(n) => Ok(n.clone()),
        PredRef::Parameterized { generic, param } => Ok(format!("{generic}${param}")),
        PredRef::ParameterizedVar { generic, var } => Err(DatalogError::Eval(format!(
            "meta-level predicate {generic}[{var}] reached the evaluator; run the BloxGenerics \
             compiler first"
        ))),
        PredRef::Var(v) => Err(DatalogError::Eval(format!(
            "unresolved predicate variable {v} reached the evaluator; run the BloxGenerics \
             compiler first"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_names() {
        assert_eq!(runtime_pred_name(&PredRef::named("link")).unwrap(), "link");
        assert_eq!(
            runtime_pred_name(&PredRef::Parameterized {
                generic: "says".into(),
                param: "path".into()
            })
            .unwrap(),
            "says$path"
        );
        assert!(runtime_pred_name(&PredRef::Var("T".into())).is_err());
        assert!(runtime_pred_name(&PredRef::ParameterizedVar {
            generic: "says".into(),
            var: "T".into()
        })
        .is_err());
    }

    #[test]
    fn default_config_budget() {
        assert!(EvalConfig::default().max_iterations >= 1000);
    }
}
