//! Incremental deletion via over-delete / re-derive (DRed).
//!
//! LogicBlox maintains installed rules incrementally with the DRed algorithm
//! of Gupta, Mumick & Subrahmanian (paper §2).  When base facts are removed,
//! DRed first *over-deletes*: it removes every derived tuple that has at
//! least one derivation using a deleted tuple.  It then *re-derives*: any
//! over-deleted tuple with a surviving alternative derivation is put back by
//! running the normal fixpoint over the remaining facts.
//!
//! Both phases ride the sharded worker pool (DESIGN.md §8): over-deletion's
//! candidate enumeration goes through [`Evaluator::evaluate_rule`], which
//! hash-partitions the deleted-tuple frontier across workers once it clears
//! the parallel threshold, and re-derivation is an ordinary fixpoint run.
//! Only the cheap existence probe stays serial — it aborts at the first
//! solution, so there is no work to partition.

use super::join::{DeltaRestriction, DeltaTuples, JoinContext};
use super::runtime_pred_name;
use super::seminaive::Evaluator;
use crate::ast::{Literal, Rule};
use crate::error::Result;
use crate::value::Tuple;
use std::collections::{HashMap, HashSet};

/// Outcome of an incremental deletion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeletionStats {
    /// Tuples removed from base (EDB) relations.
    pub base_deleted: usize,
    /// Derived tuples removed during over-deletion.
    pub over_deleted: usize,
    /// Tuples re-derived (re-inserted) because alternative derivations exist.
    pub rederived: usize,
}

impl<'a> Evaluator<'a> {
    /// Delete `base_deletions` and incrementally maintain all derived
    /// relations.
    ///
    /// `edb_facts` is the set of explicitly-asserted facts per predicate;
    /// tuples in it are never over-deleted (they have a non-rule derivation).
    pub fn delete_with_dred(
        &mut self,
        rules: &[Rule],
        strata: &[Vec<usize>],
        base_deletions: &[(String, Tuple)],
        edb_facts: &HashMap<String, HashSet<Tuple>>,
    ) -> Result<DeletionStats> {
        let mut stats = DeletionStats::default();

        // Snapshot the pre-deletion database: over-deletion joins run against
        // the original state, as in the standard formulation of DRed.  Held
        // mutably so planned evaluation can build (and keep, across rules and
        // frontier rounds) the secondary indexes it probes.
        let mut original = self.relations.clone();

        // 1. Remove the base facts.
        let mut deleted: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for (pred, tuple) in base_deletions {
            if let Some(relation) = self.relations.get_mut(pred) {
                if relation.remove(tuple) {
                    stats.base_deleted += 1;
                    deleted
                        .entry(pred.clone())
                        .or_default()
                        .insert(tuple.clone());
                }
            }
        }
        if stats.base_deleted == 0 {
            return Ok(stats);
        }

        // 2. Over-delete: propagate deletions through every rule until no new
        //    candidate deletions appear.  A candidate is any head tuple with a
        //    derivation (in the original database) that uses a deleted tuple.
        let mut frontier = deleted.clone();
        while frontier.values().any(|set| !set.is_empty()) {
            let mut next_frontier: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for (rule_index, rule) in rules.iter().enumerate() {
                for (literal_index, literal) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = literal else {
                        continue;
                    };
                    let pred = runtime_pred_name(&atom.pred)?;
                    let Some(pred_deleted) = frontier.get(&pred) else {
                        continue;
                    };
                    if pred_deleted.is_empty() {
                        continue;
                    }
                    // Cheap existence probe first: does any derivation of
                    // this rule go through the deleted tuples at this
                    // literal?  Stops at the first solution, and skips the
                    // snapshot swap below for rules the deletions cannot
                    // affect.  Runs the same plan full evaluation will use —
                    // the textual order may be unevaluable (hoisted
                    // comparisons) even when the planned order succeeds.
                    let plan = if self.config.use_planner {
                        Some(self.plan_cache.plan_for(
                            super::plan::PlanKey::Rule {
                                rule: rule_index,
                                delta: Some(literal_index),
                            },
                            &rule.body,
                            &original,
                            self.udfs,
                            self.plan_stats,
                        ))
                    } else {
                        None
                    };
                    let ctx = JoinContext::new(&original, self.udfs);
                    let mut bindings = super::bindings::Bindings::new();
                    let mut touched = false;
                    let restriction = DeltaRestriction {
                        literal_index,
                        delta: DeltaTuples::Set(pred_deleted),
                    };
                    let mut stop_at_first = |_: &super::bindings::Bindings| {
                        touched = true;
                        // Sentinel: aborts the enumeration immediately.
                        Err(crate::error::DatalogError::Eval(
                            "dred existence probe satisfied".into(),
                        ))
                    };
                    let probe = match &plan {
                        Some(plan) => ctx.join_planned(
                            &rule.body,
                            plan,
                            Some(restriction),
                            &mut bindings,
                            &mut stop_at_first,
                        ),
                        None => ctx.join(
                            &rule.body,
                            Some(restriction),
                            &mut bindings,
                            &mut stop_at_first,
                        ),
                    };
                    match probe {
                        Ok(()) => {}
                        Err(_) if touched => {}
                        Err(error) => return Err(error),
                    }
                    if !touched {
                        continue;
                    }
                    // Evaluate the rule against the ORIGINAL relations with
                    // this literal restricted to the deleted tuples,
                    // instantiating heads through the normal path (handles
                    // existential memoization identically to derivation).
                    // Aggregation rules cannot be head-instantiated from a
                    // body binding (the aggregate result is not a body
                    // variable); since they are recomputed from their full
                    // bodies on every stratum iteration, DRed may
                    // over-approximate instead: a deletion touching the body
                    // invalidates every stored tuple of the head predicate,
                    // and re-derivation recomputes the surviving groups.
                    let derived = if rule.agg.is_some() {
                        let mut all = Vec::new();
                        for atom in &rule.head {
                            let head_pred = runtime_pred_name(&atom.pred)?;
                            if let Some(relation) = self.relations.get(&head_pred) {
                                for tuple in relation.iter() {
                                    all.push((head_pred.clone(), tuple.clone()));
                                }
                            }
                        }
                        all
                    } else {
                        self.evaluate_rule_against(
                            rules,
                            rule_index,
                            Some((literal_index, pred_deleted)),
                            &mut original,
                        )?
                    };
                    for (head_pred, tuple) in derived {
                        // Explicitly asserted facts survive over-deletion.
                        if edb_facts
                            .get(&head_pred)
                            .is_some_and(|set| set.contains(&tuple))
                        {
                            continue;
                        }
                        let already = deleted
                            .get(&head_pred)
                            .is_some_and(|set| set.contains(&tuple));
                        if already {
                            continue;
                        }
                        if let Some(relation) = self.relations.get_mut(&head_pred) {
                            if relation.remove(&tuple) {
                                stats.over_deleted += 1;
                                deleted
                                    .entry(head_pred.clone())
                                    .or_default()
                                    .insert(tuple.clone());
                                next_frontier
                                    .entry(head_pred.clone())
                                    .or_default()
                                    .insert(tuple);
                            }
                        }
                    }
                }
            }
            frontier = next_frontier;
        }

        // 3. Re-derive: running the ordinary fixpoint over the remaining facts
        //    re-inserts every over-deleted tuple that still has a derivation.
        let before: usize = self.relations.values().map(|r| r.len()).sum();
        self.run(rules, strata)?;
        let after: usize = self.relations.values().map(|r| r.len()).sum();
        stats.rederived = after.saturating_sub(before);
        Ok(stats)
    }

    /// Like [`Evaluator::evaluate_rule`] but joining against an explicit
    /// relation snapshot (used by over-deletion).
    ///
    /// The snapshot is swapped in directly — no clone — so the only mutation
    /// evaluation performs on it (building secondary indexes) persists across
    /// calls, paying each index build once per deletion instead of once per
    /// (rule, literal, frontier round).
    fn evaluate_rule_against(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
        delta: Option<(usize, &HashSet<Tuple>)>,
        snapshot: &mut HashMap<String, crate::relation::Relation>,
    ) -> Result<Vec<(String, Tuple)>> {
        std::mem::swap(self.relations, snapshot);
        let result = self.evaluate_rule(rules, rule_index, delta);
        std::mem::swap(self.relations, snapshot);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::plan::{PlanCache, PlanStats};
    use crate::eval::EvalConfig;
    use crate::intern::Interner;
    use crate::parser::parse_program;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::strata::stratify;
    use crate::udf::UdfRegistry;
    use crate::value::Value;
    use std::sync::Arc;

    struct Fixture {
        rules: Vec<Rule>,
        strata: Vec<Vec<usize>>,
        schema: Schema,
        udfs: UdfRegistry,
        relations: HashMap<String, Relation>,
        interner: Arc<Interner>,
        edb: HashMap<String, HashSet<Tuple>>,
        entity_counter: u64,
        memo: HashMap<(usize, Vec<Value>), u64>,
        plan_cache: PlanCache,
        plan_stats: PlanStats,
    }

    impl Fixture {
        fn new(source: &str, facts: &[(&str, Vec<Value>)]) -> Self {
            let program = parse_program(source).unwrap();
            let mut schema = Schema::new();
            schema.absorb_program(&program).unwrap();
            let rules: Vec<Rule> = program.rules().cloned().collect();
            let udfs = UdfRegistry::new();
            let strata = stratify(&rules, &udfs).unwrap();
            let interner = Arc::new(Interner::new());
            let mut relations: HashMap<String, Relation> = HashMap::new();
            let mut edb: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for (pred, tuple) in facts {
                relations
                    .entry(pred.to_string())
                    .or_insert_with(|| Relation::with_interner(*pred, None, Arc::clone(&interner)))
                    .insert(tuple.clone())
                    .unwrap();
                edb.entry(pred.to_string())
                    .or_default()
                    .insert(tuple.clone());
            }
            let mut fixture = Fixture {
                rules,
                strata,
                schema,
                udfs,
                relations,
                interner,
                edb,
                entity_counter: 0,
                memo: HashMap::new(),
                plan_cache: PlanCache::new(),
                plan_stats: PlanStats::default(),
            };
            fixture.run_fixpoint();
            fixture
        }

        fn run_fixpoint(&mut self) {
            let config = EvalConfig::default();
            let mut evaluator = Evaluator {
                relations: &mut self.relations,
                schema: &self.schema,
                udfs: &self.udfs,
                config: &config,
                entity_counter: &mut self.entity_counter,
                existential_memo: &mut self.memo,
                plan_cache: &mut self.plan_cache,
                plan_stats: &self.plan_stats,
                interner: &self.interner,
                pool: None,
                journal: None,
            };
            evaluator.run(&self.rules, &self.strata).unwrap();
        }

        fn delete(&mut self, pred: &str, tuple: Vec<Value>) -> DeletionStats {
            let config = EvalConfig::default();
            let mut evaluator = Evaluator {
                relations: &mut self.relations,
                schema: &self.schema,
                udfs: &self.udfs,
                config: &config,
                entity_counter: &mut self.entity_counter,
                existential_memo: &mut self.memo,
                plan_cache: &mut self.plan_cache,
                plan_stats: &self.plan_stats,
                interner: &self.interner,
                pool: None,
                journal: None,
            };
            // Keep the EDB bookkeeping in sync.
            self.edb.get_mut(pred).map(|set| set.remove(&tuple));
            evaluator
                .delete_with_dred(
                    &self.rules,
                    &self.strata,
                    &[(pred.to_string(), tuple)],
                    &self.edb,
                )
                .unwrap()
        }

        fn contains(&self, pred: &str, tuple: &[Value]) -> bool {
            self.relations
                .get(pred)
                .map_or(false, |r| r.contains(tuple))
        }
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn deleting_a_link_removes_dependent_paths() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
            ],
        );
        assert!(fixture.contains("reachable", &[s("a"), s("c")]));
        let stats = fixture.delete("link", vec![s("b"), s("c")]);
        assert_eq!(stats.base_deleted, 1);
        assert!(
            stats.over_deleted >= 2,
            "a->c and b->c must be over-deleted"
        );
        assert!(!fixture.contains("reachable", &[s("a"), s("c")]));
        assert!(!fixture.contains("reachable", &[s("b"), s("c")]));
        assert!(fixture.contains("reachable", &[s("a"), s("b")]));
    }

    #[test]
    fn alternative_derivations_are_rederived() {
        // Two routes from a to c; deleting one keeps a->c reachable.
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
                ("link", vec![s("a"), s("d")]),
                ("link", vec![s("d"), s("c")]),
            ],
        );
        assert!(fixture.contains("reachable", &[s("a"), s("c")]));
        let stats = fixture.delete("link", vec![s("b"), s("c")]);
        assert!(
            fixture.contains("reachable", &[s("a"), s("c")]),
            "alternative path via d survives"
        );
        assert!(!fixture.contains("reachable", &[s("b"), s("c")]));
        assert!(stats.rederived >= 1);
    }

    #[test]
    fn explicitly_asserted_facts_survive_overdeletion() {
        // c is both derived and explicitly asserted.
        let mut fixture = Fixture::new(
            "c(X) <- a(X).\n",
            &[("a", vec![s("v")]), ("c", vec![s("v")])],
        );
        let stats = fixture.delete("a", vec![s("v")]);
        assert_eq!(stats.base_deleted, 1);
        assert!(
            fixture.contains("c", &[s("v")]),
            "explicit fact must survive"
        );
    }

    #[test]
    fn deleting_nonexistent_fact_is_a_noop() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).",
            &[("link", vec![s("a"), s("b")])],
        );
        let stats = fixture.delete("link", vec![s("x"), s("y")]);
        assert_eq!(stats, DeletionStats::default());
        assert!(fixture.contains("reachable", &[s("a"), s("b")]));
    }

    #[test]
    fn retraction_recomputes_aggregates() {
        let mut fixture = Fixture::new(
            "total[X] = S <- agg<< S = sum(Y) >> e0(X, Y).",
            &[
                ("e0", vec![Value::Int(1), Value::Int(2)]),
                ("e0", vec![Value::Int(1), Value::Int(3)]),
                ("e0", vec![Value::Int(2), Value::Int(5)]),
            ],
        );
        assert!(fixture.contains("total", &[Value::Int(1), Value::Int(5)]));
        let stats = fixture.delete("e0", vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(stats.base_deleted, 1);
        assert!(
            fixture.contains("total", &[Value::Int(1), Value::Int(2)]),
            "group 1 recomputed from the surviving facts"
        );
        assert!(
            fixture.contains("total", &[Value::Int(2), Value::Int(5)]),
            "untouched group re-derived"
        );
        assert!(!fixture.contains("total", &[Value::Int(1), Value::Int(5)]));
        // Deleting a group's last fact removes its aggregate entirely.
        fixture.delete("e0", vec![Value::Int(1), Value::Int(2)]);
        assert!(!fixture.contains("total", &[Value::Int(1), Value::Int(2)]));
        assert!(fixture.contains("total", &[Value::Int(2), Value::Int(5)]));
    }

    #[test]
    fn incremental_matches_recompute_from_scratch() {
        let edges = [
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("a", "d"),
            ("d", "e"),
            ("b", "e"),
        ];
        let facts: Vec<(&str, Vec<Value>)> = edges
            .iter()
            .map(|(x, y)| ("link", vec![s(x), s(y)]))
            .collect();
        let mut incremental = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &facts,
        );
        incremental.delete("link", vec![s("b"), s("c")]);

        let remaining: Vec<(&str, Vec<Value>)> = edges
            .iter()
            .filter(|(x, y)| !(*x == "b" && *y == "c"))
            .map(|(x, y)| ("link", vec![s(x), s(y)]))
            .collect();
        let fresh = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &remaining,
        );
        let a: Vec<Tuple> = incremental.relations["reachable"].sorted();
        let b: Vec<Tuple> = fresh.relations["reachable"].sorted();
        assert_eq!(a, b);
    }
}
