//! A persistent worker pool on plain std channels.
//!
//! PR 4 sharded rule executions across `std::thread::scope`, which spawns
//! and joins OS threads on *every* sharded execution — thousands of times
//! per fixpoint on delta-heavy workloads.  This pool spawns its threads
//! once per workspace (lazily, on the first parallel fixpoint) and feeds
//! them closures over an injector channel, so a sharded execution costs two
//! channel sends per shard instead of a thread spawn.
//!
//! ## Lifetime erasure
//!
//! Tasks borrow the evaluator's state (relation views, plans, deltas).  A
//! long-lived thread cannot hold a short-lived borrow in the type system,
//! so [`WorkerPool::execute_streaming`] erases the task lifetime with an
//! `unsafe` transmute to `'static` — sound because the call *blocks until
//! every submitted task has signalled completion* before returning: no
//! borrow escapes the stack frame that owns the data.  Nothing else may
//! submit lifetime-erased jobs.
//!
//! ## Nesting
//!
//! A task running on a pool thread may itself call `execute_streaming`
//! (rule-level fan-out nests shard-level fan-out).  Blocking on the queue
//! from inside a pool thread could deadlock — every thread waiting on
//! subtasks nobody is free to run — so nested calls detect the pool thread
//! via a thread-local flag and run their tasks inline instead.
//!
//! ## Determinism
//!
//! The pool affects *where* a task runs, never *what* it computes: tasks
//! are pure functions of their captured inputs, results are delivered with
//! their submission index, and callers fold them either by index or with an
//! order-independent merge.  `tests/props_parallel.rs` and
//! `tests/props_columnar.rs` hold the end-to-end proof obligation.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-size pool of long-lived worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    /// Dropped first (in `Drop`) to close the queue and stop the workers.
    injector: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawn `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (injector, queue) = channel::<Job>();
        let queue = Arc::new(Mutex::new(queue));
        let threads = (0..size)
            .map(|index| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("sbx-worker-{index}"))
                    .spawn(move || {
                        IN_POOL.with(|flag| flag.set(true));
                        loop {
                            // Jobs catch their own panics, so a poisoned
                            // queue lock only ever means "keep draining".
                            let job = queue.lock().unwrap_or_else(PoisonError::into_inner).recv();
                            match job {
                                Ok(job) => job(),
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            injector: Some(injector),
            threads,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when called from one of this process's pool worker threads.
    pub fn on_pool_thread() -> bool {
        IN_POOL.with(Cell::get)
    }

    /// Run every task and deliver `(submission_index, result)` to `on_done`
    /// on the calling thread in **arrival order** — the pipelining hook: the
    /// caller merges batch *k* while workers are still joining batch *k+1*.
    /// Blocks until all tasks have completed.  A task panic is delivered as
    /// `Err`; `on_done` must not panic (a panic there would return with
    /// erased borrows still live in the queue).
    pub fn execute_streaming<'env, T, F>(
        &self,
        tasks: Vec<F>,
        mut on_done: impl FnMut(usize, std::thread::Result<T>),
    ) where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        if tasks.len() <= 1 || Self::on_pool_thread() {
            for (index, task) in tasks.into_iter().enumerate() {
                let result = catch_unwind(AssertUnwindSafe(task));
                on_done(index, result);
            }
            return;
        }
        let injector = self.injector.as_ref().expect("pool is alive");
        let (done, arrivals) = channel::<(usize, std::thread::Result<T>)>();
        let count = tasks.len();
        let queue_depth = secureblox_telemetry::gauge!("datalog_pool_queue_depth");
        let busy = secureblox_telemetry::histogram!("datalog_pool_task_busy_ns");
        queue_depth.add(count as i64);
        for (index, task) in tasks.into_iter().enumerate() {
            let done = done.clone();
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                queue_depth.add(-1);
                let timer = busy.start_timer();
                let result = catch_unwind(AssertUnwindSafe(task));
                drop(timer);
                // The receiver outlives the loop below; a send can only
                // fail if the caller's stack unwound, which `on_done` is
                // contractually barred from causing.
                let _ = done.send((index, result));
            });
            // SAFETY: the arrival loop below blocks until `count` results
            // have been received, and every job sends exactly one result
            // after running — so every borrow captured by `job` is still
            // live whenever the job executes, and none outlives this call.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            injector.send(job).expect("pool workers are alive");
        }
        drop(done);
        for _ in 0..count {
            let (index, result) = arrivals.recv().expect("worker delivers result");
            on_done(index, result);
        }
    }

    /// Run every task and collect results in submission order.
    pub fn execute<'env, T, F>(&self, tasks: Vec<F>) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let mut slots: Vec<Option<std::thread::Result<T>>> =
            (0..tasks.len()).map(|_| None).collect();
        self.execute_streaming(tasks, |index, result| slots[index] = Some(result));
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector ends every worker's recv loop.
        drop(self.injector.take());
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_borrowed_tasks_in_submission_order() {
        let pool = WorkerPool::new(3);
        let data: Vec<usize> = (0..32).collect();
        let tasks: Vec<_> = data
            .chunks(5)
            .map(|chunk| move || chunk.iter().sum::<usize>())
            .collect();
        let results: Vec<usize> = pool
            .execute(tasks)
            .into_iter()
            .map(|r| r.expect("no panic"))
            .collect();
        assert_eq!(results.iter().sum::<usize>(), data.iter().sum::<usize>());
        assert_eq!(results[0], 0 + 1 + 2 + 3 + 4);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let results = pool.execute(vec![
                Box::new(move || round * 2) as Box<dyn FnOnce() -> i32 + Send>,
                Box::new(move || round * 2 + 1),
            ]);
            let values: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, vec![round * 2, round * 2 + 1]);
        }
    }

    #[test]
    fn panics_are_contained_and_workers_survive() {
        let pool = WorkerPool::new(2);
        let results = pool.execute(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("worker task panic")),
            Box::new(|| 3usize),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        // The pool still works after a task panicked.
        let again = pool.execute(vec![|| 7usize]);
        assert_eq!(*again[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn nested_execution_runs_inline_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner_runs = AtomicUsize::new(0);
        let outer: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let inner_runs = &inner_runs;
                move || {
                    assert!(WorkerPool::on_pool_thread());
                    pool.execute_streaming(vec![|| (), || ()], |_, result| {
                        result.expect("inline task");
                        inner_runs.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .collect();
        for result in pool.execute(outer) {
            result.expect("outer task");
        }
        assert_eq!(inner_runs.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn streaming_delivers_all_results_on_caller_thread() {
        let pool = WorkerPool::new(4);
        let mut seen = vec![false; 16];
        let caller = std::thread::current().id();
        pool.execute_streaming(
            (0..16).map(|i| move || i).collect::<Vec<_>>(),
            |index, result| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(result.unwrap(), index);
                seen[index] = true;
            },
        );
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        pool.execute(vec![|| (), || (), || ()]);
        drop(pool); // must not hang
    }
}
