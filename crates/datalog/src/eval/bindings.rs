//! Variable bindings and term evaluation.

use crate::ast::{ArithOp, Term};
use crate::error::{DatalogError, Result};
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashMap;

/// A substitution from variable names to values.
///
/// The join machinery binds and unbinds variables as it explores the search
/// space; [`Bindings::bind`] records nothing — callers track which variables
/// they introduced and remove them on backtrack.
///
/// `Bindings` is `Send + Sync` (values are `Arc`-shared): each worker of the
/// sharded executor owns its own substitution and explores its shard of the
/// search space independently, so no synchronization is needed during the
/// join.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, Value>,
}

impl Bindings {
    /// An empty substitution.
    pub fn new() -> Self {
        Bindings {
            map: HashMap::new(),
        }
    }

    /// Look up a variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// True if `var` is bound.
    pub fn is_bound(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Bind `var` to `value`.  Returns `false` (and leaves the binding
    /// unchanged) if `var` is already bound to a *different* value.
    pub fn bind(&mut self, var: &str, value: Value) -> bool {
        match self.map.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.map.insert(var.to_string(), value);
                true
            }
        }
    }

    /// Remove a binding (used for backtracking).
    pub fn unbind(&mut self, var: &str) {
        self.map.remove(var);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the bound variables in sorted order (for deterministic
    /// diagnostics and existential-entity memo keys).
    pub fn sorted_items(&self) -> Vec<(String, Value)> {
        let mut items: Vec<(String, Value)> = self
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        items
    }

    /// Render the substitution for constraint-violation witnesses.
    pub fn render(&self) -> String {
        let items: Vec<String> = self
            .sorted_items()
            .into_iter()
            .map(|(k, v)| format!("{k} = {v}"))
            .collect();
        if items.is_empty() {
            "{}".to_string()
        } else {
            items.join(", ")
        }
    }
}

/// Evaluate a term under `bindings`.
///
/// Returns `Ok(None)` when the term cannot be evaluated to a ground value
/// (an unbound variable, a wildcard, an unset singleton, or arithmetic over
/// such) — callers treat that as a failed match rather than an error.
pub fn eval_term(
    term: &Term,
    bindings: &Bindings,
    relations: &HashMap<String, Relation>,
) -> Result<Option<Value>> {
    match term {
        Term::Var(v) => Ok(bindings.get(v).cloned()),
        Term::Wildcard => Ok(None),
        Term::Const(v) => Ok(Some(v.clone())),
        Term::SingletonRef(pred) => Ok(relations
            .get(pred)
            .and_then(|r| r.singleton_value())
            .cloned()),
        Term::VarSeq(v) => Err(DatalogError::Eval(format!(
            "variable sequence {v}* reached the evaluator; sequences are expanded by the \
             BloxGenerics compiler"
        ))),
        Term::BinOp(lhs, op, rhs) => {
            let lhs = eval_term(lhs, bindings, relations)?;
            let rhs = eval_term(rhs, bindings, relations)?;
            match (lhs, rhs) {
                (Some(Value::Int(a)), Some(Value::Int(b))) => {
                    let value = match op {
                        ArithOp::Add => a.checked_add(b),
                        ArithOp::Sub => a.checked_sub(b),
                        ArithOp::Mul => a.checked_mul(b),
                        ArithOp::Div => {
                            if b == 0 {
                                return Err(DatalogError::Eval("division by zero".into()));
                            }
                            a.checked_div(b)
                        }
                        ArithOp::Mod => {
                            if b == 0 {
                                return Err(DatalogError::Eval("modulo by zero".into()));
                            }
                            a.checked_rem(b)
                        }
                    };
                    value.map(|v| Some(Value::Int(v))).ok_or_else(|| {
                        DatalogError::Eval(format!("integer overflow in {a} {op} {b}"))
                    })
                }
                (Some(Value::Str(a)), Some(Value::Str(b))) if *op == ArithOp::Add => {
                    Ok(Some(Value::str(format!("{a}{b}"))))
                }
                (Some(a), Some(b)) => Err(DatalogError::Eval(format!(
                    "arithmetic {op} is not defined for {} and {}",
                    a.primitive_type(),
                    b.primitive_type()
                ))),
                _ => Ok(None),
            }
        }
    }
}

/// Match the argument terms of an atom against a stored tuple, extending
/// `bindings` in place.
///
/// On success returns the list of variables newly bound by this match (so the
/// caller can undo them when backtracking); on mismatch returns `None` with
/// `bindings` restored.
pub fn match_tuple(
    terms: &[Term],
    tuple: &[Value],
    bindings: &mut Bindings,
    relations: &HashMap<String, Relation>,
) -> Result<Option<Vec<String>>> {
    if terms.len() != tuple.len() {
        return Ok(None);
    }
    let mut newly_bound: Vec<String> = Vec::new();
    for (term, value) in terms.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Wildcard => true,
            Term::Var(v) => {
                if bindings.is_bound(v) {
                    bindings.get(v) == Some(value)
                } else {
                    bindings.bind(v, value.clone());
                    newly_bound.push(v.clone());
                    true
                }
            }
            other => match eval_term(other, bindings, relations)? {
                Some(evaluated) => evaluated == *value,
                None => false,
            },
        };
        if !ok {
            for var in &newly_bound {
                bindings.unbind(var);
            }
            return Ok(None);
        }
    }
    Ok(Some(newly_bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn no_relations() -> HashMap<String, Relation> {
        HashMap::new()
    }

    #[test]
    fn bindings_are_shareable_across_worker_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Bindings>();
    }

    #[test]
    fn bind_and_conflict() {
        let mut b = Bindings::new();
        assert!(b.bind("X", Value::Int(1)));
        assert!(b.bind("X", Value::Int(1)));
        assert!(!b.bind("X", Value::Int(2)));
        assert_eq!(b.get("X"), Some(&Value::Int(1)));
        b.unbind("X");
        assert!(!b.is_bound("X"));
    }

    #[test]
    fn eval_arithmetic() {
        let mut b = Bindings::new();
        b.bind("C", Value::Int(4));
        let term = Term::BinOp(
            Box::new(Term::var("C")),
            ArithOp::Add,
            Box::new(Term::Const(Value::Int(1))),
        );
        assert_eq!(
            eval_term(&term, &b, &no_relations()).unwrap(),
            Some(Value::Int(5))
        );
        // Unbound operand → not ground.
        let term = Term::BinOp(
            Box::new(Term::var("Z")),
            ArithOp::Mul,
            Box::new(Term::Const(Value::Int(2))),
        );
        assert_eq!(eval_term(&term, &b, &no_relations()).unwrap(), None);
        // Division by zero is an error.
        let term = Term::BinOp(
            Box::new(Term::Const(Value::Int(1))),
            ArithOp::Div,
            Box::new(Term::Const(Value::Int(0))),
        );
        assert!(eval_term(&term, &b, &no_relations()).is_err());
        // String concatenation with `+`.
        let term = Term::BinOp(
            Box::new(Term::Const(Value::str("says$"))),
            ArithOp::Add,
            Box::new(Term::Const(Value::str("path"))),
        );
        assert_eq!(
            eval_term(&term, &b, &no_relations()).unwrap(),
            Some(Value::str("says$path"))
        );
    }

    #[test]
    fn eval_singleton_ref() {
        let mut relations = HashMap::new();
        let mut rel = Relation::new("self", Some(0));
        rel.insert(vec![Value::str("n1")]).unwrap();
        relations.insert("self".to_string(), rel);
        let value = eval_term(
            &Term::SingletonRef("self".into()),
            &Bindings::new(),
            &relations,
        )
        .unwrap();
        assert_eq!(value, Some(Value::str("n1")));
        // Unset singleton is simply not ground.
        let value = eval_term(
            &Term::SingletonRef("missing".into()),
            &Bindings::new(),
            &relations,
        )
        .unwrap();
        assert_eq!(value, None);
    }

    #[test]
    fn varseq_at_runtime_is_error() {
        assert!(eval_term(&Term::VarSeq("V".into()), &Bindings::new(), &no_relations()).is_err());
    }

    #[test]
    fn match_binds_and_backtracks() {
        let relations = no_relations();
        let mut b = Bindings::new();
        let terms = vec![Term::var("X"), Term::var("Y"), Term::var("X")];
        // Matching tuple: X=1, Y=2, X=1 again.
        let bound = match_tuple(
            &terms,
            &[Value::Int(1), Value::Int(2), Value::Int(1)],
            &mut b,
            &relations,
        )
        .unwrap()
        .unwrap();
        assert_eq!(bound.len(), 2);
        assert_eq!(b.get("Y"), Some(&Value::Int(2)));
        for var in &bound {
            b.unbind(var);
        }
        // Mismatching tuple: X cannot be both 1 and 3; bindings must be restored.
        let result = match_tuple(
            &terms,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            &mut b,
            &relations,
        )
        .unwrap();
        assert!(result.is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn match_respects_constants_and_wildcards() {
        let relations = no_relations();
        let mut b = Bindings::new();
        let terms = vec![Term::Const(Value::str("n1")), Term::Wildcard];
        assert!(match_tuple(
            &terms,
            &[Value::str("n1"), Value::Int(9)],
            &mut b,
            &relations
        )
        .unwrap()
        .is_some());
        assert!(match_tuple(
            &terms,
            &[Value::str("n2"), Value::Int(9)],
            &mut b,
            &relations
        )
        .unwrap()
        .is_none());
        // Arity mismatch never matches.
        assert!(match_tuple(&terms, &[Value::str("n1")], &mut b, &relations)
            .unwrap()
            .is_none());
    }

    #[test]
    fn render_is_sorted_and_readable() {
        let mut b = Bindings::new();
        b.bind("Z", Value::Int(3));
        b.bind("A", Value::str("n1"));
        assert_eq!(b.render(), "A = n1, Z = 3");
        assert_eq!(Bindings::new().render(), "{}");
    }
}
