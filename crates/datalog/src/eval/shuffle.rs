//! Distributed exchange planning for horizontally sharded base relations.
//!
//! When a deployment declares a shard map (relation → partition column →
//! hash ring over a node group, see the core crate's `runtime::shard`), each
//! sharded base relation lives partitioned across the group and no single
//! node can evaluate a rule over it locally.  The planner here decides, per
//! rule and per sharded body literal, how the data has to move — the
//! decision a distributed query optimizer calls *exchange placement*:
//!
//! * [`ExchangeStrategy::CoPartitioned`] — the literal's partition column
//!   carries the rule's join variable, so matching tuples of every sharded
//!   literal in the rule are already co-located under the shared hash ring
//!   and the literal reads its local partition directly (no movement);
//! * [`ExchangeStrategy::Shuffle`] — the literal must be rehashed on the
//!   join variable: every member routes its partition's tuples to the hash
//!   owner of the join value (the paper §7.2 rehash pattern, generalized
//!   from the hand-written hashjoin policy into the engine), and the rule
//!   reads the exchanged copy relation instead;
//! * [`ExchangeStrategy::Broadcast`] — every member needs the complete
//!   relation: the literal has no usable join variable, the relation is
//!   small enough that full replication is cheaper than hashing
//!   (`broadcast_max`), the literal is negated, or the rule aggregates.
//!
//! The classification is pure and deterministic — a function of the rules,
//! the shard map, and the initial base-relation cardinalities — so the
//! pre-compile analysis (which decides which exchange dataflows to
//! generate) and the post-compile rewrite (which substitutes body atoms)
//! always agree.  Movement costs reuse the cost model of [`plan`]
//! (`scan_cost`): a shuffle ships one copy of a relation, a broadcast ships
//! `partitions − 1` copies.
//!
//! Rules whose sharded literals are not all broadcast derive *partial*
//! relations: each member holds only the derivations its local partitions
//! support, and the complete relation is the union across the group.
//! Partiality propagates — a rule reading a partial relation derives a
//! partial head — and constrains what can be planned soundly: negating or
//! aggregating a partial relation, or joining two distinct partial
//! relations on one node, would compute from an incomplete extension, so
//! those shapes are rejected here rather than silently answered wrong.

use crate::ast::{Atom, Literal, Rule, Term};
use crate::error::{DatalogError, Result};
use crate::eval::plan::scan_cost;
use crate::eval::runtime_pred_name;
use std::collections::{BTreeMap, BTreeSet};

/// Name prefix of shuffle-exchange relations (`shard_xchg_c<col>_<rel>`).
pub const XCHG_PREFIX: &str = "shard_xchg_";
/// Name prefix of broadcast-exchange relations (`shard_bcast_<rel>`).
pub const BCAST_PREFIX: &str = "shard_bcast_";
/// The slot-ownership relation every member carries: `shard_slot(Slot,
/// Owner)` — the ring quantized into [`SHARD_SLOTS`] fixed hash slots so
/// routing rules join on an indexed slot id instead of scanning the
/// per-member range facts (`prin_minhash`/`prin_maxhash`) of the hashjoin
/// app, whose count grows with the group.
pub const SLOT_RELATION: &str = "shard_slot";
/// Number of fixed hash slots the ring is quantized into.  Constant in the
/// group size, so the routing join stays O(1) per tuple at any scale and
/// the replicated slot table is the same 1024 facts on every member.
pub const SHARD_SLOTS: i64 = 1024;
/// The group-membership relation: `shard_member(P)`.
pub const MEMBER_RELATION: &str = "shard_member";

/// The exchanged-copy relation holding `relation` rehashed on `column`.
pub fn exchange_name(relation: &str, column: usize) -> String {
    format!("{XCHG_PREFIX}c{column}_{relation}")
}

/// The broadcast-copy relation holding the full `relation` on every member.
pub fn broadcast_name(relation: &str) -> String {
    format!("{BCAST_PREFIX}{relation}")
}

/// Whether `pred` names an exchange dataflow relation (used by the engine
/// to meter exchange bytes on the wire).
pub fn is_exchange_pred(pred: &str) -> bool {
    pred.starts_with(XCHG_PREFIX) || pred.starts_with(BCAST_PREFIX)
}

/// Whether a rule head belongs to the generated exchange machinery (routing
/// rules and the policy-generated `says$`/`sig$` rules over exchange
/// relations).  Such rules route sharded relations and must never
/// themselves be rewritten to read exchanged copies.
pub fn is_exchange_generated(head_pred: &str) -> bool {
    head_pred.contains(XCHG_PREFIX) || head_pred.contains(BCAST_PREFIX)
}

/// How one sharded body literal participates in distributed evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// Read the local partition directly — tuples are already co-located.
    CoPartitioned,
    /// Read the copy rehashed on body column `column`.
    Shuffle { column: usize },
    /// Read the fully replicated copy.
    Broadcast,
}

/// The classification of one sharded literal within a rule body.
#[derive(Debug, Clone)]
pub struct LiteralExchange {
    /// Index of the literal in the rule body.
    pub literal: usize,
    /// The sharded relation the literal reads.
    pub relation: String,
    pub strategy: ExchangeStrategy,
}

/// The exchange plan of one rule that touches sharded relations.
#[derive(Debug, Clone)]
pub struct RuleExchangePlan {
    pub literals: Vec<LiteralExchange>,
    /// Whether the rule's head is *partial*: derived per member, complete
    /// only as the union across the group.
    pub partial_head: bool,
}

/// Counts of literal classifications across a program — surfaced in the
/// deployment report so the chosen exchange shapes are visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeSummary {
    pub co_partitioned: usize,
    pub shuffles: usize,
    pub broadcasts: usize,
}

/// The exchange plan of a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramExchangePlan {
    /// Per-rule plans, keyed by the caller's rule id (only rules with
    /// sharded body literals appear).
    pub rules: BTreeMap<usize, RuleExchangePlan>,
    /// `(relation, column)` shuffle dataflows some rule needs.
    pub shuffles: BTreeSet<(String, usize)>,
    /// Relations some rule needs broadcast.
    pub broadcasts: BTreeSet<String>,
    /// Head predicates derived partially (per member).
    pub partial: BTreeSet<String>,
    pub summary: ExchangeSummary,
}

/// Shard-map facts and cost inputs the planner classifies against.
pub struct ExchangeInput<'a> {
    /// Sharded relation → partition column.
    pub sharded: &'a BTreeMap<String, usize>,
    /// Number of group members (broadcast cost multiplier).
    pub partitions: usize,
    /// Relations at or below this initial cardinality are always broadcast
    /// — replicating a tiny table beats hashing it.
    pub broadcast_max: usize,
    /// Initial cardinality of a base relation (0 for unknown names).
    pub estimate: &'a dyn Fn(&str) -> usize,
}

/// Plan every rule of a program against a shard map.
///
/// `rules` pairs each rule with a caller-chosen id (its statement index);
/// generated exchange machinery must be filtered out by the caller (see
/// [`is_exchange_generated`]).  Returns the per-rule exchange plans, the set
/// of exchange dataflows the program needs, and the partial-head set — or an
/// error for the shapes distributed evaluation cannot answer soundly.
pub fn plan_rules(rules: &[(usize, &Rule)], input: &ExchangeInput) -> Result<ProgramExchangePlan> {
    if input.partitions == 0 {
        return Err(DatalogError::Eval(
            "exchange planning requires a non-empty shard group".into(),
        ));
    }
    // Fixpoint over the partial-head set: a head is partial when its body
    // reads a partial relation or keeps any sharded literal un-broadcast.
    // Classification depends on the set (rules mixing partial and sharded
    // inputs force broadcasts), and the set grows monotonically, so iterate
    // to stability before the final validated pass.
    let mut partial: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (_, rule) in rules {
            if rule_head_partial(rule, input, &partial)? {
                for atom in &rule.head {
                    if partial.insert(runtime_pred_name(&atom.pred)?) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut plan = ProgramExchangePlan {
        partial: partial.clone(),
        ..ProgramExchangePlan::default()
    };
    for &(id, rule) in rules {
        validate_rule(rule, input, &partial)?;
        let Some(literals) = classify_rule(rule, input, &partial)? else {
            continue;
        };
        for exchange in &literals {
            match exchange.strategy {
                ExchangeStrategy::CoPartitioned => plan.summary.co_partitioned += 1,
                ExchangeStrategy::Shuffle { column } => {
                    plan.summary.shuffles += 1;
                    plan.shuffles.insert((exchange.relation.clone(), column));
                }
                ExchangeStrategy::Broadcast => {
                    plan.summary.broadcasts += 1;
                    plan.broadcasts.insert(exchange.relation.clone());
                }
            }
        }
        let partial_head = rule_head_partial(rule, input, &partial)?;
        plan.rules.insert(
            id,
            RuleExchangePlan {
                literals,
                partial_head,
            },
        );
    }
    Ok(plan)
}

/// The sharded body literals of a rule: `(body index, atom, negated)`.
fn sharded_literals<'r>(
    rule: &'r Rule,
    input: &ExchangeInput,
) -> Result<Vec<(usize, &'r Atom, bool)>> {
    let mut out = Vec::new();
    for (index, literal) in rule.body.iter().enumerate() {
        let (atom, negated) = match literal {
            Literal::Pos(atom) => (atom, false),
            Literal::Neg(atom) => (atom, true),
            Literal::Cmp(..) => continue,
        };
        if atom.pred.is_concrete() && input.sharded.contains_key(&runtime_pred_name(&atom.pred)?) {
            out.push((index, atom, negated));
        }
    }
    Ok(out)
}

/// Distinct partial relations a rule body reads (positively or negated).
fn body_partial_preds(rule: &Rule, partial: &BTreeSet<String>) -> Result<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    for literal in &rule.body {
        if let Literal::Pos(atom) | Literal::Neg(atom) = literal {
            if atom.pred.is_concrete() {
                let name = runtime_pred_name(&atom.pred)?;
                if partial.contains(&name) {
                    out.insert(name);
                }
            }
        }
    }
    Ok(out)
}

/// Whether the rule derives a partial head under the current partial set.
fn rule_head_partial(
    rule: &Rule,
    input: &ExchangeInput,
    partial: &BTreeSet<String>,
) -> Result<bool> {
    if !body_partial_preds(rule, partial)?.is_empty() {
        return Ok(true);
    }
    Ok(
        classify_rule(rule, input, partial)?.is_some_and(|literals| {
            literals
                .iter()
                .any(|l| l.strategy != ExchangeStrategy::Broadcast)
        }),
    )
}

/// The first body column of `atom` carrying variable `var` directly.
fn var_column(atom: &Atom, var: &str) -> Option<usize> {
    atom.terms
        .iter()
        .position(|term| matches!(term, Term::Var(v) if v == var))
}

/// The variable at `atom`'s partition column, when it is a plain variable.
fn partition_var(atom: &Atom, column: usize) -> Option<&str> {
    match atom.terms.get(column) {
        Some(Term::Var(v)) => Some(v.as_str()),
        _ => None,
    }
}

/// Classify the sharded literals of one rule (`None` when it has none).
///
/// Candidate placements are enumerated and scored by rows moved:
/// anchor-on-a-partition-variable (others co-partition, shuffle to the
/// anchor's hash space, or broadcast), rehash-everything on a shared join
/// variable (the both-sides shuffle of the paper's hash join), and the
/// always-sound fallback of keeping the largest literal in place and
/// broadcasting the rest.  Negated literals, tiny relations, aggregate
/// rules, and rules mixing in partial inputs broadcast unconditionally.
fn classify_rule(
    rule: &Rule,
    input: &ExchangeInput,
    partial: &BTreeSet<String>,
) -> Result<Option<Vec<LiteralExchange>>> {
    let sharded = sharded_literals(rule, input)?;
    if sharded.is_empty() {
        return Ok(None);
    }
    let name_of = |atom: &Atom| runtime_pred_name(&atom.pred);
    let forced_broadcast = rule.agg.is_some() || !body_partial_preds(rule, partial)?.is_empty();

    let mut strategies: BTreeMap<usize, ExchangeStrategy> = BTreeMap::new();
    // Candidates: positive, non-tiny sharded literals still eligible for
    // co-partitioning or shuffling.
    let mut candidates: Vec<(usize, &Atom, String, usize)> = Vec::new();
    for &(index, atom, negated) in &sharded {
        let relation = name_of(atom)?;
        let rows = (input.estimate)(&relation);
        if forced_broadcast || negated || rows <= input.broadcast_max {
            strategies.insert(index, ExchangeStrategy::Broadcast);
        } else {
            candidates.push((index, atom, relation, rows));
        }
    }

    match candidates.len() {
        0 => {}
        1 => {
            // A lone un-broadcast literal evaluates where its partitions
            // live; every other sharded literal is fully replicated.
            strategies.insert(candidates[0].0, ExchangeStrategy::CoPartitioned);
        }
        _ => {
            for (index, strategy) in place_candidates(&candidates, input) {
                strategies.insert(index, strategy);
            }
        }
    }

    Ok(Some(
        sharded
            .iter()
            .map(|&(index, atom, _)| {
                Ok(LiteralExchange {
                    literal: index,
                    relation: name_of(atom)?,
                    strategy: strategies[&index],
                })
            })
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// Score the joint placements of two or more exchange candidates and return
/// the cheapest assignment (rows moved, ties broken deterministically).
fn place_candidates(
    candidates: &[(usize, &Atom, String, usize)],
    input: &ExchangeInput,
) -> Vec<(usize, ExchangeStrategy)> {
    let copies = input.partitions.saturating_sub(1) as f64;
    let broadcast_cost = |rows: usize| scan_cost(rows, 0) * copies;
    let shuffle_cost = |rows: usize| scan_cost(rows, 0);

    // (cost, kind, key) — kind/key order anchor plans before rehash-all
    // before the broadcast fallback at equal cost, deterministically.
    type Scored = (f64, u8, usize, Vec<(usize, ExchangeStrategy)>);
    let mut best: Option<Scored> = None;
    let mut consider = |cost: f64, kind: u8, key: usize, assign: Vec<(usize, ExchangeStrategy)>| {
        let better = match &best {
            None => true,
            Some((c, k, y, _)) => match cost.total_cmp(c) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => (kind, key) < (*k, *y),
            },
        };
        if better {
            best = Some((cost, kind, key, assign));
        }
    };

    // Plan A: anchor each candidate whose partition column is a plain
    // variable; the others co-partition on it, shuffle to it, or broadcast.
    for (slot, &(anchor_index, anchor_atom, ref anchor_rel, _)) in candidates.iter().enumerate() {
        let column = input.sharded[anchor_rel.as_str()];
        let Some(join_var) = partition_var(anchor_atom, column) else {
            continue;
        };
        let mut cost = 0.0;
        let mut assign = vec![(anchor_index, ExchangeStrategy::CoPartitioned)];
        for &(index, atom, ref relation, rows) in candidates {
            if index == anchor_index {
                continue;
            }
            let their_column = input.sharded[relation.as_str()];
            if partition_var(atom, their_column) == Some(join_var) {
                assign.push((index, ExchangeStrategy::CoPartitioned));
            } else if let Some(col) = var_column(atom, join_var) {
                cost += shuffle_cost(rows);
                assign.push((index, ExchangeStrategy::Shuffle { column: col }));
            } else {
                cost += broadcast_cost(rows);
                assign.push((index, ExchangeStrategy::Broadcast));
            }
        }
        consider(cost, 0, slot, assign);
    }

    // Plan B: rehash everything on a variable shared by at least two
    // candidates (the both-sides shuffle); candidates lacking it broadcast.
    let mut shared_vars: Vec<String> = Vec::new();
    {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for &(_, atom, _, _) in candidates {
            let mut vars = Vec::new();
            atom.collect_vars(&mut vars);
            vars.retain(|v| var_column(atom, v).is_some());
            vars.sort();
            vars.dedup();
            for var in vars {
                *counts.entry(var).or_default() += 1;
            }
        }
        shared_vars.extend(counts.into_iter().filter(|(_, n)| *n >= 2).map(|(v, _)| v));
    }
    for (slot, var) in shared_vars.iter().enumerate() {
        let mut cost = 0.0;
        let mut assign = Vec::new();
        for &(index, atom, _, rows) in candidates {
            if let Some(col) = var_column(atom, var) {
                cost += shuffle_cost(rows);
                assign.push((index, ExchangeStrategy::Shuffle { column: col }));
            } else {
                cost += broadcast_cost(rows);
                assign.push((index, ExchangeStrategy::Broadcast));
            }
        }
        consider(cost, 1, slot, assign);
    }

    // Plan C (always applicable): the largest candidate stays put, the rest
    // are fully replicated.
    {
        let (largest_slot, &(largest_index, ..)) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(slot, (_, _, _, rows))| (*rows, usize::MAX - *slot))
            .expect("place_candidates requires candidates");
        let mut cost = 0.0;
        let mut assign = vec![(largest_index, ExchangeStrategy::CoPartitioned)];
        for &(index, _, _, rows) in candidates {
            if index != largest_index {
                cost += broadcast_cost(rows);
                assign.push((index, ExchangeStrategy::Broadcast));
            }
        }
        consider(cost, 2, largest_slot, assign);
    }

    best.expect("at least plan C was considered").3
}

/// Reject the rule shapes distributed evaluation cannot answer soundly.
fn validate_rule(rule: &Rule, input: &ExchangeInput, partial: &BTreeSet<String>) -> Result<()> {
    for atom in &rule.head {
        if !atom.pred.is_concrete() {
            continue;
        }
        let name = runtime_pred_name(&atom.pred)?;
        if input.sharded.contains_key(&name) {
            return Err(DatalogError::Eval(format!(
                "sharded relation {name} must stay EDB-only (fact routing owns its placement), \
                 but it is derived by a rule; remove it from the shard map, drop the rule, or \
                 drop its exportable declaration"
            )));
        }
        if name.starts_with("shard_") && !is_exchange_generated(&name) {
            return Err(DatalogError::Eval(format!(
                "predicate name {name} is reserved for the shard runtime"
            )));
        }
    }
    let sharded = sharded_literals(rule, input)?;
    for &(_, atom, _) in &sharded {
        let relation = runtime_pred_name(&atom.pred)?;
        let column = input.sharded[&relation];
        if column >= atom.terms.len() {
            return Err(DatalogError::Eval(format!(
                "shard map partitions {relation} on column {column}, but it is used with \
                 arity {}",
                atom.terms.len()
            )));
        }
    }
    let body_partial = body_partial_preds(rule, partial)?;
    if sharded.is_empty() && body_partial.is_empty() {
        return Ok(());
    }
    if body_partial.len() > 1 {
        return Err(DatalogError::Eval(format!(
            "rule joins {} distributed partial relations ({}) on one node — no member holds \
             their complete extensions; restructure so at most one partial relation feeds a rule",
            body_partial.len(),
            body_partial.into_iter().collect::<Vec<_>>().join(", ")
        )));
    }
    for literal in &rule.body {
        if let Literal::Neg(atom) = literal {
            if atom.pred.is_concrete() && partial.contains(&runtime_pred_name(&atom.pred)?) {
                return Err(DatalogError::Eval(format!(
                    "negation over the distributed partial relation {} would read an \
                     incomplete extension",
                    runtime_pred_name(&atom.pred)?
                )));
            }
        }
    }
    if rule.agg.is_some() && !body_partial.is_empty() {
        return Err(DatalogError::Eval(format!(
            "aggregation over the distributed partial relation {} would fold an incomplete \
             extension",
            body_partial.into_iter().next().unwrap_or_default()
        )));
    }
    if !rule.head_existentials().is_empty() {
        return Err(DatalogError::Eval(
            "head-existential rules cannot read sharded or partial relations: entity ids are \
             minted per node namespace and would diverge from unsharded evaluation"
                .into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn rules_of(program: &crate::ast::Program) -> Vec<Rule> {
        program
            .statements
            .iter()
            .filter_map(|s| match s {
                crate::ast::Statement::Rule(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    fn plan_source(
        source: &str,
        sharded: &[(&str, usize)],
        sizes: &[(&str, usize)],
        partitions: usize,
        broadcast_max: usize,
    ) -> Result<ProgramExchangePlan> {
        let program = parse_program(source).expect("test program parses");
        let rules = rules_of(&program);
        let indexed: Vec<(usize, &Rule)> = rules.iter().enumerate().collect();
        let sharded: BTreeMap<String, usize> =
            sharded.iter().map(|(r, c)| (r.to_string(), *c)).collect();
        let sizes: BTreeMap<String, usize> =
            sizes.iter().map(|(r, n)| (r.to_string(), *n)).collect();
        let estimate = move |name: &str| sizes.get(name).copied().unwrap_or(0);
        plan_rules(
            &indexed,
            &ExchangeInput {
                sharded: &sharded,
                partitions,
                broadcast_max,
                estimate: &estimate,
            },
        )
    }

    fn strategy_of(plan: &ProgramExchangePlan, rule: usize, literal: usize) -> ExchangeStrategy {
        plan.rules[&rule]
            .literals
            .iter()
            .find(|l| l.literal == literal)
            .expect("literal classified")
            .strategy
    }

    #[test]
    fn co_partitioned_join_moves_nothing() {
        let plan = plan_source(
            "joined(X, Y, Z) <- orders(X, Y), users(X, Z).",
            &[("orders", 0), ("users", 0)],
            &[("orders", 1000), ("users", 1000)],
            4,
            8,
        )
        .unwrap();
        assert_eq!(strategy_of(&plan, 0, 0), ExchangeStrategy::CoPartitioned);
        assert_eq!(strategy_of(&plan, 0, 1), ExchangeStrategy::CoPartitioned);
        assert!(plan.shuffles.is_empty() && plan.broadcasts.is_empty());
        assert!(plan.partial.contains("joined"));
    }

    #[test]
    fn smaller_side_shuffles_to_the_larger_anchor() {
        let plan = plan_source(
            "joined(X, Y, Z) <- big(X, Y), small(Z, X).",
            &[("big", 0), ("small", 0)],
            &[("big", 100_000), ("small", 500)],
            4,
            8,
        )
        .unwrap();
        // `big` is partitioned on the join variable X; `small` is
        // partitioned on Z, so it rehashes its X column (1) to big's space.
        assert_eq!(strategy_of(&plan, 0, 0), ExchangeStrategy::CoPartitioned);
        assert_eq!(
            strategy_of(&plan, 0, 1),
            ExchangeStrategy::Shuffle { column: 1 }
        );
        assert_eq!(
            plan.shuffles.iter().collect::<Vec<_>>(),
            vec![&("small".to_string(), 1)]
        );
    }

    #[test]
    fn both_sides_rehash_when_neither_is_partitioned_on_the_join_column() {
        // The paper §7.2 shape: both tables partitioned on their first
        // attribute, joined on the second.
        let plan = plan_source(
            "joinresult(E1, E2, E3) <- tableA(E1, E2), tableB(E3, E2).",
            &[("tableA", 0), ("tableB", 0)],
            &[("tableA", 900), ("tableB", 800)],
            6,
            8,
        )
        .unwrap();
        assert_eq!(
            strategy_of(&plan, 0, 0),
            ExchangeStrategy::Shuffle { column: 1 }
        );
        assert_eq!(
            strategy_of(&plan, 0, 1),
            ExchangeStrategy::Shuffle { column: 1 }
        );
        assert_eq!(plan.summary.shuffles, 2);
    }

    #[test]
    fn tiny_relations_broadcast_instead_of_shuffling() {
        let plan = plan_source(
            "labeled(X, N) <- orders(X, R), region(R, N).",
            &[("orders", 0), ("region", 0)],
            &[("orders", 10_000), ("region", 12)],
            4,
            64,
        )
        .unwrap();
        assert_eq!(strategy_of(&plan, 0, 0), ExchangeStrategy::CoPartitioned);
        assert_eq!(strategy_of(&plan, 0, 1), ExchangeStrategy::Broadcast);
        assert!(plan.broadcasts.contains("region"));
    }

    #[test]
    fn negated_and_aggregated_sharded_literals_broadcast() {
        let plan = plan_source(
            "lonely(X) <- candidates(X), !orders(X, X).\n\
             total[] = C <- agg<< C = count(X) >> orders(X, _).",
            &[("orders", 0)],
            &[("orders", 10_000)],
            4,
            8,
        )
        .unwrap();
        assert_eq!(strategy_of(&plan, 0, 1), ExchangeStrategy::Broadcast);
        assert_eq!(strategy_of(&plan, 1, 0), ExchangeStrategy::Broadcast);
        // Broadcast-only rules derive complete heads on every member.
        assert!(!plan.partial.contains("lonely"));
        assert!(!plan.partial.contains("total"));
    }

    #[test]
    fn partiality_propagates_and_forces_downstream_broadcasts() {
        let plan = plan_source(
            "enriched(X, Y) <- orders(X, Y), users(Y, X).\n\
             final(X, R) <- enriched(X, Y), lookup(Y, R).",
            &[("orders", 0), ("users", 0), ("lookup", 0)],
            &[("orders", 1000), ("users", 1000), ("lookup", 1000)],
            4,
            8,
        )
        .unwrap();
        assert!(plan.partial.contains("enriched"));
        assert!(plan.partial.contains("final"));
        // `lookup` joins a partial relation whose tuples live anywhere, so
        // it must be fully replicated despite its size.
        assert_eq!(strategy_of(&plan, 1, 1), ExchangeStrategy::Broadcast);
    }

    #[test]
    fn deriving_into_a_sharded_relation_is_rejected() {
        let err = plan_source(
            "orders(X, Y) <- staged(X, Y).",
            &[("orders", 0)],
            &[("orders", 100)],
            4,
            8,
        )
        .unwrap_err();
        assert!(err.to_string().contains("EDB-only"), "{err}");
    }

    #[test]
    fn joining_two_partial_relations_is_rejected() {
        let err = plan_source(
            "a(X, Y) <- orders(X, Y), users(Y, X).\n\
             b(X, Y) <- users(X, Y), orders(Y, X).\n\
             broken(X) <- a(X, _), b(X, _).",
            &[("orders", 0), ("users", 0)],
            &[("orders", 1000), ("users", 1000)],
            4,
            8,
        )
        .unwrap_err();
        assert!(err.to_string().contains("partial relations"), "{err}");
    }

    #[test]
    fn aggregating_a_partial_relation_is_rejected() {
        let err = plan_source(
            "a(X, Y) <- orders(X, Y), users(Y, X).\n\
             n[] = C <- agg<< C = count(X) >> a(X, _).",
            &[("orders", 0), ("users", 0)],
            &[("orders", 1000), ("users", 1000)],
            4,
            8,
        )
        .unwrap_err();
        assert!(err.to_string().contains("incomplete extension"), "{err}");
    }

    #[test]
    fn classification_is_deterministic() {
        let source = "j(X, Y, Z) <- a(X, Y), b(Y, Z), c(Z, X).";
        let sharded = [("a", 0), ("b", 0), ("c", 0)];
        let sizes = [("a", 5000), ("b", 4000), ("c", 3000)];
        let first = plan_source(source, &sharded, &sizes, 6, 8).unwrap();
        for _ in 0..5 {
            let again = plan_source(source, &sharded, &sizes, 6, 8).unwrap();
            assert_eq!(format!("{:?}", first.rules), format!("{:?}", again.rules));
        }
    }
}
